from setuptools import find_packages, setup

setup(
    name="repro-terrain-distance-oracle",
    version="0.2.0",
    description=("Reproduction of 'Distance Oracle on Terrain Surface' "
                 "(Wei, Wong, Long & Mount, SIGMOD 2017): the SE "
                 "space-efficient geodesic distance oracle, its "
                 "baselines and experiments"),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        # The Dijkstra kernel uses scipy.sparse.csgraph when available.
        "fast": ["scipy>=1.8"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
