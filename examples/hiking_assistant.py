#!/usr/bin/env python3
"""GIS scenario: hiking-time estimation over a mountain terrain.

The paper's first motivating application: "hikers need the geodesic
distance to measure the travel time between a source and a destination
which are landmarks".  This example:

* builds a rugged terrain with a set of landmark POIs (trailheads,
  shelters, peaks);
* shows how misleading straight-line (Euclidean) distance is compared
  to the surface distance (the paper cites ratios up to 300%);
* answers "nearest shelter" (kNN) and "what can I reach in an hour"
  (range query) through the SE oracle;
* estimates hiking time with Naismith's rule on the geodesic path.

Run:  python examples/hiking_assistant.py
"""

import numpy as np

from repro import (
    GeodesicEngine,
    SEOracle,
    k_nearest_neighbors,
    make_terrain,
    range_query,
    sample_clustered,
)

WALKING_SPEED_M_PER_H = 4000.0   # Naismith: 4 km/h on the flat
CLIMB_PENALTY_H_PER_M = 1.0 / 600.0  # +1 h per 600 m of ascent


def hiking_hours(engine, source, target):
    """Naismith's rule along the geodesic path."""
    distance, path = engine.shortest_path(source, target)
    ascent = sum(max(0.0, float(path[i + 1][2] - path[i][2]))
                 for i in range(len(path) - 1))
    return distance / WALKING_SPEED_M_PER_H + ascent * CLIMB_PENALTY_H_PER_M


def main() -> None:
    # A 4 km x 4 km alpine terrain with 500 m of relief.
    mesh = make_terrain(grid_exponent=5, extent=(4000.0, 4000.0),
                        relief=500.0, roughness=0.6, seed=21)
    landmarks = sample_clustered(mesh, 25, seed=22)
    engine = GeodesicEngine(mesh, landmarks, points_per_edge=1)
    oracle = SEOracle(engine, epsilon=0.1, seed=3).build()
    n = len(landmarks)
    print(f"terrain {mesh.num_vertices} vertices; {n} landmarks; "
          f"oracle size {oracle.size_bytes() / 1024:.1f} KB\n")

    # -- Euclidean vs geodesic -------------------------------------------
    print("Euclidean distance is misleading in the mountains:")
    worst_ratio, worst_pair = 1.0, (0, 1)
    for source in range(0, n, 3):
        for target in range(1, n, 4):
            if source == target:
                continue
            euclid = float(np.linalg.norm(
                landmarks.positions[source] - landmarks.positions[target]))
            geodesic = oracle.query(source, target)
            if euclid > 0 and geodesic / euclid > worst_ratio:
                worst_ratio = geodesic / euclid
                worst_pair = (source, target)
    s, t = worst_pair
    print(f"  worst pair {s}->{t}: geodesic is {worst_ratio:.2f}x "
          f"the straight line\n")

    # -- Nearest shelters (kNN through the oracle) -----------------------
    hiker = 0
    print(f"three nearest landmarks to landmark {hiker}:")
    for poi, distance in k_nearest_neighbors(oracle, hiker, 3, n):
        print(f"  landmark {poi:>2}: {distance:7.1f} m, "
              f"~{hiking_hours(engine, hiker, poi):.1f} h on foot")
    print()

    # -- One-hour range --------------------------------------------------
    budget_m = WALKING_SPEED_M_PER_H * 1.0  # flat-ground hour
    reachable = range_query(oracle, hiker, budget_m, n)
    print(f"landmarks within a flat-ground hour ({budget_m:.0f} m) "
          f"of landmark {hiker}: {[poi for poi, _ in reachable]}")


if __name__ == "__main__":
    main()
