#!/usr/bin/env python3
"""Computer graphics scenario: 3D shape matching via geodesic signatures.

The paper's second application: "for each object, geodesic distances
between all pairs of reference points are computed and are stored as a
feature vector for similarity measurement".  Geodesic feature vectors
are invariant to rotation and translation, which Euclidean ones are
not.

This example builds three surfaces — two copies of the same terrain
(one rigidly rotated) and one genuinely different terrain — places the
same reference points on each, extracts geodesic feature vectors with
the SE oracle, and shows that the rotated copy matches the original
while the different surface does not.

Run:  python examples/shape_matching.py
"""

import numpy as np

from repro import GeodesicEngine, SEOracle, TriangleMesh, make_terrain
from repro.terrain import POISet


def rotate_mesh(mesh: TriangleMesh, angle_rad: float) -> TriangleMesh:
    """Rigid rotation around the z axis (plus a translation)."""
    cos, sin = np.cos(angle_rad), np.sin(angle_rad)
    rotation = np.array([[cos, -sin, 0.0], [sin, cos, 0.0], [0.0, 0.0, 1.0]])
    vertices = mesh.vertices @ rotation.T + np.array([500.0, -200.0, 50.0])
    return TriangleMesh(vertices, mesh.faces)


def reference_points(mesh: TriangleMesh, count: int, seed: int) -> POISet:
    """Reference points at fixed mesh vertices (so they 'travel' with
    the object under rigid motion)."""
    rng = np.random.default_rng(seed)
    vertex_ids = rng.choice(mesh.num_vertices, size=count, replace=False)
    from repro import pois_from_vertices
    return pois_from_vertices(mesh, sorted(int(v) for v in vertex_ids))


def feature_vector(mesh: TriangleMesh, pois: POISet,
                   epsilon: float = 0.1) -> np.ndarray:
    """Upper-triangle pairwise geodesic distances via the SE oracle."""
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, epsilon, seed=5).build()
    n = len(pois)
    values = [oracle.query(i, j) for i in range(n) for j in range(i + 1, n)]
    return np.asarray(values)


def similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Normalised L2 similarity in [0, 1]."""
    return float(1.0 / (1.0 + np.linalg.norm(a - b) / np.linalg.norm(a)))


def main() -> None:
    original = make_terrain(grid_exponent=4, extent=(800.0, 800.0),
                            relief=120.0, seed=33)
    rotated = rotate_mesh(original, np.pi / 3)
    different = make_terrain(grid_exponent=4, extent=(800.0, 800.0),
                             relief=120.0, seed=77)

    count = 12
    refs_original = reference_points(original, count, seed=1)
    refs_rotated = reference_points(rotated, count, seed=1)  # same vertices
    refs_different = reference_points(different, count, seed=1)

    print("extracting geodesic feature vectors "
          f"({count * (count - 1) // 2} pairwise distances each)...")
    sig_original = feature_vector(original, refs_original)
    sig_rotated = feature_vector(rotated, refs_rotated)
    sig_different = feature_vector(different, refs_different)

    sim_rotated = similarity(sig_original, sig_rotated)
    sim_different = similarity(sig_original, sig_different)
    print(f"similarity(original, rotated copy) = {sim_rotated:.4f}")
    print(f"similarity(original, other shape)  = {sim_different:.4f}")
    if sim_rotated <= sim_different:
        raise SystemExit("unexpected: rotation broke the invariance!")
    print("geodesic signatures are rigid-motion invariant "
          "and discriminate shapes, as the paper's application requires")


if __name__ == "__main__":
    main()
