#!/usr/bin/env python3
"""Spatial data-mining scenario: wildlife telemetry clustering.

The paper's life-science and spatial-data-mining applications rolled
into one: radio-telemetry receivers record animal residence sites on a
terrain, and scientists cluster those sites by *surface* distance
(animals walk on the terrain, not through it).  Clustering needs many
inner/inter-cluster distances — the access pattern the oracle exists
for.

This example runs k-medoids over geodesic distances supplied by the SE
oracle and contrasts the grouping with a Euclidean clustering that
ignores a mountain ridge.

Run:  python examples/wildlife_tracking.py
"""

import numpy as np

from repro import GeodesicEngine, SEOracle
from repro.terrain import POI, POISet


def k_medoids(distance, n, k, iterations=20, seed=0):
    """Plain PAM over an arbitrary distance callable."""
    rng = np.random.default_rng(seed)
    medoids = list(rng.choice(n, size=k, replace=False))
    assignment = [0] * n
    for _ in range(iterations):
        for point in range(n):
            assignment[point] = min(
                range(k), key=lambda c: distance(point, medoids[c]))
        changed = False
        for cluster in range(k):
            members = [p for p in range(n) if assignment[p] == cluster]
            if not members:
                continue
            best = min(members, key=lambda candidate: sum(
                distance(candidate, other) for other in members))
            if best != medoids[cluster]:
                medoids[cluster] = best
                changed = True
        if not changed:
            break
    return medoids, assignment


def ridge_terrain():
    """A terrain with a tall ridge along x = mid: crossing is costly."""
    size = 33
    xs = np.linspace(0.0, 1.0, size)
    grid_x, _ = np.meshgrid(xs, xs, indexing="ij")
    ridge = 400.0 * np.exp(-((grid_x - 0.5) ** 2) / (2 * 0.03 ** 2))
    from repro.terrain import heightfield_to_mesh
    return heightfield_to_mesh(ridge, 2000.0, 2000.0)


def main() -> None:
    mesh = ridge_terrain()
    # Residence sites on both flanks of the ridge.
    rng = np.random.default_rng(4)
    sites = []
    for index in range(24):
        flank = 0.0 if index % 2 == 0 else 1.0
        x = float(rng.uniform(100, 800)) + flank * 1000.0
        y = float(rng.uniform(100, 1900))
        face = mesh.locate_face(x, y)
        point = mesh.project_onto_surface(x, y)
        sites.append(POI(index=index,
                         position=tuple(float(c) for c in point),
                         face_id=face))
    pois = POISet(sites)
    n = len(pois)

    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, epsilon=0.1, seed=2).build()
    print(f"{n} telemetry sites on a ridge terrain "
          f"({mesh.num_vertices} vertices)\n")

    def geodesic(a, b):
        return oracle.query(a, b)

    def euclidean(a, b):
        return float(np.linalg.norm(pois.positions[a] - pois.positions[b]))

    _, geo_clusters = k_medoids(geodesic, n, k=2, seed=1)
    _, euc_clusters = k_medoids(euclidean, n, k=2, seed=1)

    def purity(assignment):
        """How well clusters coincide with the two ridge flanks."""
        flanks = [0 if pois.positions[i][0] < 1000.0 else 1
                  for i in range(n)]
        agree = sum(1 for i in range(n) if assignment[i] == flanks[i])
        return max(agree, n - agree) / n

    print(f"geodesic clustering flank purity:  {purity(geo_clusters):.2f}")
    print(f"euclidean clustering flank purity: {purity(euc_clusters):.2f}")
    print("\nthe geodesic clustering separates the flanks because the "
          "ridge makes crossing expensive on the surface — the paper's "
          "motivation for surface-aware distance in spatial mining.")


if __name__ == "__main__":
    main()
