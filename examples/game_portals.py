#!/usr/bin/env python3
"""Online 3D game scenario: portal influence on a city terrain.

The paper's fourth application (INGRESS-style games): "for each portal,
it is important to calculate the geodesic distance from this portal to
each of the other portals so that the influence of this portal is
estimated".  All-pairs workloads are exactly where an oracle pays off:
n(n-1)/2 distances through SE cost microseconds each, while on-the-fly
computation costs a full shortest-path search per pair.

The example also exercises the dynamic extension: a new portal is
deployed mid-game and the influence ranking updates without a full
rebuild.

Run:  python examples/game_portals.py
"""

import time

from repro import DynamicSEOracle, GeodesicEngine, KAlgo, SEOracle
from repro import make_terrain, sample_clustered


def influence_scores(query, n):
    """A portal's influence: inverse mean geodesic distance to others."""
    scores = {}
    for portal in range(n):
        distances = [query(portal, other)
                     for other in range(n) if other != portal]
        scores[portal] = 1.0 / (sum(distances) / len(distances))
    return scores


def main() -> None:
    city = make_terrain(grid_exponent=5, extent=(3000.0, 3000.0),
                        relief=150.0, roughness=0.4, seed=55)
    portals = sample_clustered(city, 30, seed=56)
    n = len(portals)
    print(f"city terrain: {city.num_vertices} vertices; {n} portals")

    engine = GeodesicEngine(city, portals, points_per_edge=1)
    oracle = SEOracle(engine, epsilon=0.1, seed=9)
    started = time.perf_counter()
    oracle.build()
    print(f"SE oracle built in {time.perf_counter() - started:.2f}s "
          f"({oracle.size_bytes() / 1024:.0f} KB)\n")

    # -- all-pairs influence: oracle vs on-the-fly ------------------------
    started = time.perf_counter()
    scores = influence_scores(oracle.query, n)
    oracle_seconds = time.perf_counter() - started

    kalgo = KAlgo(city, portals, epsilon=0.1, points_per_edge=1)
    started = time.perf_counter()
    sample = [(i, j) for i in range(4) for j in range(n) if i != j]
    for source, target in sample:
        kalgo.query(source, target)
    per_query = (time.perf_counter() - started) / len(sample)
    kalgo_seconds = per_query * n * (n - 1)

    top = sorted(scores, key=scores.get, reverse=True)[:5]
    print(f"all-pairs influence via SE: {oracle_seconds * 1000:.1f} ms "
          f"for {n * (n - 1)} queries")
    print(f"on-the-fly (K-Algo) estimate: {kalgo_seconds:.2f} s "
          f"({kalgo_seconds / max(oracle_seconds, 1e-9):.0f}x slower)")
    print(f"top-5 portals by influence: {top}\n")

    # -- a new portal is deployed (dynamic extension) ----------------------
    dyn = DynamicSEOracle(city, portals, epsilon=0.1, seed=9).build()
    new_portal = dyn.insert(1500.0, 1500.0)  # city centre
    distances = [dyn.query(new_portal, other) for other in range(n)]
    influence = 1.0 / (sum(distances) / len(distances))
    rank = 1 + sum(1 for s in scores.values() if s > influence)
    print(f"new portal {new_portal} at the city centre: influence "
          f"{influence:.2e}, would rank #{rank} of {n + 1} "
          "(no rebuild needed)")


if __name__ == "__main__":
    main()
