#!/usr/bin/env python3
"""Quickstart: build an SE distance oracle and query it.

Generates a small fractal terrain, samples points-of-interest on its
surface, builds the Space-Efficient distance oracle and compares its
answers (and speed) against exact on-the-fly computation.

Run:  python examples/quickstart.py
"""

import time

from repro import GeodesicEngine, SEOracle, make_terrain, sample_uniform


def main() -> None:
    # 1. A terrain surface: 1 km x 1 km, 100 m of relief.
    mesh = make_terrain(grid_exponent=4, extent=(1000.0, 1000.0),
                        relief=100.0, seed=7)
    print(f"terrain: {mesh.num_vertices} vertices, {mesh.num_faces} faces")

    # 2. Points of interest on the surface.
    pois = sample_uniform(mesh, 30, seed=11)
    print(f"POIs: {len(pois)}")

    # 3. The geodesic engine (the metric everything is measured in)
    #    and the SE oracle with a 10% error budget.
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, epsilon=0.10, seed=1)

    started = time.perf_counter()
    oracle.build()
    print(f"oracle built in {time.perf_counter() - started:.2f}s: "
          f"height={oracle.height}, pairs={oracle.num_pairs}, "
          f"size={oracle.size_bytes() / 1024:.1f} KB")

    # 4. Query it — and sanity-check against the exact distance.
    for source, target in [(0, 29), (5, 17), (12, 3)]:
        started = time.perf_counter()
        approx = oracle.query(source, target)
        oracle_us = (time.perf_counter() - started) * 1e6

        started = time.perf_counter()
        exact = engine.distance(source, target)
        exact_ms = (time.perf_counter() - started) * 1e3

        error = abs(approx - exact) / exact if exact else 0.0
        print(f"d({source:>2}, {target:>2}) = {approx:8.2f} m  "
              f"[{oracle_us:7.1f} us]   exact {exact:8.2f} m "
              f"[{exact_ms:6.2f} ms]   error {error:.4f}")

    # 5. Bulk workloads go through the batched API: the engine groups
    #    the pairs by source so each distinct source runs one
    #    multi-target search instead of one search per pair.
    pairs = [(0, t) for t in range(1, 11)] + [(5, 17), (5, 23), (12, 3)]
    engine.reset_counters()
    started = time.perf_counter()
    bulk = engine.query_many(pairs)
    bulk_ms = (time.perf_counter() - started) * 1e3
    print(f"query_many: {len(pairs)} exact distances in {bulk_ms:.2f} ms "
          f"({engine.ssad_calls} searches); "
          f"d(0, {pairs[0][1]}) = {bulk[0]:.2f} m")

    # 6. The geodesic path itself (for plotting / export).
    distance, path = engine.shortest_path(0, 29)
    print(f"path 0 -> 29: {len(path)} segments, length {distance:.2f} m")


if __name__ == "__main__":
    main()
