"""Tests for the SE oracle: node pairs, Theorem 1, queries, ε-guarantee."""

import itertools

import pytest

from repro.core import SEOracle, well_separated_threshold
from repro.geodesic import GeodesicEngine
from repro.terrain import sample_uniform


@pytest.fixture(scope="module")
def oracle(medium_engine):
    return SEOracle(medium_engine, epsilon=0.25, seed=3).build()


@pytest.fixture(scope="module")
def exact(medium_engine):
    """Ground-truth distance matrix on the same metric."""
    n = medium_engine.num_pois
    matrix = {}
    for i in range(n):
        reached = medium_engine.distances_from_poi(i)
        for j in range(n):
            matrix[(i, j)] = reached[j]
    return matrix


class TestConstructionValidation:
    def test_epsilon_validation(self, medium_engine):
        with pytest.raises(ValueError):
            SEOracle(medium_engine, epsilon=0.0)
        with pytest.raises(ValueError):
            SEOracle(medium_engine, epsilon=-1.0)

    def test_method_validation(self, medium_engine):
        with pytest.raises(ValueError):
            SEOracle(medium_engine, epsilon=0.1, method="magic")

    def test_query_before_build_raises(self, medium_engine):
        fresh = SEOracle(medium_engine, epsilon=0.2)
        with pytest.raises(RuntimeError):
            fresh.query(0, 1)
        with pytest.raises(RuntimeError):
            fresh.size_bytes()

    def test_build_populates_stats(self, oracle):
        stats = oracle.stats
        assert stats.total_seconds > 0
        assert stats.height == oracle.height
        assert stats.compressed_nodes <= stats.original_nodes
        assert stats.pairs_stored <= stats.pairs_considered
        assert stats.ssad_calls > 0
        assert stats.enhanced_lookup_fallbacks == 0  # Lemma 4 holds

    def test_well_separated_threshold(self):
        assert well_separated_threshold(2.0) == pytest.approx(3.0)
        assert well_separated_threshold(0.1) == pytest.approx(22.0)
        with pytest.raises(ValueError):
            well_separated_threshold(0.0)


class TestNodePairProperties:
    def test_all_pairs_well_separated(self, oracle, exact):
        """Theorem 1, part 1: every stored pair is well-separated."""
        tree = oracle.tree
        threshold = well_separated_threshold(oracle.epsilon)
        for (a, b), stored in oracle.pair_set.pairs.items():
            node_a, node_b = tree.node(a), tree.node(b)
            true_distance = exact[(node_a.center, node_b.center)]
            larger = max(node_a.enlarged_radius, node_b.enlarged_radius)
            assert true_distance >= threshold * larger * (1 - 1e-6)

    def test_stored_distance_is_center_distance(self, oracle, exact):
        tree = oracle.tree
        for (a, b), stored in oracle.pair_set.pairs.items():
            centers = (tree.node(a).center, tree.node(b).center)
            assert stored == pytest.approx(exact[centers], rel=1e-6)

    def test_unique_node_pair_match(self, oracle, medium_engine):
        """Theorem 1, part 2: exactly one pair covers every (p, q)."""
        n = medium_engine.num_pois
        sample = list(itertools.product(range(0, n, 5), range(0, n, 7)))
        for source, target in sample:
            a, b, _ = oracle.covering_pair(source, target)  # asserts ==1

    def test_pair_count_linear_in_n(self, medium_engine):
        """Theorem 2 flavour: pairs = O(n h / eps^2beta)."""
        oracle = SEOracle(medium_engine, epsilon=0.5, seed=1).build()
        n = medium_engine.num_pois
        budget = n * (oracle.height + 1) * (1 / 0.5) ** 4 * 64
        assert oracle.num_pairs < budget

    def test_smaller_epsilon_means_more_pairs(self, medium_engine):
        loose = SEOracle(medium_engine, epsilon=1.0, seed=1).build()
        tight = SEOracle(medium_engine, epsilon=0.1, seed=1).build()
        assert tight.num_pairs > loose.num_pairs
        # Size is dominated by the pair hash; with a 10x epsilon gap the
        # FKS slot-count variance cannot mask the growth.
        assert tight.size_bytes() > loose.size_bytes()


class TestQueries:
    def test_self_distance_zero(self, oracle, medium_engine):
        for poi in range(0, medium_engine.num_pois, 4):
            assert oracle.query(poi, poi) == 0.0

    def test_epsilon_guarantee_all_pairs(self, oracle, exact,
                                         medium_engine):
        """|d_oracle - d| <= eps * d for every POI pair."""
        n = medium_engine.num_pois
        eps = oracle.epsilon
        for source in range(n):
            for target in range(n):
                if source == target:
                    continue
                approx = oracle.query(source, target)
                true = exact[(source, target)]
                assert abs(approx - true) <= eps * true * (1 + 1e-6), (
                    f"({source},{target}): {approx} vs {true}"
                )

    def test_efficient_equals_naive_query(self, oracle, medium_engine):
        n = medium_engine.num_pois
        for source in range(0, n, 3):
            for target in range(0, n, 5):
                assert oracle.query(source, target) \
                    == oracle.query_naive(source, target)

    def test_query_matches_covering_pair(self, oracle):
        for source, target in [(0, 7), (3, 12), (20, 5)]:
            _, _, distance = oracle.covering_pair(source, target)
            assert oracle.query(source, target) == distance

    def test_symmetric_queries_within_epsilon(self, oracle, exact):
        """query(s,t) and query(t,s) may use different pairs but both
        ε-approximate the same distance."""
        eps = oracle.epsilon
        for source, target in [(1, 9), (4, 30), (17, 2)]:
            forward = oracle.query(source, target)
            backward = oracle.query(target, source)
            true = exact[(source, target)]
            assert abs(forward - true) <= eps * true * (1 + 1e-6)
            assert abs(backward - true) <= eps * true * (1 + 1e-6)


class TestNaiveConstruction:
    def test_naive_build_same_answers(self, medium_engine, exact):
        """SE(Naive) must produce an equivalent oracle (same tree seed)."""
        efficient = SEOracle(medium_engine, epsilon=0.25, seed=3).build()
        naive = SEOracle(medium_engine, epsilon=0.25, seed=3,
                         method="naive").build()
        assert naive.num_pairs == efficient.num_pairs
        n = medium_engine.num_pois
        for source in range(0, n, 3):
            for target in range(1, n, 7):
                d_naive = naive.query(source, target)
                d_eff = efficient.query(source, target)
                assert d_naive == pytest.approx(d_eff, rel=1e-9)

    def test_naive_uses_no_enhanced_edges(self, medium_engine):
        naive = SEOracle(medium_engine, epsilon=0.3, seed=2,
                         method="naive").build()
        assert naive.stats.enhanced_edges == 0
        assert naive.stats.enhanced_seconds == 0.0


class TestGreedyVariant:
    def test_greedy_build_guarantee(self, medium_engine, exact):
        oracle = SEOracle(medium_engine, epsilon=0.25, strategy="greedy",
                          seed=4).build()
        eps = oracle.epsilon
        n = medium_engine.num_pois
        for source in range(0, n, 4):
            for target in range(2, n, 6):
                if source == target:
                    continue
                approx = oracle.query(source, target)
                true = exact[(source, target)]
                assert abs(approx - true) <= eps * true * (1 + 1e-6)


class TestSmallCases:
    def test_single_poi_oracle(self, small_terrain):
        pois = sample_uniform(small_terrain, 1, seed=1)
        engine = GeodesicEngine(small_terrain, pois, points_per_edge=0)
        oracle = SEOracle(engine, epsilon=0.1).build()
        assert oracle.query(0, 0) == 0.0

    def test_two_poi_oracle(self, small_terrain):
        pois = sample_uniform(small_terrain, 2, seed=5)
        engine = GeodesicEngine(small_terrain, pois, points_per_edge=1)
        oracle = SEOracle(engine, epsilon=0.1).build()
        true = engine.distance(0, 1)
        assert oracle.query(0, 1) == pytest.approx(true, rel=0.1)
        assert oracle.query(0, 0) == 0.0

    def test_various_epsilons_small(self, small_engine):
        n = small_engine.num_pois
        exact = {}
        for i in range(n):
            reached = small_engine.distances_from_poi(i)
            for j, d in reached.items():
                exact[(i, j)] = d
        for epsilon in (0.05, 0.1, 0.25, 0.5, 1.0):
            oracle = SEOracle(small_engine, epsilon=epsilon, seed=7).build()
            for source in range(0, n, 2):
                for target in range(1, n, 3):
                    if source == target:
                        continue
                    approx = oracle.query(source, target)
                    true = exact[(source, target)]
                    assert abs(approx - true) <= epsilon * true * (1 + 1e-6)


class TestSizeModel:
    def test_size_components(self, oracle):
        assert oracle.size_bytes() > 0
        assert oracle.tree.size_bytes() < oracle.size_bytes()

    def test_size_grows_with_n(self, medium_terrain):
        sizes = []
        for count in (10, 40):
            pois = sample_uniform(medium_terrain, count, seed=8)
            engine = GeodesicEngine(medium_terrain, pois, points_per_edge=0)
            oracle = SEOracle(engine, epsilon=0.25, seed=1).build()
            sizes.append(oracle.size_bytes())
        assert sizes[1] > sizes[0]
