"""Tests for real-DEM ingestion (terrain/ingest.py)."""

import math
import pathlib
import struct

import numpy as np
import pytest

from repro.terrain.ingest import (
    EARTH_RADIUS_M,
    DEMGrid,
    IngestError,
    LocalProjection,
    dem_to_mesh,
    haversine_gate,
    haversine_m,
    place_pois,
    read_asc,
    read_dem,
    read_geotiff,
    read_poi_csv,
    sample_poi_latlons,
)

DATA = pathlib.Path(__file__).parent / "data"
ASC_FIXTURE = DATA / "dem_fixture.asc"
TIF_FIXTURE = DATA / "dem_fixture.tif"
POI_FIXTURE = DATA / "dem_pois.csv"


def write_asc(path, heights, cellsize=0.001, xll=7.0, yll=46.0,
              nodata=-9999.0, corner=True):
    nrows, ncols = heights.shape
    xkey, ykey = ("xllcorner", "yllcorner") if corner else \
        ("xllcenter", "yllcenter")
    lines = [f"ncols {ncols}", f"nrows {nrows}", f"{xkey} {xll}",
             f"{ykey} {yll}", f"cellsize {cellsize}",
             f"NODATA_value {nodata}"]
    for row in heights:
        lines.append(" ".join(f"{v:.2f}" for v in row))
    path.write_text("\n".join(lines) + "\n")
    return path


def write_minimal_tiff(path, heights, *, compression=1, magic=42,
                       georef=True, truncate_strip=False):
    """A little-endian single-strip float32 TIFF, optionally broken."""
    nrows, ncols = heights.shape
    data = heights.astype("<f4").tobytes()
    if truncate_strip:
        data = data[: len(data) // 2]
    scale = struct.pack("<3d", 0.001, 0.001, 0.0)
    tiepoint = struct.pack("<6d", 0.0, 0.0, 0.0, 7.0, 46.0 + nrows * 0.001,
                           0.0)
    nodata = b"-9999\x00"

    def inline(fmt, *values):
        return struct.pack(fmt, *values).ljust(4, b"\x00")

    entries = [
        (256, 3, 1, None), (257, 3, 1, None), (258, 3, 1, None),
        (259, 3, 1, None), (273, 4, 1, None), (277, 3, 1, None),
        (278, 3, 1, None), (279, 4, 1, None), (339, 3, 1, None),
        (42113, 2, len(nodata), None),
    ]
    if georef:
        entries += [(33550, 12, 3, None), (33922, 12, 6, None)]
    entries.sort(key=lambda e: e[0])
    ifd_offset = 8
    ifd_size = 2 + len(entries) * 12 + 4
    extra_offset = ifd_offset + ifd_size
    extra = bytearray()
    deferred = {}
    for tag, payload in ((33550, scale), (33922, tiepoint),
                         (42113, nodata)):
        deferred[tag] = extra_offset + len(extra)
        extra += payload
    strip_offset = extra_offset + len(extra)
    values = {
        256: inline("<H", ncols),
        257: inline("<H", nrows),
        258: inline("<H", 32),
        259: inline("<H", compression),
        273: inline("<I", strip_offset),
        277: inline("<H", 1),
        278: inline("<H", nrows),
        279: inline("<I", len(data)),
        339: inline("<H", 3),
        33550: struct.pack("<I", deferred[33550]),
        33922: struct.pack("<I", deferred[33922]),
        42113: struct.pack("<I", deferred[42113]),
    }
    out = bytearray()
    out += b"II" + struct.pack("<HI", magic, ifd_offset)
    out += struct.pack("<H", len(entries))
    for tag, type_id, count, _ in entries:
        out += struct.pack("<HHI", tag, type_id, count) + values[tag]
    out += struct.pack("<I", 0)
    out += extra + data
    path.write_bytes(bytes(out))
    return path


class TestReadAsc:
    def test_fixture_shape_and_values(self):
        grid = read_asc(ASC_FIXTURE)
        assert grid.shape == (16, 20)  # non-square on purpose
        assert grid.is_geographic
        valid = grid.heights[np.isfinite(grid.heights)]
        assert 600.0 < valid.min() < valid.max() < 2500.0
        # 4 nodata cells in the fixture became NaN.
        assert np.isnan(grid.heights).sum() == 4

    def test_cell_centre_coordinates(self, tmp_path):
        grid = read_asc(write_asc(tmp_path / "g.asc",
                                  np.ones((3, 4)), cellsize=0.5,
                                  xll=10.0, yll=40.0))
        # xllcorner: centre of column 0 is half a cell in.
        assert grid.lons[0] == pytest.approx(10.25)
        # Row 0 is the northern row: yll + (nrows - 0.5) * cell.
        assert grid.lats[0] == pytest.approx(41.25)
        assert grid.lats[-1] == pytest.approx(40.25)

    def test_llcenter_variant(self, tmp_path):
        grid = read_asc(write_asc(tmp_path / "g.asc",
                                  np.ones((3, 4)), cellsize=0.5,
                                  xll=10.0, yll=40.0, corner=False))
        assert grid.lons[0] == pytest.approx(10.0)
        assert grid.lats[-1] == pytest.approx(40.0)

    def test_truncated_grid_rejected(self, tmp_path):
        path = write_asc(tmp_path / "g.asc", np.ones((4, 4)))
        text = path.read_text().splitlines()
        path.write_text("\n".join(text[:-2]) + "\n")  # drop two rows
        with pytest.raises(IngestError, match="truncated"):
            read_asc(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "g.asc"
        path.write_text("ncols 4\nnrows 4\ncellsize 1.0\n" + "1 " * 16)
        with pytest.raises(IngestError, match="xllcorner"):
            read_asc(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = write_asc(tmp_path / "g.asc", np.ones((3, 3)))
        path.write_text(path.read_text().replace("1.00", "oops", 1))
        with pytest.raises(IngestError, match="non-numeric"):
            read_asc(path)

    def test_degenerate_grid_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="at least 2x2"):
            read_asc(write_asc(tmp_path / "g.asc", np.ones((1, 5))))


class TestReadGeoTiff:
    def test_fixture_matches_asc(self):
        asc = read_asc(ASC_FIXTURE)
        tif = read_geotiff(TIF_FIXTURE)
        assert tif.shape == asc.shape
        assert np.allclose(np.nan_to_num(tif.heights, nan=-1.0),
                           np.nan_to_num(asc.heights, nan=-1.0),
                           atol=1e-4)
        assert np.allclose(tif.lats, asc.lats)
        assert np.allclose(tif.lons, asc.lons)

    def test_round_trip_meshes_agree(self):
        mesh_a, _ = dem_to_mesh(read_asc(ASC_FIXTURE))
        mesh_t, _ = dem_to_mesh(read_geotiff(TIF_FIXTURE))
        assert mesh_a.num_vertices == mesh_t.num_vertices
        assert mesh_a.num_faces == mesh_t.num_faces
        assert np.allclose(mesh_a.vertices, mesh_t.vertices, atol=1e-3)

    def test_not_a_tiff(self, tmp_path):
        path = tmp_path / "x.tif"
        path.write_bytes(b"OFF 1 2 3")
        with pytest.raises(IngestError, match="byte-order"):
            read_geotiff(path)

    def test_bad_magic(self, tmp_path):
        path = write_minimal_tiff(tmp_path / "x.tif", np.ones((3, 3)),
                                  magic=43)
        with pytest.raises(IngestError, match="magic"):
            read_geotiff(path)

    def test_compressed_rejected(self, tmp_path):
        path = write_minimal_tiff(tmp_path / "x.tif", np.ones((3, 3)),
                                  compression=5)
        with pytest.raises(IngestError, match="compression"):
            read_geotiff(path)

    def test_truncated_strip_rejected(self, tmp_path):
        path = write_minimal_tiff(tmp_path / "x.tif",
                                  np.ones((4, 4)), truncate_strip=True)
        with pytest.raises(IngestError, match="truncated|strip"):
            read_geotiff(path)

    def test_missing_georeferencing_rejected(self, tmp_path):
        path = write_minimal_tiff(tmp_path / "x.tif", np.ones((3, 3)),
                                  georef=False)
        with pytest.raises(IngestError, match="ModelPixelScale"):
            read_geotiff(path)


class TestReadDem:
    def test_dispatch(self):
        assert read_dem(ASC_FIXTURE).shape == (16, 20)
        assert read_dem(TIF_FIXTURE).shape == (16, 20)

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "x.hgt"
        path.write_text("")
        with pytest.raises(IngestError, match="unsupported"):
            read_dem(path)


class TestDemToMesh:
    def test_nodata_cells_become_holes(self):
        grid = read_asc(ASC_FIXTURE)
        mesh, projection = dem_to_mesh(grid)
        assert projection is not None
        assert mesh.num_vertices == int(np.isfinite(grid.heights).sum())
        # A full 16x20 grid would have 2*15*19 = 570 faces; the nodata
        # pocket removes some.
        assert mesh.num_faces < 2 * 15 * 19

    def test_edge_lengths_are_metres(self):
        mesh, _ = dem_to_mesh(read_asc(ASC_FIXTURE))
        width, height = mesh.xy_extent()
        # 20 x 0.00083333 deg of longitude at ~46.4N is ~1.2 km.
        assert 1000.0 < width < 1500.0
        assert 1000.0 < height < 1600.0

    def test_decimation(self):
        grid = read_asc(ASC_FIXTURE)
        full, _ = dem_to_mesh(grid)
        coarse, _ = dem_to_mesh(grid, decimate=2)
        assert coarse.num_vertices < full.num_vertices / 3
        with pytest.raises(IngestError, match="factor"):
            dem_to_mesh(grid, decimate=0)

    def test_nodata_only_grid_rejected(self, tmp_path):
        heights = np.full((4, 4), -9999.0)
        path = write_asc(tmp_path / "g.asc", heights)
        with pytest.raises(IngestError, match="nodata"):
            dem_to_mesh(read_asc(path))

    def test_too_sparse_grid_rejected(self, tmp_path):
        # Valid cells only on a diagonal: no 2x2 block triangulates.
        heights = np.full((4, 4), -9999.0)
        np.fill_diagonal(heights, 100.0)
        path = write_asc(tmp_path / "g.asc", heights)
        with pytest.raises(IngestError, match="triangulatable"):
            dem_to_mesh(read_asc(path))

    def test_projected_grid_has_no_projection(self):
        heights = np.ones((3, 3))
        grid = DEMGrid(heights=heights,
                       lats=np.array([2000.0, 1000.0, 0.0]),
                       lons=np.array([0.0, 1000.0, 2000.0]))
        assert not grid.is_geographic
        mesh, projection = dem_to_mesh(grid)
        assert projection is None
        assert mesh.num_vertices == 9

    def test_z_scale(self):
        grid = read_asc(ASC_FIXTURE)
        flat, _ = dem_to_mesh(grid, z_scale=0.0)
        assert np.allclose(flat.vertices[:, 2], 0.0)


class TestProjection:
    def test_round_trip(self):
        projection = LocalProjection(lat0=46.4, lon0=7.65)
        lat, lon = projection.to_latlon(*projection.to_xy(46.41, 7.66))
        assert lat == pytest.approx(46.41, abs=1e-12)
        assert lon == pytest.approx(7.66, abs=1e-12)

    def test_matches_haversine_locally(self):
        projection = LocalProjection(lat0=46.4, lon0=7.65)
        x, y = projection.to_xy(46.405, 7.655)
        planar = math.hypot(x, y)
        great_circle = haversine_m(46.4, 7.65, 46.405, 7.655)
        assert planar == pytest.approx(great_circle, rel=1e-4)


class TestPoiPlacement:
    def test_fixture_pois_place(self):
        mesh, projection = dem_to_mesh(read_asc(ASC_FIXTURE))
        names, latlons = read_poi_csv(POI_FIXTURE)
        pois = place_pois(mesh, projection, latlons)
        assert len(pois) == len(names) == 6
        heights = read_asc(ASC_FIXTURE).heights
        valid = heights[np.isfinite(heights)]
        for poi in pois:
            assert valid.min() - 1.0 <= poi.z <= valid.max() + 1.0

    def test_poi_outside_extent_rejected(self):
        mesh, projection = dem_to_mesh(read_asc(ASC_FIXTURE))
        with pytest.raises(IngestError, match="outside"):
            place_pois(mesh, projection, [(47.5, 7.65)])

    def test_duplicate_pois_rejected(self):
        mesh, projection = dem_to_mesh(read_asc(ASC_FIXTURE))
        _, latlons = read_poi_csv(POI_FIXTURE)
        with pytest.raises(IngestError, match="duplicate"):
            place_pois(mesh, projection, [latlons[0], latlons[0]])

    def test_placement_needs_projection(self):
        grid = DEMGrid(heights=np.ones((3, 3)),
                       lats=np.array([2000.0, 1000.0, 0.0]),
                       lons=np.array([0.0, 1000.0, 2000.0]))
        mesh, projection = dem_to_mesh(grid)
        with pytest.raises(IngestError, match="geographic"):
            place_pois(mesh, projection, [(46.4, 7.65)])

    def test_sampled_latlons_replace(self):
        mesh, projection = dem_to_mesh(read_asc(ASC_FIXTURE))
        latlons = sample_poi_latlons(mesh, projection, 8, seed=3)
        assert latlons == sample_poi_latlons(mesh, projection, 8, seed=3)
        pois = place_pois(mesh, projection, latlons)
        assert len(pois) == 8

    def test_poi_csv_errors(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("name,lat,lon\nhut,46.4\n")
        with pytest.raises(IngestError, match="name,lat,lon"):
            read_poi_csv(path)
        path.write_text("name,lat,lon\nhut,146.4,7.6\n")
        with pytest.raises(IngestError, match="latitude"):
            read_poi_csv(path)
        path.write_text("name,lat,lon\n")
        with pytest.raises(IngestError, match="no POI records"):
            read_poi_csv(path)


class TestHaversine:
    def test_known_distance(self):
        # One degree of latitude is ~111.2 km on the mean sphere.
        one_degree = haversine_m(46.0, 7.0, 47.0, 7.0)
        assert one_degree == pytest.approx(
            EARTH_RADIUS_M * math.pi / 180.0, rel=1e-9)

    def test_gate_passes_on_fixture_oracle(self):
        from repro.core import SEOracle
        from repro.geodesic import GeodesicEngine
        mesh, projection = dem_to_mesh(read_asc(ASC_FIXTURE))
        _, latlons = read_poi_csv(POI_FIXTURE)
        pois = place_pois(mesh, projection, latlons)
        engine = GeodesicEngine(mesh, pois, points_per_edge=1)
        oracle = SEOracle(engine, 0.1).build()
        report = haversine_gate(oracle, latlons, epsilon=0.1)
        assert report["ok"], report["failures"]
        assert report["pairs_checked"] == 15
        # Terrain distance strictly exceeds the great-circle floor.
        assert report["min_ratio"] > 1.0

    def test_gate_flags_undercutting_index(self):
        class ShrunkenIndex:
            num_pois = 3

            def query_matrix(self):
                return np.full((3, 3), 1.0)  # 1 m between everything

        latlons = [(46.40, 7.65), (46.41, 7.65), (46.40, 7.66)]
        report = haversine_gate(ShrunkenIndex(), latlons, epsilon=0.1)
        assert not report["ok"]
        assert len(report["failures"]) == 3
        assert report["min_ratio"] < 0.01

    def test_gate_rejects_count_mismatch(self):
        class Index:
            num_pois = 4

            def query_matrix(self):  # pragma: no cover - never reached
                return np.zeros((4, 4))

        with pytest.raises(IngestError, match="3 geographic"):
            haversine_gate(Index(), [(0.0, 0.0)] * 3, epsilon=0.1)
