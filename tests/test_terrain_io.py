"""Tests for OFF / OBJ mesh I/O."""

import numpy as np
import pytest

from repro.terrain import (
    MeshError,
    make_terrain,
    read_mesh,
    read_obj,
    read_off,
    write_mesh,
    write_obj,
    write_off,
)


@pytest.fixture
def small_mesh():
    return make_terrain(grid_exponent=2, extent=(10.0, 10.0), seed=1)


class TestOFF:
    def test_roundtrip(self, small_mesh, tmp_path):
        path = tmp_path / "terrain.off"
        write_off(small_mesh, path)
        loaded = read_off(path)
        np.testing.assert_allclose(loaded.vertices, small_mesh.vertices)
        np.testing.assert_array_equal(loaded.faces, small_mesh.faces)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.off"
        path.write_text("3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 2\n")
        with pytest.raises(MeshError):
            read_off(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.off"
        path.write_text("OFF\n3 1 0\n0 0 0\n1 0 0\n")
        with pytest.raises(MeshError):
            read_off(path)

    def test_non_triangular_face(self, tmp_path):
        path = tmp_path / "quad.off"
        path.write_text(
            "OFF\n4 1 0\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n"
        )
        with pytest.raises(MeshError):
            read_off(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "comment.off"
        path.write_text(
            "OFF # header\n# full comment line\n3 1 0\n"
            "0 0 0\n1 0 0\n0 1 0\n3 0 1 2\n"
        )
        mesh = read_off(path)
        assert mesh.num_vertices == 3
        assert mesh.num_faces == 1


class TestOBJ:
    def test_roundtrip(self, small_mesh, tmp_path):
        path = tmp_path / "terrain.obj"
        write_obj(small_mesh, path)
        loaded = read_obj(path)
        np.testing.assert_allclose(loaded.vertices, small_mesh.vertices)
        np.testing.assert_array_equal(loaded.faces, small_mesh.faces)

    def test_slash_indices(self, tmp_path):
        path = tmp_path / "tex.obj"
        path.write_text(
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nvn 0 0 1\nf 1/1/1 2/2/1 3/3/1\n"
        )
        mesh = read_obj(path)
        assert mesh.num_faces == 1
        np.testing.assert_array_equal(mesh.faces[0], [0, 1, 2])

    def test_negative_indices(self, tmp_path):
        path = tmp_path / "neg.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n")
        mesh = read_obj(path)
        np.testing.assert_array_equal(mesh.faces[0], [0, 1, 2])

    def test_quad_face_rejected(self, tmp_path):
        path = tmp_path / "quad.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n")
        with pytest.raises(MeshError):
            read_obj(path)

    def test_short_vertex_rejected(self, tmp_path):
        path = tmp_path / "short.obj"
        path.write_text("v 0 0\n")
        with pytest.raises(MeshError):
            read_obj(path)


class TestDispatch:
    def test_read_write_mesh_off(self, small_mesh, tmp_path):
        path = tmp_path / "t.off"
        write_mesh(small_mesh, path)
        assert read_mesh(path).num_vertices == small_mesh.num_vertices

    def test_read_write_mesh_obj(self, small_mesh, tmp_path):
        path = tmp_path / "t.obj"
        write_mesh(small_mesh, path)
        assert read_mesh(path).num_vertices == small_mesh.num_vertices

    def test_unknown_extension(self, small_mesh, tmp_path):
        with pytest.raises(MeshError):
            write_mesh(small_mesh, tmp_path / "t.stl")
        with pytest.raises(MeshError):
            read_mesh(tmp_path / "t.ply")
