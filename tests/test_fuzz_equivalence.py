"""Seeded randomized equivalence fuzzing across the oracle stack.

Every draw samples a fresh workload — terrain seed, POI count, ε,
selection strategy — builds an SE oracle over it, and asserts three
properties that every PR so far has pinned only on fixed fixtures:

1. **Approximation.**  ``SEOracle.query`` is within ``(1 ± ε)`` of the
   exact metric-graph distance computed by the seed repository's
   :func:`~repro.geodesic.dijkstra.dijkstra_reference` kernel (the
   executable ground-truth specification).
2. **Batch == scalar, bit for bit.**  The compiled batched path
   answers exactly what the scalar tree walk answers.
3. **Pack -> open -> query identity.**  A store round-trip
   (:func:`pack_oracle` / :func:`open_oracle`) serves bit-identical
   distances — persistence as a *property* over random workloads, not
   a hand-picked fixture.

The draws are deterministic per seed (``random.Random(seed)``), so a
failure reproduces by seed; terrains stay tiny (the build is the
expensive part, not the assertions).
"""

import random

import numpy as np
import pytest

from repro.core import SEOracle, open_oracle, pack_oracle
from repro.geodesic import GeodesicEngine, dijkstra_reference
from repro.terrain import make_terrain, sample_uniform

SEEDS = range(8)

EPSILONS = (0.1, 0.25, 0.5, 1.0)
STRATEGIES = ("random", "greedy")


def draw_workload(seed: int):
    """One random workload + built oracle, deterministic per seed."""
    rng = random.Random(seed)
    mesh = make_terrain(
        grid_exponent=3,
        extent=(rng.uniform(60.0, 160.0), rng.uniform(60.0, 160.0)),
        relief=rng.uniform(5.0, 40.0),
        roughness=rng.uniform(0.4, 0.7),
        seed=rng.randrange(1 << 16),
    )
    pois = sample_uniform(mesh, rng.randrange(6, 18),
                          seed=rng.randrange(1 << 16))
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    epsilon = rng.choice(EPSILONS)
    oracle = SEOracle(engine, epsilon,
                      strategy=rng.choice(STRATEGIES),
                      seed=rng.randrange(1 << 16)).build()
    return engine, oracle


def exact_distances(engine, source: int) -> dict:
    """Ground-truth metric-graph distances from one POI to all POIs.

    Uses the dict-based reference kernel directly — not the engine's
    production kernel — so the oracle is checked against the
    executable specification, not against code that shares the CSR
    fast path.
    """
    adjacency = engine.graph.adjacency
    poi_nodes = [engine.poi_node(poi) for poi in range(engine.num_pois)]
    result = dijkstra_reference(adjacency, poi_nodes[source],
                                targets=poi_nodes)
    return {poi: result.distances[node]
            for poi, node in enumerate(poi_nodes)
            if node in result.distances}


@pytest.fixture(scope="module", params=SEEDS,
                ids=[f"seed{seed}" for seed in SEEDS])
def drawn(request):
    return draw_workload(request.param)


class TestApproximationProperty:
    def test_query_within_epsilon_of_reference(self, drawn):
        """|d_oracle - d_exact| <= eps * d_exact on every POI pair."""
        engine, oracle = drawn
        eps = oracle.epsilon
        n = engine.num_pois
        for source in range(n):
            exact = exact_distances(engine, source)
            for target in range(n):
                if target == source:
                    assert oracle.query(source, target) == 0.0
                    continue
                true = exact[target]
                approx = oracle.query(source, target)
                assert abs(approx - true) <= eps * true * (1 + 1e-6), (
                    f"({source},{target}): {approx} vs exact {true} "
                    f"(eps={eps})"
                )


class TestBatchScalarIdentity:
    def test_batch_equals_scalar_bitwise(self, drawn):
        engine, oracle = drawn
        n = engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        batched = oracle.query_batch(sources, targets)
        for index in range(sources.size):
            assert batched[index] == oracle.query(int(sources[index]),
                                                  int(targets[index]))

    def test_matrix_equals_batch(self, drawn):
        _, oracle = drawn
        n = oracle.engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        matrix = oracle.query_matrix()
        batched = oracle.query_batch(np.repeat(grid, n),
                                     np.tile(grid, n))
        assert (matrix.reshape(-1) == batched).all()


class TestStoreRoundTripProperty:
    def test_pack_open_query_identity(self, drawn, tmp_path):
        """Persistence round-trips bit-identically on random draws."""
        engine, oracle = drawn
        path = tmp_path / "fuzz.store"
        pack_oracle(oracle, path)
        stored = open_oracle(path, engine=engine)  # fingerprint passes
        n = engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        assert (stored.query_batch(sources, targets)
                == oracle.query_batch(sources, targets)).all()
        for source in range(0, n, 3):
            for target in range(n):
                assert stored.query(source, target) \
                    == oracle.query(source, target)

    def test_rehydrated_scalar_walk_identity(self, drawn, tmp_path):
        """The store's lazily rebuilt scalar hash answers identically
        through the full SEOracle tree walk."""
        engine, oracle = drawn
        path = tmp_path / "fuzz.store"
        pack_oracle(oracle, path)
        full = open_oracle(path).to_oracle(engine)
        n = engine.num_pois
        for source in range(0, n, 2):
            for target in range(n):
                assert full.query(source, target) \
                    == oracle.query(source, target)


class TestPagedEquivalenceProperty:
    """Page-pool equivalence over random draws (PR-10 tentpole).

    Every seeded workload is packed and re-served through
    :class:`~repro.core.paged.PagedOracle` at three pool bounds — a
    single page, ~25% of the paged columns, everything resident — and
    the full query grid (batch + matrix + sampled scalars) must be
    **bit-identical** to the in-memory oracle at each bound.  Paging
    changes where bytes come from, never which element a probe reads,
    so there is no tolerance to hide behind.
    """

    def _pool_shapes(self, path):
        from repro.core.paged import PAGED_SECTIONS
        from repro.core.store import section_layouts
        _, layouts = section_layouts(path)
        pageable = sum(
            int(np.prod(shape, dtype=np.intp)) * dtype.itemsize
            for name, (offset, dtype, shape) in layouts.items()
            if name in PAGED_SECTIONS)
        quarter = max(8, pageable // 4 // 8 * 8)
        return (
            {"page_bytes": 64, "max_pages": 1},
            {"page_bytes": quarter, "max_pages": 4},
            {"page_bytes": 4096, "max_pages": 1 << 20},
        )

    def test_paged_bit_identical_at_every_pool_bound(self, drawn,
                                                     tmp_path):
        from repro.core.paged import PagedOracle
        engine, oracle = drawn
        path = tmp_path / "fuzz.store"
        pack_oracle(oracle, path)
        n = engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        expected_batch = oracle.query_batch(sources, targets)
        expected_matrix = oracle.query_matrix()
        for shape in self._pool_shapes(path):
            paged = PagedOracle(str(path), **shape)
            assert (paged.query_batch(sources, targets)
                    == expected_batch).all(), shape
            assert (paged.query_matrix() == expected_matrix).all(), \
                shape
            for source in range(0, n, 3):
                assert paged.query(source, n - 1 - source) \
                    == oracle.query(source, n - 1 - source)
            ledger = paged.page_counters()
            assert ledger["loads"] - ledger["evictions"] \
                == ledger["resident_pages"]
            assert ledger["peak_resident_bytes"] \
                <= ledger["budget_bytes"]
            paged.close()


class TestDynamicUpdateFuzz:
    """Interleaved insert/delete/batch-query fuzzing (PR-5 tentpole).

    Each seeded draw builds a *dynamic* oracle over a fresh random
    workload, then walks a seeded action sequence mixing POI inserts,
    deletes and batched queries.  After every batch:

    1. **Batch == scalar, bit for bit** — the delta tables serve both
       paths, whatever the overlay/tombstone state.
    2. **Approximation vs ground truth** — every answered distance is
       within ``(1 ± ε)`` of ``dijkstra_reference`` on the *current*
       metric graph (overlay sites attached); overlay answers are
       exact on that metric, base answers inherit the SE guarantee.
    """

    ACTIONS = 14

    @pytest.fixture(params=SEEDS, ids=[f"seed{seed}" for seed in SEEDS])
    def dynamic_drawn(self, request):
        from repro.core import DynamicSEOracle
        rng = random.Random(1000 + request.param)
        mesh = make_terrain(
            grid_exponent=3,
            extent=(rng.uniform(60.0, 160.0), rng.uniform(60.0, 160.0)),
            relief=rng.uniform(5.0, 40.0),
            roughness=rng.uniform(0.4, 0.7),
            seed=rng.randrange(1 << 16),
        )
        pois = sample_uniform(mesh, rng.randrange(6, 14),
                              seed=rng.randrange(1 << 16))
        oracle = DynamicSEOracle(
            mesh, pois, epsilon=rng.choice(EPSILONS),
            rebuild_factor=rng.choice((0.5, 2.0, 10.0)),
            seed=rng.randrange(1 << 16)).build()
        return mesh, oracle, rng

    def _reference_distance(self, oracle, poi_a: int, poi_b: int) -> float:
        """Exact metric-graph distance via the reference kernel."""
        if poi_a == poi_b:
            return 0.0
        node_a = oracle._node_of(poi_a)
        node_b = oracle._node_of(poi_b)
        result = dijkstra_reference(oracle.engine.graph.adjacency,
                                    node_a, targets=[node_b])
        return result.distances.get(node_b, float("inf"))

    def test_interleaved_updates_and_batches(self, dynamic_drawn):
        mesh, oracle, rng = dynamic_drawn
        eps = oracle.epsilon
        low, high = mesh.bounding_box()
        batches_checked = 0
        for _ in range(self.ACTIONS):
            action = rng.choice(("insert", "delete", "batch", "batch"))
            live = [int(poi) for poi in oracle.live_ids()]
            if action == "insert":
                x = rng.uniform(float(low[0]), float(high[0]))
                y = rng.uniform(float(low[1]), float(high[1]))
                if mesh.locate_face(x, y) >= 0:
                    fresh = oracle.insert(x, y)
                    assert oracle.query(fresh, fresh) == 0.0
            elif action == "delete" and len(live) > 3:
                victim = rng.choice(live)
                oracle.delete(victim)
                with pytest.raises(KeyError):
                    oracle.query(victim, live[0] if live[0] != victim
                                 else live[1])
            else:
                pairs = [(rng.choice(live), rng.choice(live))
                         for _ in range(12)]
                sources = [a for a, _ in pairs]
                targets = [b for _, b in pairs]
                batched = oracle.query_batch(sources, targets)
                for index, (a, b) in enumerate(pairs):
                    scalar = oracle.query(a, b)
                    assert batched[index] == scalar, (
                        f"batch/scalar diverge on ({a}, {b})")
                    true = self._reference_distance(oracle, a, b)
                    if true == 0.0:
                        assert scalar == 0.0
                    else:
                        assert abs(scalar - true) <= eps * true * (
                            1 + 1e-6), (
                            f"({a},{b}): {scalar} vs exact {true} "
                            f"(eps={eps})")
                batches_checked += 1
        assert batches_checked > 0


class TestChurnFlushQueryFuzz:
    """Interleaved churn + flush + query fuzzing (PR-8 tentpole).

    Two identically-drawn dynamic oracles walk the same seeded action
    sequence; at random mid-trace points one takes an *incremental*
    flush while its twin takes a full ``force_rebuild``.  After every
    flush point:

    1. **Rebuild equivalence** — the all-pairs matrices of the two
       oracles are bit-identical (the spliced tables answer exactly
       what a from-scratch build answers).
    2. **Batch == scalar, bit for bit** — on the incremental side.
    3. **Approximation** — sampled answers stay within ``(1 ± ε)`` of
       :func:`dijkstra_reference` on the current metric graph.
    """

    ACTIONS = 12

    @pytest.fixture(params=SEEDS, ids=[f"seed{seed}" for seed in SEEDS])
    def twins(self, request):
        from repro.core import DynamicSEOracle
        rng = random.Random(2000 + request.param)
        mesh = make_terrain(
            grid_exponent=3,
            extent=(rng.uniform(60.0, 160.0), rng.uniform(60.0, 160.0)),
            relief=rng.uniform(5.0, 40.0),
            roughness=rng.uniform(0.4, 0.7),
            seed=rng.randrange(1 << 16),
        )
        pois = sample_uniform(mesh, rng.randrange(6, 14),
                              seed=rng.randrange(1 << 16))
        epsilon = rng.choice(EPSILONS)
        build_seed = rng.randrange(1 << 16)
        make = lambda: DynamicSEOracle(  # noqa: E731
            mesh, pois, epsilon=epsilon, rebuild_factor=10.0,
            seed=build_seed).build()
        return mesh, make(), make(), rng

    def _assert_flush_point(self, oracle, twin, rng):
        eps = oracle.epsilon
        live = [int(poi) for poi in oracle.live_ids()]
        assert np.array_equal(oracle.live_ids(), twin.live_ids())
        matrix = oracle.query_matrix()
        assert np.array_equal(matrix, twin.query_matrix())
        sources = np.asarray([rng.choice(live) for _ in range(8)],
                             dtype=np.intp)
        targets = np.asarray([rng.choice(live) for _ in range(8)],
                             dtype=np.intp)
        batched = oracle.query_batch(sources, targets)
        for index in range(sources.size):
            a, b = int(sources[index]), int(targets[index])
            scalar = oracle.query(a, b)
            assert batched[index] == scalar
            true = TestDynamicUpdateFuzz._reference_distance(
                self, oracle, a, b)
            if true == 0.0:
                assert scalar == 0.0
            else:
                assert abs(scalar - true) <= eps * true * (1 + 1e-6), (
                    f"({a},{b}): {scalar} vs exact {true} (eps={eps})")

    def test_incremental_flush_mid_trace(self, twins):
        mesh, oracle, twin, rng = twins
        low, high = mesh.bounding_box()
        flushes = 0
        for _ in range(self.ACTIONS):
            action = rng.choice(("insert", "delete", "flush", "insert"))
            live = [int(poi) for poi in oracle.live_ids()]
            if action == "insert":
                x = rng.uniform(float(low[0]), float(high[0]))
                y = rng.uniform(float(low[1]), float(high[1]))
                if mesh.locate_face(x, y) >= 0:
                    oracle.insert(x, y)
                    twin.insert(x, y)
            elif action == "delete" and len(live) > 3:
                victim = rng.choice(live)
                oracle.delete(victim)
                twin.delete(victim)
            elif action == "flush":
                oracle.flush()
                twin.force_rebuild()
                flushes += 1
                self._assert_flush_point(oracle, twin, rng)
        if not flushes:  # the draw never rolled "flush": force one
            oracle.flush()
            twin.force_rebuild()
            flushes += 1
            self._assert_flush_point(oracle, twin, rng)
        assert flushes > 0
