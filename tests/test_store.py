"""Tests for the v4 binary oracle store (pack / open / convert)."""

import json
import zipfile

import numpy as np
import pytest

from repro.core import (
    SEOracle,
    load_oracle,
    open_oracle,
    pack_document,
    pack_oracle,
    save_oracle,
)
from repro.core.store import STORE_VERSION, read_store, read_store_meta
from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, sample_uniform


@pytest.fixture(scope="module")
def workload():
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                       relief=15.0, seed=83)
    pois = sample_uniform(mesh, 15, seed=84)
    return GeodesicEngine(mesh, pois, points_per_edge=1)


@pytest.fixture(scope="module")
def built(workload):
    return SEOracle(workload, epsilon=0.25, seed=6).build()


@pytest.fixture(scope="module")
def store_path(built, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "oracle.store"
    pack_oracle(built, path)
    return path


class TestPack:
    def test_unbuilt_oracle_rejected(self, workload, tmp_path):
        with pytest.raises(ValueError):
            pack_oracle(SEOracle(workload, epsilon=0.25), tmp_path / "o")

    def test_file_is_a_plain_npz(self, store_path):
        """The store is a standard uncompressed zip numpy can read."""
        with np.load(store_path) as archive:
            names = set(archive.files)
            assert {"meta.json", "chains", "pair_keys",
                    "pair_distances", "tree_table", "tree_radii",
                    "hash_slots"} <= names
        with zipfile.ZipFile(store_path) as archive:
            for info in archive.infolist():
                assert info.compress_type == zipfile.ZIP_STORED

    def test_meta_document(self, store_path, built, workload):
        from repro.core import workload_fingerprint
        meta = read_store_meta(store_path)
        assert meta["version"] == STORE_VERSION == 4
        assert meta["epsilon"] == built.epsilon
        assert meta["fingerprint"] == workload_fingerprint(workload)
        assert meta["stats"]["pairs_stored"] == built.num_pairs
        assert meta["tree"]["height"] == built.height

    def test_save_oracle_suffix_routing(self, built, workload, tmp_path):
        """save_oracle picks the binary store for .store paths."""
        path = tmp_path / "oracle.store"
        save_oracle(built, path)
        assert read_store_meta(path)["version"] == 4
        loaded = load_oracle(path, workload)
        assert loaded.query(0, 1) == built.query(0, 1)


class TestOpen:
    def test_sections_are_memory_mapped(self, store_path):
        meta, sections = read_store(store_path)
        for name in ("chains", "pair_keys", "pair_distances",
                     "hash_slots"):
            assert isinstance(sections[name], np.memmap), name
            assert not sections[name].flags.writeable

    def test_mmap_false_reads_copies(self, store_path):
        _, sections = read_store(store_path, mmap=False)
        assert not isinstance(sections["chains"], np.memmap)

    def test_open_query_bit_identical(self, store_path, built, workload):
        stored = open_oracle(store_path)
        n = workload.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        batched = stored.query_batch(sources, targets)
        for index in range(sources.size):
            assert batched[index] == built.query(int(sources[index]),
                                                 int(targets[index]))

    def test_scalar_query_delegates(self, store_path, built):
        stored = open_oracle(store_path)
        assert stored.query(0, 7) == built.query(0, 7)
        assert stored.query(3, 3) == 0.0

    def test_query_matrix(self, store_path, built):
        stored = open_oracle(store_path)
        matrix = stored.query_matrix()
        assert matrix.shape == (stored.num_pois, stored.num_pois)
        assert (np.diag(matrix) == 0.0).all()

    def test_fingerprint_check(self, store_path, workload):
        stored = open_oracle(store_path, engine=workload)  # passes
        other_mesh = make_terrain(grid_exponent=3,
                                  extent=(100.0, 100.0),
                                  relief=15.0, seed=999)
        other = GeodesicEngine(other_mesh,
                               sample_uniform(other_mesh, 15, seed=1),
                               points_per_edge=1)
        with pytest.raises(ValueError):
            open_oracle(store_path, engine=other)
        with pytest.raises(ValueError):
            stored.check_fingerprint(other)

    def test_rejects_non_store_files(self, tmp_path, workload, built):
        json_path = tmp_path / "oracle.json"
        save_oracle(built, json_path, binary=False)
        with pytest.raises((ValueError, zipfile.BadZipFile)):
            open_oracle(json_path)

    def test_rejects_foreign_zip(self, tmp_path):
        path = tmp_path / "foreign.zip"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("readme.txt", "hello")
        with pytest.raises(ValueError):
            open_oracle(path)

    def test_meta_read_rejects_future_version(self, store_path,
                                              tmp_path):
        """read_store_meta fails fast on a version open_oracle cannot
        serve — a registration that succeeds must be servable."""
        future = tmp_path / "future.store"
        with zipfile.ZipFile(store_path) as source, \
                zipfile.ZipFile(future, "w",
                                zipfile.ZIP_STORED) as target:
            for info in source.infolist():
                payload = source.read(info.filename)
                if info.filename == "meta.json":
                    meta = json.loads(payload)
                    meta["version"] = 5
                    payload = json.dumps(meta).encode()
                target.writestr(info.filename, payload)
        with pytest.raises(ValueError, match="version"):
            read_store_meta(future)
        with pytest.raises(ValueError, match="version"):
            open_oracle(future)

    def test_load_seconds_recorded(self, store_path):
        stored = open_oracle(store_path)
        assert stored.load_seconds > 0.0


class TestRehydration:
    def test_to_oracle_full_api(self, store_path, built, workload):
        full = open_oracle(store_path).to_oracle(workload)
        assert full.is_built and full.is_compiled
        assert full.height == built.height
        assert full.num_pairs == built.num_pairs
        full.tree.check_structure(workload.num_pois)
        n = workload.num_pois
        for source in range(n):
            for target in range(n):
                assert full.query(source, target) \
                    == built.query(source, target)

    def test_to_oracle_covering_pair(self, store_path, built, workload):
        full = open_oracle(store_path).to_oracle(workload)
        assert full.covering_pair(0, 7) == built.covering_pair(0, 7)

    def test_pair_dict_materialises_lazily(self, store_path, built,
                                           workload):
        """Rehydration must not pay the O(#pairs) dict build; batched
        and scalar queries never touch it."""
        full = open_oracle(store_path).to_oracle(workload)
        assert full._pair_set._pairs is None
        full.query(0, 7)
        full.query_batch([0, 1], [2, 3])
        assert full._pair_set._pairs is None
        assert len(full.pair_set) == built.num_pairs  # len stays lazy
        assert full._pair_set._pairs is None
        assert full.pair_set.pairs == built.pair_set.pairs  # now built
        assert full._pair_set._pairs is not None

    def test_load_oracle_sniffs_binary(self, store_path, workload,
                                       built):
        loaded = load_oracle(store_path, workload)
        assert loaded.query(1, 9) == built.query(1, 9)
        assert loaded.stats.pairs_stored == built.num_pairs

    def test_stats_and_build_metadata_survive(self, store_path,
                                              workload, built):
        full = open_oracle(store_path).to_oracle(workload)
        assert full.stats.height == built.stats.height
        assert full.stats.executor == built.stats.executor
        assert full.stats.jobs == built.stats.jobs


class TestDocumentConversion:
    def test_json_to_binary_lossless(self, built, workload, tmp_path):
        json_path = tmp_path / "oracle.json"
        save_oracle(built, json_path, binary=False)
        document = json.loads(json_path.read_text())
        store = tmp_path / "oracle.store"
        pack_document(document, store)
        stored = open_oracle(store, engine=workload)
        n = workload.num_pois
        grid = np.arange(n, dtype=np.intp)
        batched = stored.query_batch(np.repeat(grid, n), np.tile(grid, n))
        expected = built.query_batch(np.repeat(grid, n), np.tile(grid, n))
        assert (batched == expected).all()

    def test_v1_document_upgrades(self, built, workload, tmp_path):
        json_path = tmp_path / "oracle.json"
        save_oracle(built, json_path, binary=False)
        document = json.loads(json_path.read_text())
        document["version"] = 1
        document.pop("build", None)
        document.pop("compiled", None)
        store = tmp_path / "v1.store"
        pack_document(document, store)
        stored = open_oracle(store)
        assert stored.query(0, 5) == built.query(0, 5)
        assert stored.build == {"executor": "serial", "jobs": 1}

    def test_bad_document_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            pack_document({"format": "nope"}, tmp_path / "x.store")
        with pytest.raises(ValueError):
            pack_document({"format": "repro-se-oracle", "version": 99},
                          tmp_path / "y.store")


class TestFrozenHashPersistence:
    """The persisted frozen tables answer like the original map —
    batch immediately, scalar after the lazy FKS rebuild."""

    def test_batch_lookup_identical(self, store_path, built):
        stored = open_oracle(store_path)
        original = built.pair_hash
        keys = np.array(list(original), dtype=np.uint64)
        restored = stored.compiled.pair_hash
        assert (restored.get_batch(keys)
                == original.get_batch(keys)).all()
        missing = np.array([1, (1 << 40) + 7], dtype=np.uint64)
        assert np.isnan(restored.get_batch(missing)).all()

    def test_scalar_lookup_lazy_rebuild(self, store_path, built):
        stored = open_oracle(store_path)
        restored = stored.compiled.pair_hash
        assert not restored._scalar_ready
        for key, value in built.pair_hash.items():
            assert restored[key] == value
        assert restored._scalar_ready
        assert 1 not in restored
        assert len(restored) == len(built.pair_hash)
