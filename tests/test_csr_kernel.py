"""CSR graph core + array Dijkstra kernel: equivalence with the seed kernel.

The array kernel (both its SciPy fast path and its pure-Python
generation-stamped path) must reproduce the seed dict kernel
*bit-for-bit*: identical distance maps, identical ``settled_count``,
identical ``frontier_min`` — across all three stopping rules, on
randomized terrains, with and without an attached-site overlay.
"""

import math
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import importlib

# The package re-exports the ``dijkstra`` *function* under the same
# name as the submodule, so fetch the module itself for monkeypatching.
dijkstra_module = importlib.import_module("repro.geodesic.dijkstra")
from repro.datastructures import CSRGraph
from repro.geodesic import (
    GeodesicEngine,
    GeodesicGraph,
    bidirectional_distance,
    dijkstra,
    dijkstra_reference,
)
from repro.terrain import make_terrain, sample_uniform


def _random_graph(seed, points_per_edge=1, grid_exponent=3):
    mesh = make_terrain(grid_exponent=grid_exponent, extent=(60.0, 60.0),
                        relief=15.0, seed=seed)
    return GeodesicGraph(mesh, points_per_edge=points_per_edge)


def _assert_same(array_result, reference_result):
    assert array_result.distances == reference_result.distances
    assert array_result.settled_count == reference_result.settled_count
    assert array_result.frontier_min == reference_result.frontier_min


def _check_all_rules(graph, seed):
    """One randomized scenario: every stopping rule, exact equality."""
    adjacency = graph.adjacency
    csr = graph.csr
    n = graph.num_nodes
    source = seed % n

    # No stopping rule: whole component.
    full_ref = dijkstra_reference(adjacency, source)
    _assert_same(dijkstra(csr, source), full_ref)

    ordered = sorted(full_ref.distances.values())

    # Radius rule, including a radius that exactly equals a settled
    # distance (boundary inclusion) and a radius beyond the component.
    for radius in (ordered[len(ordered) // 4], ordered[len(ordered) // 2],
                   ordered[-1] * 2.0):
        _assert_same(
            dijkstra(csr, source, radius=radius),
            dijkstra_reference(adjacency, source, radius=radius))

    # Cover-targets rule.
    targets = [(seed * 7 + k * 13) % n for k in range(5)]
    _assert_same(
        dijkstra(csr, source, targets=targets),
        dijkstra_reference(adjacency, source, targets=targets))

    # Single-target rule.
    target = (seed * 31 + 11) % n
    _assert_same(
        dijkstra(csr, source, single_target=target),
        dijkstra_reference(adjacency, source, single_target=target))


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 1000))
def test_kernel_matches_reference(seed):
    graph = _random_graph(seed % 17, points_per_edge=1 + seed % 2)
    _check_all_rules(graph, seed)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 1000))
def test_python_kernel_matches_reference(seed):
    """Same property with the SciPy fast path disabled."""
    graph = _random_graph(seed % 13)
    with mock.patch.object(dijkstra_module, "_scipy_dijkstra", None):
        _check_all_rules(graph, seed)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 1000))
def test_kernel_matches_reference_with_overlay(seed):
    """Attached sites route searches through the overlay side table."""
    graph = _random_graph(seed % 11)
    rng_x = 5.0 + (seed % 7) * 7.0
    graph.attach_site((rng_x, 20.0, 0.0),
                      face_id=seed % graph.mesh.num_faces)
    graph.attach_site((30.0, rng_x, 0.0),
                      face_id=(seed * 3) % graph.mesh.num_faces)
    assert graph.csr.num_overlay == 2
    _check_all_rules(graph, seed)
    # Overlay node as the source.
    source = graph.num_nodes - 1
    _assert_same(dijkstra(graph.csr, source),
                 dijkstra_reference(graph.adjacency, source))


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 1000))
def test_bidirectional_matches_unidirectional(seed):
    graph = _random_graph(seed % 17)
    n = graph.num_nodes
    source = seed % n
    full = dijkstra(graph.csr, source)
    for k in range(4):
        target = (seed * 5 + 29 * k) % n
        expected = full.distances.get(target, math.inf)
        assert bidirectional_distance(graph.csr, source, target) \
            == pytest.approx(expected)


def test_multi_source_is_min_over_sources():
    graph = _random_graph(3)
    sources = [0, graph.num_nodes // 2, graph.num_nodes - 1]
    merged = dijkstra(graph.csr, sources)
    singles = [dijkstra(graph.csr, s).distances for s in sources]
    for node, dist in merged.distances.items():
        assert dist == min(s.get(node, math.inf) for s in singles)
    # Pure-Python multi-source agrees with the SciPy min_only path.
    with mock.patch.object(dijkstra_module, "_scipy_dijkstra", None):
        py = dijkstra(graph.csr, sources)
    assert py.distances == merged.distances


def test_radius_pruning_reports_fewer_pushes():
    """The pruned lazy-deletion heap must not grow past the reference."""
    graph = _random_graph(5, grid_exponent=4)
    full = dijkstra_reference(graph.adjacency, 0)
    radius = sorted(full.distances.values())[len(full.distances) // 4]
    with mock.patch.object(dijkstra_module, "_scipy_dijkstra", None):
        pruned = dijkstra(graph.csr, 0, radius=radius)
    reference = dijkstra_reference(graph.adjacency, 0, radius=radius)
    assert pruned.heap_pushes > 0
    assert pruned.heap_pushes <= reference.heap_pushes
    assert pruned.distances == reference.distances
    assert pruned.frontier_min == reference.frontier_min


def test_scratch_reuse_is_isolated_across_calls():
    """Generation stamping: stale buffer contents must never leak."""
    graph = _random_graph(7)
    csr = graph.csr
    first = dijkstra(csr, 0, radius=10.0)
    second = dijkstra(csr, graph.num_nodes - 1, radius=1e-6)
    third = dijkstra(csr, 0, radius=10.0)
    assert first.distances == third.distances
    assert second.settled_count == 1  # only its own source


class TestCSRGraph:
    def test_from_lists_round_trip(self):
        neighbors = [[1, 2], [0], [0, 3], [2]]
        weights = [[1.0, 2.5], [1.0], [2.5, 0.5], [0.5]]
        csr = CSRGraph.from_lists(neighbors, weights)
        assert csr.num_static == 4
        assert csr.num_nodes == 4
        assert csr.num_entries == 6
        for node in range(4):
            got_n, got_w = csr.neighbors(node)
            assert got_n == neighbors[node]
            assert got_w == weights[node]

    def test_overlay_attach_detach(self):
        csr = CSRGraph.from_lists([[1], [0]], [[1.0], [1.0]])
        node = csr.attach_node([0, 1], [2.0, 3.0])
        assert node == 2
        assert csr.num_overlay == 1
        assert csr.neighbors(2) == ([0, 1], [2.0, 3.0])
        assert csr.neighbors(0) == ([1, 2], [1.0, 2.0])
        second = csr.attach_node([2], [0.25])
        assert csr.neighbors(2) == ([0, 1, 3], [2.0, 3.0, 0.25])
        csr.detach_last()
        csr.detach_last()
        assert csr.num_overlay == 0
        assert csr.neighbors(0) == ([1], [1.0])
        with pytest.raises(ValueError):
            csr.detach_last()
        assert second == 3

    def test_zero_weight_edges_exact_on_both_paths(self):
        # Explicit zeros must survive scipy.sparse storage; if a future
        # SciPy drops them, this equivalence check fails loudly.
        neighbors = [[1], [0, 2], [1]]
        weights = [[0.0], [0.0, 2.0], [2.0]]
        csr = CSRGraph.from_lists(neighbors, weights)
        expected = dijkstra_reference((neighbors, weights), 0).distances
        assert expected == {0: 0.0, 1: 0.0, 2: 2.0}
        assert dijkstra(csr, 0).distances == expected
        with mock.patch.object(dijkstra_module, "_scipy_dijkstra", None):
            assert dijkstra(csr, 0).distances == expected

    def test_geodesic_graph_freezes_pois(self):
        mesh = make_terrain(grid_exponent=3, seed=2)
        pois = sample_uniform(mesh, 8, seed=2)
        engine = GeodesicEngine(mesh, pois, points_per_edge=1)
        # attach_pois freezes: no overlay left, searches take the
        # static fast path.
        assert engine.graph.csr.num_overlay == 0
        assert engine.graph.csr.num_static == engine.graph.num_nodes

    def test_detach_after_freeze_refreezes(self):
        mesh = make_terrain(grid_exponent=3, seed=2)
        pois = sample_uniform(mesh, 4, seed=2)
        engine = GeodesicEngine(mesh, pois, points_per_edge=0)
        graph = engine.graph
        nodes_before = graph.num_nodes
        node = engine.attach_point(20.0, 20.0)
        assert graph.csr.num_overlay == 1
        d_attached = engine.node_distance(node, engine.poi_node(0))
        assert d_attached > 0
        engine.detach_points(1)
        assert graph.num_nodes == nodes_before
        assert graph.csr.num_overlay == 0
        # Graph still searchable and consistent after the detach.
        full = dijkstra(graph.csr, 0)
        ref = dijkstra_reference(graph.adjacency, 0)
        assert full.distances == ref.distances


class TestEngineBatchedAPIs:
    @pytest.fixture(scope="class")
    def engine(self):
        mesh = make_terrain(grid_exponent=4, extent=(80.0, 80.0),
                            relief=12.0, seed=9)
        pois = sample_uniform(mesh, 14, seed=9)
        return GeodesicEngine(mesh, pois, points_per_edge=1)

    def test_query_many_matches_distance(self, engine):
        pairs = [(0, 5), (0, 9), (3, 3), (7, 2), (0, 5)]
        batched = engine.query_many(pairs)
        for (a, b), got in zip(pairs, batched):
            assert got == pytest.approx(engine.distance(a, b))

    def test_distances_many_matches_single(self, engine):
        singles = [engine.distances_from_poi(i) for i in range(4)]
        batched = engine.distances_many(range(4))
        assert batched == singles

    def test_distances_many_per_source_radius(self, engine):
        full = engine.distances_from_poi(0)
        radius = sorted(full.values())[5]
        batched = engine.distances_many([0, 1], radius=[radius, None])
        assert batched[0] == engine.distances_from_poi(0, radius=radius)
        assert batched[1] == engine.distances_from_poi(1)

    def test_multi_source_distances(self, engine):
        nodes = [engine.poi_node(0), engine.poi_node(5)]
        merged = engine.multi_source_distances(nodes)
        singles = [engine.distances_from_node(n).distances for n in nodes]
        for node, dist in merged.distances.items():
            assert dist == min(s.get(node, math.inf) for s in singles)

    def test_counters_include_heap_pushes(self, engine):
        engine.reset_counters()
        engine.distance(0, 1)  # single-target: python kernel, pushes > 0
        assert engine.heap_pushes > 0
        assert engine.ssad_calls == 1

    def test_query_many_dedupes_symmetric_pairs(self, engine):
        engine.reset_counters()
        batched = engine.query_many([(0, 5), (5, 0), (3, 7)])
        assert engine.ssad_calls == 2  # (0,5)/(5,0) share one search
        assert batched[0] == batched[1]


class TestOracleBatchedAPIs:
    """The oracle-level query_many wrappers match their single-query
    counterparts."""

    def test_kalgo_query_many(self):
        from repro.baselines import KAlgo
        mesh = make_terrain(grid_exponent=3, extent=(80.0, 80.0), seed=6)
        pois = sample_uniform(mesh, 8, seed=6)
        kalgo = KAlgo(mesh, pois, epsilon=0.25, points_per_edge=1)
        pairs = [(0, 3), (3, 0), (5, 5), (2, 7)]
        assert kalgo.query_many(pairs) == \
            [kalgo.query(a, b) for a, b in pairs]

    def test_a2a_query_many(self):
        from repro.core import A2AOracle
        mesh = make_terrain(grid_exponent=3, extent=(80.0, 80.0), seed=6)
        oracle = A2AOracle(mesh, epsilon=0.25, sites_per_edge=1,
                           points_per_edge=1, seed=1).build()
        pairs = [((10.0, 12.0), (60.0, 55.0)),
                 ((20.0, 30.0), (10.0, 12.0)),
                 ((10.0, 12.0), (60.0, 55.0))]
        assert oracle.query_many(pairs) == \
            [oracle.query(*pair) for pair in pairs]

    def test_dynamic_query_batch(self):
        from repro.core import DynamicSEOracle
        mesh = make_terrain(grid_exponent=3, extent=(80.0, 80.0), seed=6)
        pois = sample_uniform(mesh, 10, seed=6)
        oracle = DynamicSEOracle(mesh, pois, epsilon=0.25,
                                 rebuild_factor=5.0, seed=1).build()
        fresh = oracle.insert(40.0, 40.0)
        assert oracle.overlay_size == 1  # still an overlay POI
        pairs = [(0, 3), (fresh, 2), (2, fresh), (fresh, fresh), (4, 1)]
        batched = oracle.query_batch([a for a, _ in pairs],
                                     [b for _, b in pairs])
        assert list(batched) == [oracle.query(a, b) for a, b in pairs]
        with pytest.raises(KeyError):
            oracle.query_batch([0], [999])
