"""Unit tests for the NDJSON serving protocol (framing, validation,
error taxonomy) — no sockets involved."""

import json
import zipfile

import pytest

from repro.serving import protocol
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    classify_exception,
    decode_line,
    describe_error,
    encode,
    error_response,
    ok_response,
    request,
    validate_request,
)


class TestFraming:
    def test_encode_is_one_compact_json_line(self):
        line = encode({"op": "hello", "v": 1})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert b" " not in line  # compact separators
        assert json.loads(line) == {"op": "hello", "v": 1}

    def test_roundtrip(self):
        message = request("query", request_id=7, terrain="alps",
                          source=1, target=2)
        assert decode_line(encode(message)) == message

    def test_decode_tolerates_trailing_cr(self):
        assert decode_line(b'{"op":"hello"}\r\n') == {"op": "hello"}

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError) as info:
            decode_line(b"not json at all\n")
        assert info.value.error_type == "bad-request"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as info:
            decode_line(b"[1, 2, 3]\n")
        assert info.value.error_type == "bad-request"
        assert "object" in info.value.message

    def test_request_carries_version(self):
        assert request("hello")["v"] == PROTOCOL_VERSION

    def test_error_response_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            error_response(None, "no-such-type", "boom")

    def test_ok_response_shape(self):
        reply = ok_response(3, {"distance": 1.5})
        assert reply == {"ok": True, "id": 3,
                         "result": {"distance": 1.5}}


class TestValidation:
    def test_version_mismatch(self):
        with pytest.raises(ProtocolError) as info:
            validate_request({"op": "hello", "v": 99})
        assert info.value.error_type == "unsupported-version"

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as info:
            validate_request({"v": PROTOCOL_VERSION})
        assert info.value.error_type == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as info:
            validate_request({"op": "frobnicate"})
        assert info.value.error_type == "unknown-op"
        assert "query" in info.value.message  # lists the known verbs

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError) as info:
            validate_request({"op": "query", "terrain": "alps",
                              "source": 0})
        assert info.value.error_type == "bad-request"
        assert "target" in info.value.message

    def test_bool_is_not_an_id(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "query", "terrain": "alps",
                              "source": True, "target": 1})

    def test_negative_id_rejected(self):
        # Negative ints would silently alias from the end of the
        # compiled table; the protocol rejects them up front.
        with pytest.raises(ProtocolError) as info:
            validate_request({"op": "query", "terrain": "alps",
                              "source": -1, "target": 1})
        assert info.value.error_type == "bad-request"

    def test_id_list_validated_per_item(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "batch", "terrain": "alps",
                              "sources": [0, -2], "targets": [1, 2]})
        with pytest.raises(ProtocolError):
            validate_request({"op": "batch", "terrain": "alps",
                              "sources": [0, 1.5], "targets": [1, 2]})

    def test_batch_alignment(self):
        with pytest.raises(ProtocolError) as info:
            validate_request({"op": "batch", "terrain": "alps",
                              "sources": [0, 1], "targets": [2]})
        assert "aligned" in info.value.message

    def test_float_field_accepts_int(self):
        normalised = validate_request({"op": "range", "terrain": "a",
                                       "source": 0, "radius": 5})
        assert normalised["radius"] == 5.0
        assert isinstance(normalised["radius"], float)

    def test_string_field_type(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "describe", "terrain": 7})

    def test_id_echoed_through(self):
        normalised = validate_request({"op": "terrains", "id": "tag-1"})
        assert normalised["id"] == "tag-1"

    def test_every_op_has_a_spec(self):
        for op in protocol.OPS:
            assert op in ("hello", "terrains", "stats", "describe",
                          "query", "batch", "knn", "range", "rnn",
                          "insert", "delete", "flush")


class TestClassification:
    def test_unknown_terrain(self):
        error = KeyError("unknown terrain id 'alps'; registered: none")
        assert classify_exception(error)[0] == "unknown-terrain"

    def test_unknown_poi_keyerror(self):
        error_type, message = classify_exception(KeyError("poi id 999"))
        assert error_type == "unknown-poi"
        assert "999" in message and "'" not in message[:1]

    def test_unknown_poi_indexerror(self):
        assert classify_exception(IndexError("out of range"))[0] \
            == "unknown-poi"

    def test_not_mutable(self):
        error = ValueError("terrain 'alps' is not mutable")
        assert classify_exception(error)[0] == "not-mutable"

    def test_bad_value(self):
        assert classify_exception(ValueError("k must be positive"))[0] \
            == "bad-value"

    def test_store_errors_are_internal(self):
        error_type, message = classify_exception(
            OSError(2, "No such file or directory"))
        assert error_type == "internal"
        assert message.startswith("store error:")
        assert classify_exception(zipfile.BadZipFile("truncated"))[0] \
            == "internal"

    def test_protocol_error_passthrough(self):
        error = ProtocolError("not-writer", "ask worker 0")
        assert classify_exception(error) == ("not-writer", "ask worker 0")

    def test_unexpected_is_internal_with_type_name(self):
        error_type, message = classify_exception(RuntimeError("boom"))
        assert error_type == "internal"
        assert "RuntimeError" in message

    def test_describe_error_format(self):
        line = describe_error(ValueError("k must be positive"))
        assert line == "error[bad-value]: k must be positive"
