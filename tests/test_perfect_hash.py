"""Tests for the FKS perfect hashing scheme and pair packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import PerfectHashMap, pack_pair, unpack_pair


class TestPairPacking:
    def test_roundtrip(self):
        assert unpack_pair(pack_pair(3, 9)) == (3, 9)

    def test_order_matters(self):
        assert pack_pair(1, 2) != pack_pair(2, 1)

    def test_zero_pair(self):
        assert unpack_pair(pack_pair(0, 0)) == (0, 0)

    def test_large_ids(self):
        big = (1 << 32) - 1
        assert unpack_pair(pack_pair(big, big)) == (big, big)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_pair(-1, 0)
        with pytest.raises(ValueError):
            pack_pair(1 << 32, 0)

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1))
    def test_roundtrip_property(self, u, v):
        assert unpack_pair(pack_pair(u, v)) == (u, v)

    @given(st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)),
           st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)))
    def test_packing_is_injective(self, p, q):
        if p != q:
            assert pack_pair(*p) != pack_pair(*q)


class TestPerfectHashMap:
    def test_empty_map(self):
        table = PerfectHashMap([])
        assert len(table) == 0
        assert 0 not in table
        assert table.get(5) is None

    def test_single_entry(self):
        table = PerfectHashMap([(42, "answer")])
        assert table[42] == "answer"
        assert 42 in table
        assert 41 not in table

    def test_missing_key_raises(self):
        table = PerfectHashMap([(1, "a")])
        with pytest.raises(KeyError):
            table[2]

    def test_get_with_default(self):
        table = PerfectHashMap([(1, "a")])
        assert table.get(2, "dflt") == "dflt"
        assert table.get(1) == "a"

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            PerfectHashMap([(1, "a"), (1, "b")])

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            PerfectHashMap([(-3, "a")])

    def test_negative_lookup_is_miss(self):
        table = PerfectHashMap([(1, "a")])
        assert -1 not in table

    def test_all_entries_retrievable(self):
        entries = [(i * 7 + 1, i) for i in range(500)]
        table = PerfectHashMap(entries, seed=3)
        for key, value in entries:
            assert table[key] == value

    def test_non_keys_are_misses(self):
        keys = set(range(0, 1000, 3))
        table = PerfectHashMap([(k, k) for k in keys])
        for probe in range(1000):
            assert (probe in table) == (probe in keys)

    def test_iteration_and_items(self):
        entries = [(5, "a"), (9, "b"), (2, "c")]
        table = PerfectHashMap(entries)
        assert set(table) == {5, 9, 2}
        assert dict(table.items()) == dict(entries)

    def test_space_is_linear(self):
        n = 2000
        table = PerfectHashMap([(i * 13 + 5, None) for i in range(n)])
        # FKS guarantee: expected sum of squared bucket sizes < 4n.
        assert table.slot_count() <= 4 * n
        assert table.size_bytes() > 0

    def test_deterministic_given_seed(self):
        entries = [(i, i) for i in range(100)]
        t1 = PerfectHashMap(entries, seed=11)
        t2 = PerfectHashMap(entries, seed=11)
        assert t1._a == t2._a and t1._b == t2._b

    def test_packed_pair_keys(self):
        pairs = [(i, j) for i in range(20) for j in range(20)]
        table = PerfectHashMap(
            [(pack_pair(u, v), (u, v)) for u, v in pairs], seed=1
        )
        for u, v in pairs:
            assert table[pack_pair(u, v)] == (u, v)
        assert pack_pair(25, 25) not in table


class TestBatchLookup:
    """get_batch agrees with get, key for key, on float-valued maps."""

    def test_present_keys(self):
        entries = [(i * 13 + 5, float(i) * 1.7) for i in range(800)]
        table = PerfectHashMap(entries, seed=9)
        keys = np.array([key for key, _ in entries], dtype=np.uint64)
        values = table.get_batch(keys)
        assert values.dtype == np.float64
        assert all(values[i] == table.get(int(keys[i]))
                   for i in range(keys.size))

    def test_absent_keys_hit_default(self):
        table = PerfectHashMap([(3, 1.5), (9, 2.5)], seed=1)
        probes = np.array([3, 4, 9, 10, 2**63], dtype=np.uint64)
        values = table.get_batch(probes, default=-1.0)
        assert values.tolist() == [1.5, -1.0, 2.5, -1.0, -1.0]
        assert np.isnan(table.get_batch(np.array([4],
                                                 dtype=np.uint64)))[0]

    def test_shape_preserved(self):
        table = PerfectHashMap([(i, float(i)) for i in range(12)])
        probes = np.arange(12, dtype=np.uint64).reshape(3, 4)
        assert table.get_batch(probes).shape == (3, 4)
        assert (table.get_batch(probes)
                == probes.astype(np.float64)).all()

    def test_empty_map(self):
        table = PerfectHashMap([])
        values = table.get_batch(np.array([1, 2], dtype=np.uint64))
        assert np.isnan(values).all()

    def test_packed_pair_keys_including_sentinels(self):
        """The compiled oracle's -1-padded keys must probe as misses."""
        pairs = [(u, v) for u in range(15) for v in range(15)]
        table = PerfectHashMap(
            [(pack_pair(u, v), float(u * 100 + v)) for u, v in pairs],
            seed=4)
        mask = np.uint64(0xFFFFFFFF)
        padded = (mask << np.uint64(32)) | np.uint64(3)  # source id -1
        probes = np.array([pack_pair(2, 7), padded, pack_pair(14, 0)],
                          dtype=np.uint64)
        values = table.get_batch(probes)
        assert values[0] == 207.0
        assert np.isnan(values[1])
        assert values[2] == 1400.0

    def test_non_float_values_rejected(self):
        table = PerfectHashMap([(1, "a"), (2, "b")])
        with pytest.raises(TypeError):
            table.get_batch(np.array([1], dtype=np.uint64))

    def test_deterministic_frozen_tables(self):
        entries = [(i * 7, float(i)) for i in range(200)]
        one = PerfectHashMap(entries, seed=5)
        two = PerfectHashMap(entries, seed=5)
        assert one._freeze().level1_a == two._freeze().level1_a
        assert (one._freeze().slots == two._freeze().slots).all()

    # Stored keys stay below the scalar hash's Mersenne prime 2^61-1
    # (its universal family needs key < p; key == p aliases key 0).
    # Probes may be any uint64 — the frozen tables accept the full
    # domain, and out-of-domain probes must come back as misses.
    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(st.integers(0, 2**61 - 2), st.floats(
        allow_nan=False, allow_infinity=True), min_size=1, max_size=120),
        st.integers(0, 2**16))
    def test_matches_scalar_get_property(self, entries, seed):
        table = PerfectHashMap(list(entries.items()), seed=seed)
        present = np.array(list(entries), dtype=np.uint64)
        rng = np.random.default_rng(seed)
        absent = rng.integers(0, 2**63, size=50, dtype=np.uint64)
        probes = np.concatenate([present, absent])
        values = table.get_batch(probes, default=np.inf)
        for index, probe in enumerate(probes.tolist()):
            expected = table.get(probe, np.inf)
            got = values[index]
            assert got == expected or (np.isnan(got)
                                       and np.isnan(expected))


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(st.integers(0, 2**40), st.integers(), max_size=150),
       st.integers(0, 2**16))
def test_behaves_like_dict(entries, seed):
    table = PerfectHashMap(list(entries.items()), seed=seed)
    assert len(table) == len(entries)
    for key, value in entries.items():
        assert table[key] == value
    for probe in list(entries)[:10]:
        assert table.get(probe + 1, "miss") == entries.get(probe + 1, "miss")
