"""Every query-answering family satisfies the DistanceIndex protocol.

The PR-5 refactor puts SEOracle, CompiledOracle, StoredOracle,
DynamicSEOracle, FullAPSPBaseline, KAlgo and the P2P-bound A2A / SP
oracles behind one structural protocol (``core/index.py``): scalar
``query``, batched ``query_batch``, all-pairs ``query_matrix``,
``num_pois`` and the ``supports_updates`` / ``is_compiled`` capability
flags.  This suite pins (1) conformance, (2) the flags, and (3) the
scalar/batch/matrix internal consistency of every family — so a new
consumer can program against the protocol without per-family dispatch.
"""

import numpy as np
import pytest

from repro.baselines import FullAPSPBaseline, KAlgo, SPOracle
from repro.core import (
    A2AOracle,
    DistanceIndex,
    DynamicSEOracle,
    P2PIndexAdapter,
    SEOracle,
    ensure_index,
    pack_oracle,
    pair_arrays,
)
from repro.core.store import open_oracle
from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, sample_uniform


@pytest.fixture(scope="module")
def workload():
    mesh = make_terrain(
        grid_exponent=3, extent=(90.0, 90.0), relief=12.0, seed=71
    )
    pois = sample_uniform(mesh, 10, seed=72)
    return mesh, pois, GeodesicEngine(mesh, pois, points_per_edge=1)


@pytest.fixture(scope="module")
def se_oracle(workload):
    _, _, engine = workload
    return SEOracle(engine, epsilon=0.25, seed=3).build()


@pytest.fixture(scope="module")
def stored(se_oracle, tmp_path_factory):
    path = tmp_path_factory.mktemp("protocol") / "oracle.store"
    pack_oracle(se_oracle, path)
    return open_oracle(path)


@pytest.fixture(scope="module")
def families(workload, se_oracle, stored):
    """name -> (index, expected supports_updates, expected is_compiled).

    ``is_compiled`` is asserted post-batch for the lazily compiling
    families, so the expectation here is the steady-state flag.
    """
    mesh, pois, engine = workload
    dynamic = DynamicSEOracle(
        mesh, pois, epsilon=0.25, rebuild_factor=5.0, seed=3
    ).build()
    dynamic.insert(30.0, 30.0)
    apsp = FullAPSPBaseline(engine).build()
    kalgo = KAlgo(mesh, pois, epsilon=0.5, points_per_edge=1).build()
    sp = SPOracle(mesh, epsilon=0.5, points_per_edge=1).build()
    a2a = A2AOracle(
        mesh, epsilon=0.5, sites_per_edge=0, points_per_edge=1, seed=3
    ).build()
    return {
        "se": (se_oracle, False, True),
        "compiled": (se_oracle.compiled(), False, True),
        "stored": (stored, False, True),
        "dynamic": (dynamic, True, True),
        "full_apsp": (apsp, False, True),
        "kalgo": (kalgo, False, False),
        "sp_p2p": (sp.p2p_index(pois), False, False),
        "a2a_p2p": (a2a.p2p_index(pois), False, False),
    }


FAMILY_NAMES = (
    "se",
    "compiled",
    "stored",
    "dynamic",
    "full_apsp",
    "kalgo",
    "sp_p2p",
    "a2a_p2p",
)


class TestConformance:
    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_satisfies_protocol(self, families, name):
        index, _, _ = families[name]
        assert isinstance(index, DistanceIndex)
        assert ensure_index(index) is index

    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_capability_flags(self, families, name):
        index, updates, compiled = families[name]
        assert index.supports_updates is updates
        # Touch the batch path first: lazily compiling families report
        # is_compiled only once their tables exist.
        # A base-base pair, so lazily compiling families (SE, the
        # dynamic overlay) actually materialise their tables.
        ids = self._ids(index)
        index.query_batch(ids[:1], ids[1:2])
        assert index.is_compiled is compiled

    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_batch_matches_scalar(self, families, name):
        index, _, _ = families[name]
        ids = self._ids(index)
        sources, targets = pair_arrays(
            [(int(a), int(b)) for a in ids[:4] for b in ids]
        )
        batched = index.query_batch(sources, targets)
        assert batched.dtype == np.float64
        for position in range(sources.size):
            assert batched[position] == index.query(
                int(sources[position]), int(targets[position])
            )

    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_matrix_matches_batch(self, families, name):
        index, _, _ = families[name]
        ids = self._ids(index)[:5]
        matrix = index.query_matrix(ids)
        assert matrix.shape == (ids.size, ids.size)
        batched = index.query_batch(
            np.repeat(ids, ids.size), np.tile(ids, ids.size)
        )
        assert (matrix.reshape(-1) == batched).all()

    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_num_pois_positive(self, families, name):
        index, _, _ = families[name]
        assert index.num_pois > 0

    @staticmethod
    def _ids(index) -> np.ndarray:
        if index.supports_updates:
            return index.live_ids()
        return np.arange(index.num_pois, dtype=np.intp)


class TestEnsureIndex:
    def test_rejects_plain_objects(self):
        class ScalarOnly:
            def query(self, source, target):
                return 0.0

        with pytest.raises(TypeError, match="does not satisfy"):
            ensure_index(ScalarOnly())

    def test_adapter_requires_query_p2p(self):
        with pytest.raises(TypeError, match="query_p2p"):
            P2PIndexAdapter(object(), [])

    def test_adapter_rejects_misaligned_batches(self, families):
        index, _, _ = families["sp_p2p"]
        with pytest.raises(ValueError):
            index.query_batch([0, 1], [0])


class TestCrossFamilyAgreement:
    """Families sharing tables answer identically through the protocol."""

    def test_se_compiled_stored_identical(self, families):
        se, _, _ = families["se"]
        compiled, _, _ = families["compiled"]
        stored, _, _ = families["stored"]
        n = se.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        reference = se.query_batch(sources, targets)
        assert (compiled.query_batch(sources, targets) == reference).all()
        assert (stored.query_batch(sources, targets) == reference).all()

    def test_dynamic_base_rows_match_se(self, families):
        """Base-base pairs of the dynamic overlay are served by the
        same compiled tables as the static oracle."""
        se, _, _ = families["se"]
        dynamic, _, _ = families["dynamic"]
        n = se.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        assert (
            dynamic.query_batch(sources, targets)
            == se.query_batch(sources, targets)
        ).all()
