"""Tests for proximity queries (kNN, range, reverse NN)."""

import pytest

from repro.baselines import FullAPSPBaseline
from repro.core import SEOracle
from repro.geodesic import GeodesicEngine
from repro.queries import (
    k_nearest_neighbors,
    nearest_neighbor,
    range_query,
    reverse_nearest_neighbors,
)
from repro.terrain import make_terrain, sample_uniform


@pytest.fixture(scope="module")
def setup():
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=61)
    pois = sample_uniform(mesh, 14, seed=62)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    exact = FullAPSPBaseline(engine).build()
    oracle = SEOracle(engine, epsilon=0.1, seed=3).build()
    return len(pois), exact, oracle


class TestKNN:
    def test_k_zero(self, setup):
        n, exact, _ = setup
        assert k_nearest_neighbors(exact, 0, 0, n) == []

    def test_negative_k_rejected(self, setup):
        n, exact, _ = setup
        with pytest.raises(ValueError):
            k_nearest_neighbors(exact, 0, -1, n)

    def test_knn_sorted_and_excludes_self(self, setup):
        n, exact, _ = setup
        result = k_nearest_neighbors(exact, 3, 5, n)
        assert len(result) == 5
        assert all(poi != 3 for poi, _ in result)
        distances = [d for _, d in result]
        assert distances == sorted(distances)

    def test_knn_matches_brute_force(self, setup):
        n, exact, _ = setup
        result = k_nearest_neighbors(exact, 0, 4, n)
        brute = sorted(((exact.query(0, j), j) for j in range(1, n)))
        assert [poi for poi, _ in result] == [j for _, j in brute[:4]]

    def test_k_larger_than_n(self, setup):
        n, exact, _ = setup
        result = k_nearest_neighbors(exact, 0, 100, n)
        assert len(result) == n - 1

    def test_oracle_knn_close_to_exact(self, setup):
        """kNN through SE: distance values are within eps of truth."""
        n, exact, oracle = setup
        approx_nn = k_nearest_neighbors(oracle, 5, 3, n)
        for poi, approx_dist in approx_nn:
            true = exact.query(5, poi)
            assert approx_dist == pytest.approx(true, rel=0.1 + 1e-9)

    def test_nearest_neighbor(self, setup):
        n, exact, _ = setup
        poi, distance = nearest_neighbor(exact, 2, n)
        assert distance == min(exact.query(2, j)
                               for j in range(n) if j != 2)


class TestRange:
    def test_zero_radius(self, setup):
        n, exact, _ = setup
        assert range_query(exact, 0, 0.0, n) == []

    def test_negative_radius_rejected(self, setup):
        n, exact, _ = setup
        with pytest.raises(ValueError):
            range_query(exact, 0, -1.0, n)

    def test_huge_radius_returns_all(self, setup):
        n, exact, _ = setup
        result = range_query(exact, 0, 1e12, n)
        assert len(result) == n - 1

    def test_matches_filter(self, setup):
        n, exact, _ = setup
        radius = exact.query(0, 5)
        result = range_query(exact, 0, radius, n)
        expected = {j for j in range(n)
                    if j != 0 and exact.query(0, j) <= radius}
        assert {poi for poi, _ in result} == expected

    def test_results_sorted(self, setup):
        n, exact, _ = setup
        result = range_query(exact, 3, 1e12, n)
        distances = [d for _, d in result]
        assert distances == sorted(distances)


class TestReverseNN:
    def test_rnn_definition(self, setup):
        n, exact, _ = setup
        rnn = reverse_nearest_neighbors(exact, 4, n)
        for candidate in rnn:
            nn, _ = nearest_neighbor(exact, candidate, n)
            assert nn == 4
        # Non-members must have a different nearest neighbour.
        for candidate in range(n):
            if candidate == 4 or candidate in rnn:
                continue
            nn, _ = nearest_neighbor(exact, candidate, n)
            assert nn != 4

    def test_rnn_can_be_empty(self, setup):
        n, exact, _ = setup
        sizes = [len(reverse_nearest_neighbors(exact, s, n))
                 for s in range(n)]
        # Every POI has exactly one NN, so RNN sets partition the POIs.
        assert sum(sizes) == n

    def test_rnn_on_oracle_is_sane(self, setup):
        n, exact, oracle = setup
        rnn = reverse_nearest_neighbors(oracle, 1, n)
        assert all(0 <= poi < n and poi != 1 for poi in rnn)
