"""Tests for the A2A oracle (Appendix C) and the n > N setting (App. D)."""

import math

import numpy as np
import pytest

from repro.core import A2AOracle, build_site_pois
from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, sample_uniform


@pytest.fixture(scope="module")
def terrain():
    return make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=31)


@pytest.fixture(scope="module")
def a2a(terrain):
    return A2AOracle(terrain, epsilon=0.25, sites_per_edge=1,
                     points_per_edge=1, seed=2).build()


class TestSites:
    def test_site_count(self, terrain):
        sites = build_site_pois(terrain, sites_per_edge=1)
        assert len(sites) == terrain.num_vertices + terrain.num_edges

    def test_zero_edge_sites(self, terrain):
        sites = build_site_pois(terrain, sites_per_edge=0)
        assert len(sites) == terrain.num_vertices

    def test_negative_density_rejected(self, terrain):
        with pytest.raises(ValueError):
            build_site_pois(terrain, sites_per_edge=-1)

    def test_vertex_sites_coincide_with_vertices(self, terrain):
        sites = build_site_pois(terrain, sites_per_edge=0)
        np.testing.assert_allclose(sites.positions, terrain.vertices)


class TestNeighborhood:
    def test_neighborhood_nonempty(self, a2a, terrain):
        low, high = terrain.bounding_box()
        x = (low[0] + high[0]) / 2
        y = (low[1] + high[1]) / 2
        sites = a2a.neighborhood(x, y)
        assert sites
        assert len(set(sites)) == len(sites)

    def test_neighborhood_outside_raises(self, a2a):
        with pytest.raises(ValueError):
            a2a.neighborhood(1e9, 1e9)

    def test_neighborhood_contains_face_corners(self, a2a, terrain):
        x, y = 50.0, 50.0
        face_id = terrain.locate_face(x, y)
        sites = a2a.neighborhood(x, y)
        corner_vertex = int(terrain.faces[face_id][0])
        # Vertex sites are indexed first, one per vertex.
        assert corner_vertex in sites


class TestQueries:
    def test_query_before_build_raises(self, terrain):
        fresh = A2AOracle(terrain, epsilon=0.25)
        with pytest.raises(RuntimeError):
            fresh.query((10, 10), (90, 90))

    def test_query_accuracy_against_direct_dijkstra(self, a2a, terrain):
        """A2A estimates must track a direct graph computation."""
        pois = sample_uniform(terrain, 8, seed=7)
        engine = GeodesicEngine(terrain, pois, points_per_edge=1)
        rng = np.random.default_rng(3)
        checked = 0
        for _ in range(6):
            ax, ay = rng.uniform(15, 85, 2)
            bx, by = rng.uniform(15, 85, 2)
            true_dist = _direct_distance(engine, (ax, ay), (bx, by))
            approx = a2a.query((float(ax), float(ay)), (float(bx), float(by)))
            if true_dist < 1e-9:
                continue
            checked += 1
            # The site grid adds its own discretisation on top of eps;
            # allow a generous but bounded envelope.
            assert approx >= true_dist * (1 - a2a.epsilon - 1e-6)
            assert approx <= true_dist * (1 + a2a.epsilon + 0.35)
        assert checked >= 4

    def test_query_symmetry(self, a2a):
        forward = a2a.query((20.0, 20.0), (80.0, 75.0))
        backward = a2a.query((80.0, 75.0), (20.0, 20.0))
        assert forward == pytest.approx(backward, rel=1e-9)

    def test_nearby_points_have_small_distance(self, a2a):
        distance = a2a.query((50.0, 50.0), (51.0, 50.5))
        assert distance < 10.0

    def test_p2p_in_n_greater_N_regime(self, a2a, terrain):
        """Appendix D: P2P through the POI-independent oracle."""
        pois = sample_uniform(terrain, 50, seed=9)  # n >> sites is fine
        d = a2a.query_p2p(pois, 0, 25)
        assert d > 0
        assert math.isfinite(d)

    def test_size_accounts_for_site_table(self, a2a):
        assert a2a.size_bytes() > a2a.se_oracle.size_bytes()

    def test_num_sites(self, a2a, terrain):
        assert a2a.num_sites == terrain.num_vertices + terrain.num_edges

    def test_stats_exposed(self, a2a):
        assert a2a.stats.pairs_stored > 0


def _direct_distance(engine, a_xy, b_xy):
    node_a = engine.attach_point(float(a_xy[0]), float(a_xy[1]))
    node_b = engine.attach_point(float(b_xy[0]), float(b_xy[1]))
    distance = engine.node_distance(node_a, node_b)
    engine.detach_points(2)
    return distance
