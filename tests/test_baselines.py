"""Tests for the SP-Oracle, K-Algo and full-materialization baselines."""

import numpy as np
import pytest

from repro.baselines import (
    FullAPSPBaseline,
    KAlgo,
    SPOracle,
    steiner_density_for_epsilon,
)
from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, pois_from_vertices, sample_uniform


@pytest.fixture(scope="module")
def terrain():
    return make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=51)


@pytest.fixture(scope="module")
def pois(terrain):
    return sample_uniform(terrain, 15, seed=52)


@pytest.fixture(scope="module")
def reference_engine(terrain, pois):
    return GeodesicEngine(terrain, pois, points_per_edge=2)


@pytest.fixture(scope="module")
def sp(terrain):
    return SPOracle(terrain, epsilon=0.25, points_per_edge=1).build()


class TestSteinerDensity:
    def test_rate(self):
        assert steiner_density_for_epsilon(1.0) == 1
        assert steiner_density_for_epsilon(0.25) == 2
        assert steiner_density_for_epsilon(0.05) >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            steiner_density_for_epsilon(0.0)


class TestSPOracle:
    def test_epsilon_validation(self, terrain):
        with pytest.raises(ValueError):
            SPOracle(terrain, epsilon=-0.1)

    def test_query_before_build_raises(self, terrain):
        fresh = SPOracle(terrain, epsilon=0.25)
        with pytest.raises(RuntimeError):
            fresh.query_xy((0, 0), (1, 1))
        with pytest.raises(RuntimeError):
            fresh.size_bytes()

    def test_size_is_quadratic_in_sites(self, sp):
        assert sp.size_bytes() == 8 * sp.num_sites ** 2

    def test_stats(self, sp):
        assert sp.stats.total_seconds > 0
        assert sp.stats.num_sites == sp.num_sites

    def test_p2p_accuracy(self, sp, pois, reference_engine):
        for source, target in [(0, 7), (3, 12), (14, 1)]:
            approx = sp.query_p2p(pois, source, target)
            true = reference_engine.distance(source, target)
            assert approx == pytest.approx(true, rel=0.35)
            assert approx >= true * 0.75

    def test_p2p_same_poi(self, sp, pois):
        assert sp.query_p2p(pois, 4, 4) == 0.0

    def test_v2v_query(self, sp, terrain):
        reference = GeodesicEngine(terrain, pois_from_vertices(terrain, [5, 40]),
                                   points_per_edge=2)
        approx = sp.query_vertex(5, 40)
        true = reference.distance(0, 1)
        assert approx == pytest.approx(true, rel=0.35)

    def test_v2v_same_vertex(self, sp):
        assert sp.query_vertex(3, 3) == 0.0

    def test_xy_outside_raises(self, sp):
        with pytest.raises(ValueError):
            sp.query_xy((1e9, 1e9), (0.0, 0.0))

    def test_symmetry(self, sp):
        forward = sp.query_xy((20.0, 30.0), (70.0, 60.0))
        backward = sp.query_xy((70.0, 60.0), (20.0, 30.0))
        assert forward == pytest.approx(backward, rel=1e-5)


class TestKAlgo:
    def test_epsilon_validation(self, terrain, pois):
        with pytest.raises(ValueError):
            KAlgo(terrain, pois, epsilon=0.0)

    def test_no_index(self, terrain, pois):
        algo = KAlgo(terrain, pois, epsilon=0.25)
        assert algo.size_bytes() == 0
        assert algo.build() is algo

    def test_query_matches_engine(self, terrain, pois):
        algo = KAlgo(terrain, pois, epsilon=0.25, points_per_edge=2)
        reference = GeodesicEngine(terrain, pois, points_per_edge=2)
        for source, target in [(0, 5), (2, 11), (9, 3)]:
            assert algo.query(source, target) \
                == pytest.approx(reference.distance(source, target))

    def test_bidirectional_matches_unidirectional(self, terrain, pois):
        uni = KAlgo(terrain, pois, epsilon=0.25, points_per_edge=1)
        bi = KAlgo(terrain, pois, epsilon=0.25, points_per_edge=1,
                   bidirectional=True)
        for source, target in [(0, 5), (7, 13)]:
            assert bi.query(source, target) \
                == pytest.approx(uni.query(source, target))

    def test_same_poi(self, terrain, pois):
        algo = KAlgo(terrain, pois, epsilon=0.25)
        assert algo.query(6, 6) == 0.0

    def test_query_xy_detaches(self, terrain, pois):
        algo = KAlgo(terrain, pois, epsilon=0.25, points_per_edge=1)
        nodes_before = algo.engine.graph.num_nodes
        distance = algo.query_xy((20.0, 20.0), (80.0, 80.0))
        assert distance > 0
        assert algo.engine.graph.num_nodes == nodes_before


class TestFullAPSP:
    def test_query_before_build(self, reference_engine):
        fresh = FullAPSPBaseline(reference_engine)
        with pytest.raises(RuntimeError):
            fresh.query(0, 1)

    def test_matrix_matches_pairwise(self, terrain, pois):
        engine = GeodesicEngine(terrain, pois, points_per_edge=1)
        baseline = FullAPSPBaseline(engine).build()
        for source, target in [(0, 3), (7, 12), (14, 14)]:
            assert baseline.query(source, target) \
                == pytest.approx(engine.distance(source, target))

    def test_size_quadratic(self, terrain, pois):
        engine = GeodesicEngine(terrain, pois, points_per_edge=0)
        baseline = FullAPSPBaseline(engine).build()
        assert baseline.size_bytes() == 8 * len(pois) ** 2

    def test_matrix_is_symmetric(self, terrain, pois):
        engine = GeodesicEngine(terrain, pois, points_per_edge=0)
        baseline = FullAPSPBaseline(engine).build()
        matrix = baseline.matrix()
        np.testing.assert_allclose(matrix, matrix.T, rtol=1e-9)
        assert (np.diag(matrix) == 0).all()

    def test_matrix_readonly(self, terrain, pois):
        engine = GeodesicEngine(terrain, pois, points_per_edge=0)
        baseline = FullAPSPBaseline(engine).build()
        with pytest.raises(ValueError):
            baseline.matrix()[0, 0] = 5.0

    def test_stats(self, terrain, pois):
        engine = GeodesicEngine(terrain, pois, points_per_edge=0)
        baseline = FullAPSPBaseline(engine).build()
        assert baseline.stats.ssad_calls == len(pois)
        assert baseline.stats.total_seconds > 0


class TestCrossMethodConsistency:
    def test_all_methods_agree_within_tolerance(self, terrain, pois,
                                                reference_engine):
        """SE, SP-Oracle, K-Algo and APSP must tell one coherent story."""
        from repro.core import SEOracle
        epsilon = 0.25
        se = SEOracle(GeodesicEngine(terrain, pois, points_per_edge=2),
                      epsilon=epsilon, seed=1).build()
        sp = SPOracle(terrain, epsilon=epsilon, points_per_edge=2).build()
        kalgo = KAlgo(terrain, pois, epsilon=epsilon, points_per_edge=2)
        for source, target in [(0, 8), (5, 13), (2, 10)]:
            true = reference_engine.distance(source, target)
            assert se.query(source, target) \
                == pytest.approx(true, rel=epsilon + 1e-6)
            assert kalgo.query(source, target) == pytest.approx(true)
            assert sp.query_p2p(pois, source, target) \
                == pytest.approx(true, rel=0.3)
