"""Unit and property tests for the indexed binary heaps."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import IndexedMaxHeap, IndexedMinHeap


class TestMinHeapBasics:
    def test_empty_heap_is_falsy(self):
        heap = IndexedMinHeap()
        assert not heap
        assert len(heap) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().peek()

    def test_push_pop_single(self):
        heap = IndexedMinHeap()
        heap.push("a", 1.5)
        assert heap.peek() == ("a", 1.5)
        assert heap.pop() == ("a", 1.5)
        assert not heap

    def test_init_from_iterable(self):
        heap = IndexedMinHeap([("a", 3.0), ("b", 1.0), ("c", 2.0)])
        assert heap.pop() == ("b", 1.0)
        assert heap.pop() == ("c", 2.0)
        assert heap.pop() == ("a", 3.0)

    def test_pop_order_is_sorted(self):
        heap = IndexedMinHeap()
        values = [5.0, 3.0, 8.0, 1.0, 9.0, 2.0, 7.0]
        for i, value in enumerate(values):
            heap.push(i, value)
        popped = [heap.pop()[1] for _ in range(len(values))]
        assert popped == sorted(values)

    def test_duplicate_push_raises(self):
        heap = IndexedMinHeap()
        heap.push("a", 1.0)
        with pytest.raises(ValueError):
            heap.push("a", 2.0)

    def test_contains_and_key_of(self):
        heap = IndexedMinHeap()
        heap.push("x", 4.0)
        assert "x" in heap
        assert "y" not in heap
        assert heap.key_of("x") == 4.0

    def test_key_of_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().key_of("missing")

    def test_equal_keys_all_popped(self):
        heap = IndexedMinHeap()
        for i in range(10):
            heap.push(i, 1.0)
        items = {heap.pop()[0] for _ in range(10)}
        assert items == set(range(10))


class TestMinHeapKeyUpdates:
    def test_decrease_key_moves_to_front(self):
        heap = IndexedMinHeap([("a", 5.0), ("b", 2.0)])
        heap.decrease_key("a", 1.0)
        assert heap.pop() == ("a", 1.0)

    def test_decrease_key_with_larger_key_raises(self):
        heap = IndexedMinHeap([("a", 1.0)])
        with pytest.raises(ValueError):
            heap.decrease_key("a", 2.0)

    def test_update_key_increase(self):
        heap = IndexedMinHeap([("a", 1.0), ("b", 2.0)])
        heap.update_key("a", 3.0)
        assert heap.pop() == ("b", 2.0)
        assert heap.pop() == ("a", 3.0)

    def test_push_or_update_inserts_then_updates(self):
        heap = IndexedMinHeap()
        heap.push_or_update("a", 5.0)
        heap.push_or_update("a", 2.0)
        assert len(heap) == 1
        assert heap.pop() == ("a", 2.0)

    def test_remove_middle_item(self):
        heap = IndexedMinHeap([(i, float(i)) for i in range(8)])
        key = heap.remove(4)
        assert key == 4.0
        popped = [heap.pop()[0] for _ in range(len(heap))]
        assert popped == [0, 1, 2, 3, 5, 6, 7]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().remove("nope")


class TestMaxHeap:
    def test_pop_order_is_descending(self):
        heap = IndexedMaxHeap()
        values = [5.0, 3.0, 8.0, 1.0]
        for i, value in enumerate(values):
            heap.push(i, value)
        popped = [heap.pop()[1] for _ in range(len(values))]
        assert popped == sorted(values, reverse=True)

    def test_key_of_is_unnegated(self):
        heap = IndexedMaxHeap([("a", 7.0)])
        assert heap.key_of("a") == 7.0
        assert heap.peek() == ("a", 7.0)

    def test_update_key_reorders(self):
        heap = IndexedMaxHeap([("a", 1.0), ("b", 5.0)])
        heap.update_key("a", 9.0)
        assert heap.pop() == ("a", 9.0)

    def test_remove_returns_original_key(self):
        heap = IndexedMaxHeap([("a", 3.5)])
        assert heap.remove("a") == 3.5
        assert not heap


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False), max_size=60))
def test_heapsort_property(values):
    heap = IndexedMinHeap()
    for i, value in enumerate(values):
        heap.push(i, value)
    heap.check_invariants()
    popped = [heap.pop()[1] for _ in range(len(values))]
    assert popped == sorted(values)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["push", "pop", "update", "remove"]),
                          st.integers(0, 30),
                          st.floats(min_value=-1e6, max_value=1e6,
                                    allow_nan=False)),
                max_size=120))
def test_random_operations_match_reference(ops):
    """Drive the heap with arbitrary ops against a dict reference model."""
    heap = IndexedMinHeap()
    reference = {}
    for op, item, key in ops:
        if op == "push" and item not in reference:
            heap.push(item, key)
            reference[item] = key
        elif op == "pop" and reference:
            popped_item, popped_key = heap.pop()
            assert popped_key == min(reference.values())
            assert reference.pop(popped_item) == popped_key
        elif op == "update" and item in reference:
            heap.update_key(item, key)
            reference[item] = key
        elif op == "remove" and item in reference:
            assert heap.remove(item) == reference.pop(item)
    heap.check_invariants()
    assert len(heap) == len(reference)
    drained = {}
    while heap:
        popped_item, popped_key = heap.pop()
        drained[popped_item] = popped_key
    assert drained == reference


def test_large_random_stress():
    rng = random.Random(42)
    heap = IndexedMinHeap()
    reference = {}
    for step in range(3000):
        action = rng.random()
        if action < 0.5 or not reference:
            item = rng.randrange(10000)
            if item not in reference:
                key = rng.uniform(0, 1000)
                heap.push(item, key)
                reference[item] = key
        elif action < 0.75:
            popped_item, popped_key = heap.pop()
            assert popped_key == pytest.approx(min(reference.values()))
            del reference[popped_item]
        else:
            item = rng.choice(list(reference))
            key = rng.uniform(0, 1000)
            heap.update_key(item, key)
            reference[item] = key
    heap.check_invariants()
