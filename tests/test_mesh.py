"""Tests for the TriangleMesh substrate."""

import math

import numpy as np
import pytest

from repro.terrain import MeshError, TriangleMesh


@pytest.fixture
def unit_square():
    """Two triangles forming the unit square in the z=0 plane."""
    vertices = np.array([
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0],
    ])
    faces = np.array([[0, 1, 2], [0, 2, 3]])
    return TriangleMesh(vertices, faces)


@pytest.fixture
def tetra():
    """A tetrahedron (closed surface, every edge has two faces)."""
    vertices = np.array([
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [0.5, 1.0, 0.0],
        [0.5, 0.5, 1.0],
    ])
    faces = np.array([[0, 1, 2], [0, 1, 3], [1, 2, 3], [0, 2, 3]])
    return TriangleMesh(vertices, faces)


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((3, 2)), np.array([[0, 1, 2]]))
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 2, 0]]))

    def test_out_of_range_face_rejected(self):
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 5]]))
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((3, 3)), np.array([[-1, 1, 2]]))

    def test_degenerate_face_rejected(self):
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 0, 1]]))

    def test_vertices_read_only(self, unit_square):
        with pytest.raises(ValueError):
            unit_square.vertices[0, 0] = 5.0

    def test_empty_faces_allowed(self):
        mesh = TriangleMesh(np.zeros((2, 3)), np.zeros((0, 3), dtype=int))
        assert mesh.num_faces == 0
        assert mesh.num_edges == 0

    def test_repr(self, unit_square):
        assert "vertices=4" in repr(unit_square)


class TestTopology:
    def test_edge_set(self, unit_square):
        assert unit_square.edges == [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]
        assert unit_square.num_edges == 5

    def test_edge_faces(self, unit_square):
        assert unit_square.edge_faces[(0, 2)] == [0, 1]  # shared diagonal
        assert unit_square.edge_faces[(0, 1)] == [0]

    def test_tetra_all_edges_interior(self, tetra):
        assert all(len(f) == 2 for f in tetra.edge_faces.values())
        assert tetra.num_edges == 6

    def test_vertex_neighbors(self, unit_square):
        assert sorted(unit_square.vertex_neighbors[0]) == [1, 2, 3]
        assert sorted(unit_square.vertex_neighbors[1]) == [0, 2]

    def test_vertex_faces(self, unit_square):
        assert unit_square.vertex_faces[0] == [0, 1]
        assert unit_square.vertex_faces[1] == [0]

    def test_faces_adjacent_to(self, unit_square):
        assert unit_square.faces_adjacent_to(0) == [0, 1]


class TestGeometry:
    def test_edge_length(self, unit_square):
        assert unit_square.edge_length(0, 1) == pytest.approx(1.0)
        assert unit_square.edge_length(0, 2) == pytest.approx(math.sqrt(2))

    def test_edge_lengths_alignment(self, unit_square):
        lengths = unit_square.edge_lengths()
        for (u, v), length in zip(unit_square.edges, lengths):
            assert length == pytest.approx(unit_square.edge_length(u, v))

    def test_face_area(self, unit_square):
        assert unit_square.face_area(0) == pytest.approx(0.5)
        assert unit_square.surface_area() == pytest.approx(1.0)

    def test_face_areas_vectorised(self, tetra):
        areas = tetra.face_areas()
        expected = [tetra.face_area(i) for i in range(4)]
        np.testing.assert_allclose(areas, expected)

    def test_face_angles_sum_to_pi(self, tetra):
        for face_id in range(tetra.num_faces):
            assert sum(tetra.face_angles(face_id)) == pytest.approx(math.pi)

    def test_min_inner_angle(self, unit_square):
        assert unit_square.min_inner_angle() == pytest.approx(math.pi / 4)

    def test_bounding_box_and_extent(self, unit_square):
        low, high = unit_square.bounding_box()
        np.testing.assert_allclose(low, [0, 0, 0])
        np.testing.assert_allclose(high, [1, 1, 0])
        assert unit_square.xy_extent() == (1.0, 1.0)

    def test_face_centroid(self, unit_square):
        np.testing.assert_allclose(unit_square.face_centroid(0),
                                   [2 / 3, 1 / 3, 0])


class TestPointLocation:
    def test_locate_inside(self, unit_square):
        face = unit_square.locate_face(0.75, 0.25)
        assert face == 0
        face = unit_square.locate_face(0.25, 0.75)
        assert face == 1

    def test_locate_outside(self, unit_square):
        assert unit_square.locate_face(2.0, 2.0) == -1
        assert unit_square.locate_face(-0.5, 0.5) == -1

    def test_locate_on_shared_edge(self, unit_square):
        assert unit_square.locate_face(0.5, 0.5) in (0, 1)

    def test_project_interpolates_height(self):
        vertices = np.array([
            [0.0, 0.0, 0.0],
            [2.0, 0.0, 2.0],
            [0.0, 2.0, 0.0],
        ])
        mesh = TriangleMesh(vertices, np.array([[0, 1, 2]]))
        point = mesh.project_onto_surface(1.0, 0.0)
        np.testing.assert_allclose(point, [1.0, 0.0, 1.0])

    def test_project_outside_returns_none(self, unit_square):
        assert unit_square.project_onto_surface(5.0, 5.0) is None

    def test_barycentric_weights_sum_to_one(self, unit_square):
        weights = unit_square.barycentric_weights(0, 0.6, 0.2)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights >= -1e-12).all()

    def test_contains_point_2d(self, unit_square):
        assert unit_square.contains_point_2d(0, 0.9, 0.05)
        assert not unit_square.contains_point_2d(0, 0.05, 0.9)

    def test_locate_on_larger_terrain(self):
        from repro.terrain import make_terrain
        mesh = make_terrain(grid_exponent=4, extent=(100.0, 100.0), seed=5)
        rng = np.random.default_rng(0)
        for _ in range(50):
            x, y = rng.uniform(1, 99, 2)
            face = mesh.locate_face(float(x), float(y))
            assert face >= 0
            assert mesh.contains_point_2d(face, float(x), float(y))
