"""Shared fixtures: small terrains, POI sets and geodesic engines."""

import pytest

from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, sample_uniform


@pytest.fixture(scope="session")
def small_terrain():
    """~81-vertex fractal terrain, 100m x 100m."""
    return make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=11)


@pytest.fixture(scope="session")
def medium_terrain():
    """~289-vertex fractal terrain, 200m x 160m."""
    return make_terrain(grid_exponent=4, extent=(200.0, 160.0),
                        relief=30.0, seed=12)


@pytest.fixture(scope="session")
def small_engine(small_terrain):
    """Engine with 20 uniform POIs on the small terrain."""
    pois = sample_uniform(small_terrain, 20, seed=21)
    return GeodesicEngine(small_terrain, pois, points_per_edge=1)


@pytest.fixture(scope="session")
def medium_engine(medium_terrain):
    """Engine with 40 uniform POIs on the medium terrain."""
    pois = sample_uniform(medium_terrain, 40, seed=22)
    return GeodesicEngine(medium_terrain, pois, points_per_edge=1)
