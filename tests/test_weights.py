"""Tests for weighted metrics (slope penalty, elevation gain)."""

import math

import numpy as np
import pytest

from repro.core import SEOracle
from repro.geodesic import (
    ElevationGainWeight,
    GeodesicEngine,
    GeodesicGraph,
    SlopePenaltyWeight,
    euclidean_weight,
)
from repro.terrain import TriangleMesh, make_terrain, pois_from_vertices


def _steep_step_mesh():
    """Two flat shelves joined by a cliff: crossing is steep."""
    vertices = np.array([
        [0.0, 0.0, 0.0], [1.0, 0.0, 0.0],       # low shelf
        [1.2, 0.0, 5.0], [2.2, 0.0, 5.0],       # high shelf
        [0.0, 1.0, 0.0], [1.0, 1.0, 0.0],
        [1.2, 1.0, 5.0], [2.2, 1.0, 5.0],
    ])
    faces = np.array([
        [0, 1, 5], [0, 5, 4],
        [1, 2, 6], [1, 6, 5],   # the cliff
        [2, 3, 7], [2, 7, 6],
    ])
    return TriangleMesh(vertices, faces)


class TestEuclideanWeight:
    def test_matches_norm(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([3.0, 4.0, 12.0])
        assert euclidean_weight(a, b) == pytest.approx(13.0)

    def test_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert euclidean_weight(a, a) == 0.0


class TestSlopePenaltyWeight:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SlopePenaltyWeight(max_slope_deg=0.0)
        with pytest.raises(ValueError):
            SlopePenaltyWeight(max_slope_deg=120.0)
        with pytest.raises(ValueError):
            SlopePenaltyWeight(penalty=-1.0)

    def test_flat_edge_costs_length(self):
        weight = SlopePenaltyWeight(max_slope_deg=30.0, penalty=2.0)
        a = np.zeros(3)
        b = np.array([5.0, 0.0, 0.0])
        assert weight(a, b) == pytest.approx(5.0)

    def test_steeper_costs_more(self):
        weight = SlopePenaltyWeight(max_slope_deg=60.0, penalty=1.0)
        a = np.zeros(3)
        gentle = weight(a, np.array([10.0, 0.0, 1.0]))
        steep = weight(a, np.array([10.0, 0.0, 8.0]))
        gentle_len = math.hypot(10.0, 1.0)
        steep_len = math.hypot(10.0, 8.0)
        assert gentle / gentle_len < steep / steep_len

    def test_cutoff_is_infinite(self):
        weight = SlopePenaltyWeight(max_slope_deg=30.0)
        assert math.isinf(weight(np.zeros(3), np.array([0.1, 0.0, 1.0])))

    def test_symmetric(self):
        weight = SlopePenaltyWeight(max_slope_deg=45.0, penalty=0.5)
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([3.0, 1.0, 2.0])
        assert weight(a, b) == pytest.approx(weight(b, a))

    def test_coincident_points(self):
        weight = SlopePenaltyWeight()
        a = np.array([1.0, 1.0, 1.0])
        assert weight(a, a) == 0.0


class TestElevationGainWeight:
    def test_validation(self):
        with pytest.raises(ValueError):
            ElevationGainWeight(gain_cost=-0.1)

    def test_flat_equals_length(self):
        weight = ElevationGainWeight(gain_cost=5.0)
        assert weight(np.zeros(3), np.array([2.0, 0.0, 0.0])) \
            == pytest.approx(2.0)

    def test_climb_charged(self):
        weight = ElevationGainWeight(gain_cost=10.0)
        cost = weight(np.zeros(3), np.array([0.0, 0.0, 3.0]))
        assert cost == pytest.approx(3.0 + 30.0)

    def test_symmetric(self):
        weight = ElevationGainWeight(gain_cost=2.0)
        a = np.array([0.0, 0.0, 5.0])
        b = np.array([4.0, 0.0, 0.0])
        assert weight(a, b) == pytest.approx(weight(b, a))


class TestWeightedGraph:
    def test_impassable_edges_removed(self):
        mesh = _steep_step_mesh()
        plain = GeodesicGraph(mesh, points_per_edge=0)
        restricted = GeodesicGraph(
            mesh, points_per_edge=0,
            weight_fn=SlopePenaltyWeight(max_slope_deg=30.0))
        assert restricted.num_edges < plain.num_edges

    def test_cliff_disconnects_shelves(self):
        mesh = _steep_step_mesh()
        pois = pois_from_vertices(mesh, [0, 3])  # one per shelf
        engine = GeodesicEngine(
            mesh, pois, points_per_edge=0,
            weight_fn=SlopePenaltyWeight(max_slope_deg=30.0))
        assert math.isinf(engine.distance(0, 1))

    def test_weighted_distances_dominate_euclidean(self):
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=30.0, seed=91)
        pois = pois_from_vertices(mesh, [0, mesh.num_vertices - 1])
        flat = GeodesicEngine(mesh, pois, points_per_edge=0)
        hilly = GeodesicEngine(mesh, pois, points_per_edge=0,
                               weight_fn=ElevationGainWeight(gain_cost=3.0))
        assert hilly.distance(0, 1) >= flat.distance(0, 1)

    def test_oracle_on_weighted_metric(self):
        """The SE guarantee holds relative to any (metric) weight model."""
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=30.0, seed=92)
        from repro.terrain import sample_uniform
        pois = sample_uniform(mesh, 12, seed=93)
        engine = GeodesicEngine(mesh, pois, points_per_edge=1,
                                weight_fn=ElevationGainWeight(gain_cost=2.0))
        oracle = SEOracle(engine, epsilon=0.25, seed=1).build()
        for source in range(0, 12, 2):
            for target in range(1, 12, 3):
                if source == target:
                    continue
                approx = oracle.query(source, target)
                exact = engine.distance(source, target)
                assert abs(approx - exact) <= 0.25 * exact * (1 + 1e-6)
