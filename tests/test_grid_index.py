"""Tests for the grid density index (greedy selection substrate)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import GridDensityIndex


def _cluster(center, count, spread, rng):
    cx, cy = center
    return {
        int(1000 * cx) + i: (cx + rng.uniform(-spread, spread),
                             cy + rng.uniform(-spread, spread))
        for i in range(count)
    }


class TestConstruction:
    def test_invalid_cell_width_rejected(self):
        with pytest.raises(ValueError):
            GridDensityIndex({}, cell_width=0.0)
        with pytest.raises(ValueError):
            GridDensityIndex({}, cell_width=-1.0)
        with pytest.raises(ValueError):
            GridDensityIndex({}, cell_width=math.inf)

    def test_empty_index(self):
        index = GridDensityIndex({}, cell_width=1.0)
        assert not index
        assert len(index) == 0
        with pytest.raises(IndexError):
            index.pick_from_densest()

    def test_duplicate_id_rejected(self):
        index = GridDensityIndex({1: (0.0, 0.0)}, cell_width=1.0)
        with pytest.raises(ValueError):
            index.insert(1, 5.0, 5.0)

    def test_cell_of_floor_semantics(self):
        index = GridDensityIndex({}, cell_width=2.0)
        assert index.cell_of(0.0, 0.0) == (0, 0)
        assert index.cell_of(1.99, 1.99) == (0, 0)
        assert index.cell_of(2.0, 0.0) == (1, 0)
        assert index.cell_of(-0.01, 0.0) == (-1, 0)


class TestDensestSelection:
    def test_densest_cell_wins(self):
        rng = random.Random(0)
        points = {}
        points.update(_cluster((0.5, 0.5), 3, 0.1, rng))
        points.update(_cluster((10.5, 10.5), 8, 0.1, rng))
        index = GridDensityIndex(points, cell_width=1.0, rng=rng)
        assert index.densest_cell() == index.cell_of(10.5, 10.5)
        picked = index.pick_from_densest()
        assert points[picked][0] > 5  # from the dense cluster

    def test_pick_does_not_remove(self):
        index = GridDensityIndex({1: (0.5, 0.5)}, cell_width=1.0)
        assert index.pick_from_densest() == 1
        assert 1 in index

    def test_density_order_flips_after_removals(self):
        rng = random.Random(1)
        points = {}
        points.update(_cluster((0.5, 0.5), 6, 0.1, rng))
        points.update(_cluster((10.5, 10.5), 4, 0.1, rng))
        index = GridDensityIndex(points, cell_width=1.0, rng=rng)
        dense = index.cell_of(0.5, 0.5)
        assert index.densest_cell() == dense
        # Remove points from the dense cluster until the other one wins.
        dense_ids = [pid for pid, (x, _) in points.items() if x < 5]
        index.remove_all(dense_ids[:3])
        assert index.densest_cell() == index.cell_of(10.5, 10.5)
        index.check_invariants()


class TestRemoval:
    def test_remove_missing_raises(self):
        index = GridDensityIndex({}, cell_width=1.0)
        with pytest.raises(KeyError):
            index.remove(99)

    def test_remove_all_skips_absent(self):
        index = GridDensityIndex({1: (0, 0), 2: (0, 0)}, cell_width=1.0)
        index.remove_all([1, 99, 2])
        assert len(index) == 0
        assert index.non_empty_cells() == 0

    def test_empty_cell_dropped(self):
        index = GridDensityIndex({1: (0.5, 0.5), 2: (5.5, 5.5)}, cell_width=1.0)
        assert index.non_empty_cells() == 2
        index.remove(1)
        assert index.non_empty_cells() == 1
        index.check_invariants()


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.integers(0, 500),
                       st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                       max_size=80),
       st.floats(0.1, 50.0),
       st.data())
def test_random_workload_consistency(points, width, data):
    index = GridDensityIndex(points, cell_width=width)
    index.check_invariants()
    remaining = dict(points)
    to_remove = data.draw(st.lists(st.sampled_from(sorted(points)), unique=True)
                          if points else st.just([]))
    for pid in to_remove:
        index.remove(pid)
        del remaining[pid]
    index.check_invariants()
    assert len(index) == len(remaining)
    if remaining:
        # Densest cell must actually have maximal population.
        counts = {}
        for pid, (x, y) in remaining.items():
            counts.setdefault(index.cell_of(x, y), []).append(pid)
        best = index.densest_cell()
        assert len(counts[best]) == max(len(v) for v in counts.values())
        assert index.pick_from_densest() in counts[best]
