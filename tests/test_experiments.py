"""Tests for the experiment layer: datasets, harness, figures, tables."""

import pytest

from repro.experiments import (
    DATASET_NAMES,
    MethodResult,
    format_result_row,
    format_series_table,
    generate_a2a_pairs,
    generate_query_pairs,
    load_dataset,
    run_a2a_experiment,
    run_p2p_experiment,
    table2_dataset_statistics,
    table3_query_distances,
)


class TestDatasets:
    def test_all_names_load_tiny(self):
        for name in DATASET_NAMES:
            dataset = load_dataset(name, "tiny")
            assert dataset.num_vertices > 0
            assert dataset.num_pois > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("mars", "tiny")

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("sf", "galactic")

    def test_deterministic(self):
        a = load_dataset("bearhead", "tiny")
        b = load_dataset("bearhead", "tiny")
        assert a.num_vertices == b.num_vertices
        assert (a.pois.positions == b.pois.positions).all()

    def test_bench_larger_than_tiny(self):
        tiny = load_dataset("sf", "tiny")
        bench = load_dataset("sf", "bench")
        assert bench.num_vertices > tiny.num_vertices
        assert bench.num_pois > tiny.num_pois

    def test_extent_matches_table2(self):
        dataset = load_dataset("bearhead", "tiny")
        width, depth = dataset.mesh.xy_extent()
        assert width == pytest.approx(14_000.0)
        assert depth == pytest.approx(10_000.0)


class TestWorkloads:
    def test_query_pairs_shape(self):
        pairs = generate_query_pairs(10, count=25, seed=1)
        assert len(pairs) == 25
        assert all(s != t and 0 <= s < 10 and 0 <= t < 10
                   for s, t in pairs)

    def test_query_pairs_need_two_pois(self):
        with pytest.raises(ValueError):
            generate_query_pairs(1)

    def test_query_pairs_deterministic(self):
        assert generate_query_pairs(20, seed=4) \
            == generate_query_pairs(20, seed=4)

    def test_a2a_pairs_inside_terrain(self):
        dataset = load_dataset("sf-small", "tiny")
        pairs = generate_a2a_pairs(dataset.mesh, count=10, seed=2)
        assert len(pairs) == 10
        for (ax, ay), (bx, by) in pairs:
            assert dataset.mesh.locate_face(ax, ay) >= 0
            assert dataset.mesh.locate_face(bx, by) >= 0


class TestP2PHarness:
    @pytest.fixture(scope="class")
    def results(self):
        dataset = load_dataset("sf-small", "tiny")
        return run_p2p_experiment(
            dataset.mesh, dataset.pois, epsilon=0.25,
            methods=["SE(Random)", "SE(Greedy)", "SE-Naive",
                     "SP-Oracle", "K-Algo"],
            num_queries=20, seed=5)

    def test_all_methods_reported(self, results):
        assert [r.method for r in results] == [
            "SE(Random)", "SE(Greedy)", "SE-Naive", "SP-Oracle", "K-Algo"]

    def test_se_error_within_epsilon(self, results):
        for result in results:
            if result.method.startswith("SE"):
                assert result.errors.max <= 0.25 * (1 + 1e-6)

    def test_kalgo_is_exact_on_reference_metric(self, results):
        kalgo = next(r for r in results if r.method == "K-Algo")
        # K-Algo searches a denser graph than the reference (eps-derived
        # density), so its answers can only be <= the reference's.
        assert kalgo.errors.mean <= 0.15

    def test_kalgo_has_no_index(self, results):
        kalgo = next(r for r in results if r.method == "K-Algo")
        assert kalgo.size_bytes == 0

    def test_sp_oracle_bigger_than_se(self, results):
        sp = next(r for r in results if r.method == "SP-Oracle")
        se = next(r for r in results if r.method == "SE(Random)")
        assert sp.size_bytes > se.size_bytes

    def test_se_query_faster_than_kalgo(self, results):
        se = next(r for r in results if r.method == "SE(Random)")
        kalgo = next(r for r in results if r.method == "K-Algo")
        assert se.query_seconds_mean < kalgo.query_seconds_mean

    def test_unknown_method_rejected(self):
        dataset = load_dataset("sf-small", "tiny")
        with pytest.raises(KeyError):
            run_p2p_experiment(dataset.mesh, dataset.pois, 0.25,
                               ["Sorcery"], num_queries=5)

    def test_extra_fields(self, results):
        se = next(r for r in results if r.method == "SE(Random)")
        assert se.extra["height"] >= 1
        assert se.extra["pairs"] > 0

    def test_serving_load_cost_reported(self, results):
        """SE methods report the pack -> open (binary store) costs."""
        se = next(r for r in results if r.method == "SE(Random)")
        assert se.extra["pack_seconds"] > 0
        assert se.extra["load_seconds"] > 0
        assert se.extra["store_bytes"] > 0
        # Opening the packed store must be far cheaper than building.
        assert se.extra["load_seconds"] < se.build_seconds


class TestA2AHarness:
    def test_a2a_experiment_runs(self):
        dataset = load_dataset("sf-small", "tiny")
        results = run_a2a_experiment(dataset.mesh, epsilon=0.25,
                                     num_queries=5, seed=6)
        assert [r.method for r in results] == ["SE", "SP-Oracle", "K-Algo"]
        kalgo = results[-1]
        # K-Algo computes on the reference metric graph directly.
        assert kalgo.errors.mean <= 0.2
        for result in results[:2]:
            assert result.size_bytes > 0


class TestReporting:
    def _fake_result(self, method, build=1.0):
        from repro.analysis import ErrorStats
        return MethodResult(
            method=method, build_seconds=build, size_bytes=1 << 20,
            query_seconds_mean=0.001,
            errors=ErrorStats(count=5, mean=0.01, max=0.02, p50=0.01,
                              p95=0.02))

    def test_format_result_row(self):
        row = format_result_row(self._fake_result("SE(Random)"))
        assert "SE(Random)" in row
        assert "1.0000MB" in row

    def test_format_series_table_panels(self):
        series = {
            "0.1": [self._fake_result("SE"), self._fake_result("K-Algo")],
            "0.2": [self._fake_result("SE"), self._fake_result("K-Algo")],
        }
        text = format_series_table("Figure X", "eps", series)
        assert "(a) Building time" in text
        assert "(b) Oracle size" in text
        assert "(c) Query time" in text
        assert "(d) Error" in text
        assert "0.1" in text and "0.2" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            format_series_table("t", "x", {})


class TestTables:
    def test_table2(self, capsys):
        rows = table2_dataset_statistics("tiny", render=True)
        assert len(rows) == len(DATASET_NAMES)
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "bearhead" in out

    def test_table3(self, capsys):
        rows = table3_query_distances("tiny", names=("sf-small",),
                                      num_queries=10, render=True)
        assert len(rows) == 1
        row = rows[0]
        assert row["min_km"] <= row["avg_km"] <= row["max_km"]
        assert "Table 3" in capsys.readouterr().out
