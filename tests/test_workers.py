"""Multi-worker fleet tests: SO_REUSEPORT spread, per-worker mmaps,
single-writer update pinning, and flush generation publishing.

These fork real worker processes (one service + one mmap each) and
talk to them over TCP, so they are the slowest tests in the suite —
everything rides on one module-scoped fleet, and the flush scenario
runs as a single ordered story.
"""

import socket
import threading
import time

import pytest

from repro.core import SEOracle, pack_oracle
from repro.geodesic import GeodesicEngine
from repro.serving import MutableSpec, ServerConfig, WorkerFleet
from repro.serving.loadgen import OracleClient, ServerError
from repro.terrain import make_terrain, sample_uniform, write_mesh

if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
    pytest.skip("SO_REUSEPORT not available on this platform",
                allow_module_level=True)

NUM_POIS = 12
WORKERS = 3


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=7)
    mesh_path = root / "dunes.obj"
    write_mesh(mesh, str(mesh_path))
    pois = sample_uniform(mesh, NUM_POIS, seed=8)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    dunes = root / "dunes.store"
    pack_oracle(SEOracle(engine, 0.3, seed=7).build(), dunes)

    mesh2 = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                         relief=15.0, seed=9)
    pois2 = sample_uniform(mesh2, 10, seed=10)
    alps = root / "alps.store"
    pack_oracle(
        SEOracle(GeodesicEngine(mesh2, pois2, points_per_edge=1),
                 0.3, seed=9).build(),
        alps,
    )

    config = ServerConfig(
        registrations=(("alps", str(alps)), ("dunes", str(dunes))),
        mutable={
            "dunes": MutableSpec(mesh_path=str(mesh_path),
                                 pois=NUM_POIS, poi_seed=8, density=1),
        },
        workers=WORKERS,
    )
    with WorkerFleet(config) as running:
        yield running


@pytest.fixture(scope="module")
def worker_clients(fleet):
    """One open client per distinct worker the kernel hands us; the
    fleet has WORKERS accept queues behind one port, so repeated
    connects spread across them."""
    seen = {}
    for _ in range(48):
        client = OracleClient(fleet.host, fleet.port)
        worker = client.hello()["worker"]
        if worker in seen:
            client.close()
        else:
            seen[worker] = client
        if len(seen) == WORKERS:
            break
    yield seen
    for client in seen.values():
        client.close()


def test_connections_spread_across_workers(worker_clients):
    # The kernel balances by flow hash, not round-robin; demanding
    # every worker within 48 connects would be flaky, two is proof
    # of spread.
    assert len(worker_clients) >= 2
    for worker, client in worker_clients.items():
        hello = client.hello()
        assert hello["workers"] == WORKERS
        assert hello["writer"] is (worker == 0)
        assert set(hello["terrains"]) == {"alps", "dunes"}


def test_every_worker_answers_identically(worker_clients):
    answers = {w: c.query("dunes", 0, 5)
               for w, c in worker_clients.items()}
    assert len(set(answers.values())) == 1
    answers = {w: c.query("alps", 0, 1)
               for w, c in worker_clients.items()}
    assert len(set(answers.values())) == 1


def test_one_mmap_per_worker(worker_clients):
    """Each worker process owns exactly one map of each store it has
    touched: readers load lazily (one load), the writer's mutable
    terrain is mapped at registration and pinned (zero LRU loads)."""
    for worker, client in worker_clients.items():
        client.query("dunes", 0, 5)
        client.query("alps", 0, 1)
        stats = client.stats()["terrains"]
        expected_dunes = 0 if worker == 0 else 1
        assert stats["dunes"]["loads"] == expected_dunes
        assert stats["alps"]["loads"] == 1
        assert stats["dunes"]["evictions"] == 0


def test_reader_redirects_updates_to_writer(fleet, worker_clients):
    reader = next((c for w, c in worker_clients.items() if w != 0),
                  None)
    assert reader is not None
    with pytest.raises(ServerError) as info:
        reader.insert("dunes", 50.0, 50.0)
    assert info.value.error_type == "not-writer"
    assert info.value.extra["writer_host"] == fleet.host
    assert info.value.extra["writer_port"] == fleet.writer_port
    with pytest.raises(ServerError) as info:
        reader.flush("dunes")
    assert info.value.error_type == "not-writer"


def test_flush_publishes_generation_to_readers(fleet, worker_clients):
    """The whole single-writer story in order: updates land on the
    writer port, flush atomically republishes the store, and readers
    pick up the new generation by re-mmap on their next access —
    without dropping queries that are in flight while it happens."""
    reader = next(c for w, c in worker_clients.items() if w != 0)

    before = reader.query("dunes", 0, 1)
    hammered = []
    hammer_failures = []
    stop = threading.Event()

    def hammer():
        # In-flight traffic across the flush; separate connection so
        # it can land on any worker.
        try:
            with OracleClient(fleet.host, fleet.port) as client:
                while not stop.is_set():
                    hammered.append(client.query("dunes", 0, 1))
        except Exception as error:  # pragma: no cover
            hammer_failures.append(error)

    thread = threading.Thread(target=hammer)
    thread.start()
    try:
        with OracleClient(fleet.host, fleet.writer_port) as writer:
            assert writer.hello()["worker"] == 0
            first = writer.insert("dunes", 40.0, 40.0)
            second = writer.insert("dunes", 60.0, 25.0)
            assert second == first + 1
            meta = writer.flush("dunes")
            assert "fingerprint" in meta

            # Readers observe the flushed generation on next access.
            observed = None
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                try:
                    observed = reader.query("dunes", 0, second)
                    break
                except ServerError:
                    time.sleep(0.1)
            assert observed is not None, \
                "reader never observed the flushed generation"
            assert observed == writer.query("dunes", 0, second)
            after = reader.query("dunes", 0, 1)
            assert after == writer.query("dunes", 0, 1)
    finally:
        stop.set()
        thread.join()

    assert not hammer_failures
    assert hammered
    # No dropped or torn answers mid-swap: every in-flight reply is
    # the pre-flush or post-flush value (the rebuild may move the
    # approximation by ulps).
    after = reader.query("dunes", 0, 1)
    assert set(hammered) <= {before, after}

    stats = reader.stats()["terrains"]["dunes"]
    assert stats["refreshes"] == 1
    assert stats["loads"] == 2  # the initial map + one re-mmap
