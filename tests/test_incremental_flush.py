"""Rebuild-equivalence fuzz wall for the sublinear incremental flush.

PR-8 headline invariant: an incrementally-flushed oracle is
*bit-identical* to a freshly built one over the same live POI set —
every compiled section array-for-array, every query answer, and the
packed store byte-for-byte (under the canonical pack).  The suite
drives seeded churn traces (insert-only, delete-only, mixed; several
rebuild factors) through two identically-churned dynamic oracles and
compares the incremental path against ``force_rebuild``.
"""

import random

import numpy as np
import pytest

from repro.core import DynamicSEOracle
from repro.core.store import oracle_sections, pack_oracle
from repro.terrain import make_terrain, sample_uniform

EPSILON = 0.25
STAT_KEYS = {"reused_rows", "computed_rows",
             "reused_pairs", "computed_pairs"}


def make_oracle(seed, num_pois=12, rebuild_factor=10.0):
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=seed)
    pois = sample_uniform(mesh, num_pois, seed=seed + 1)
    return DynamicSEOracle(mesh, pois, epsilon=EPSILON,
                           rebuild_factor=rebuild_factor,
                           seed=1).build()


def draw_trace(seed, oracle, kind, steps=4):
    """A reproducible churn trace valid for ``oracle``'s live set."""
    rng = random.Random(10_000 + seed)
    live = [int(i) for i in oracle.live_ids()]
    trace = []
    for step in range(steps):
        deletable = len(live) > 3 and kind in ("delete", "mixed")
        insertable = kind in ("insert", "mixed")
        if deletable and (not insertable or rng.random() < 0.5):
            victim = live.pop(rng.randrange(len(live)))
            trace.append(("delete", victim))
        elif insertable:
            trace.append(("insert", rng.uniform(5.0, 95.0),
                          rng.uniform(5.0, 95.0)))
    return trace


def apply_trace(oracle, trace):
    for action in trace:
        if action[0] == "insert":
            oracle.insert(action[1], action[2])
        else:
            oracle.delete(action[1])


def assert_sections_identical(left, right):
    left_sections = oracle_sections(left)
    right_sections = oracle_sections(right)
    assert left_sections.keys() == right_sections.keys()
    for name, array in left_sections.items():
        other = right_sections[name]
        assert array.dtype == other.dtype, name
        assert array.shape == other.shape, name
        assert np.array_equal(array, other), (
            f"section {name!r} differs between incremental flush "
            "and force_rebuild"
        )


class TestSplicedTablesEqualReference:
    """flush(incremental=True) == force_rebuild, array-for-array."""

    @pytest.mark.parametrize("seed", [41, 43, 47])
    @pytest.mark.parametrize("kind", ["insert", "delete", "mixed"])
    def test_sections_bit_identical(self, seed, kind):
        incremental = make_oracle(seed)
        reference = make_oracle(seed)
        trace = draw_trace(seed, incremental, kind)
        assert trace, "empty churn trace drawn"
        apply_trace(incremental, trace)
        apply_trace(reference, trace)

        stats = incremental.flush()
        reference.force_rebuild()

        assert set(stats) == STAT_KEYS
        assert_sections_identical(incremental.oracle, reference.oracle)
        ids = incremental.live_ids()
        assert np.array_equal(ids, reference.live_ids())
        assert np.array_equal(incremental.query_matrix(),
                              reference.query_matrix())

    @pytest.mark.parametrize("rebuild_factor", [0.5, 2.0])
    def test_survives_amortised_mid_trace_rebuilds(self, rebuild_factor):
        """Low rebuild factors trigger rebuilds *inside* the trace;
        the memo must stay coherent across its own generations."""
        incremental = make_oracle(53, rebuild_factor=rebuild_factor)
        reference = make_oracle(53, rebuild_factor=rebuild_factor)
        trace = draw_trace(53, incremental, "mixed", steps=8)
        apply_trace(incremental, trace)
        apply_trace(reference, trace)
        assert incremental.rebuild_count == reference.rebuild_count

        incremental.flush()
        reference.force_rebuild()
        assert_sections_identical(incremental.oracle, reference.oracle)

    def test_explicit_full_flush_is_force_rebuild(self):
        oracle = make_oracle(59)
        oracle.insert(33.0, 44.0)
        stats = oracle.flush(incremental=False)
        assert stats["reused_rows"] == 0
        assert stats["computed_rows"] > 0


class TestCanonicalRepackByteIdentity:
    """Packed stores are byte-identical after the canonical repack."""

    def test_incremental_and_full_pack_identically(self, tmp_path):
        incremental = make_oracle(61)
        reference = make_oracle(61)
        trace = draw_trace(61, incremental, "mixed")
        apply_trace(incremental, trace)
        apply_trace(reference, trace)
        incremental.flush()
        reference.force_rebuild()

        left = tmp_path / "incremental.sestore"
        right = tmp_path / "reference.sestore"
        pack_oracle(incremental.oracle, left, canonical=True)
        pack_oracle(reference.oracle, right, canonical=True)
        assert left.read_bytes() == right.read_bytes()

    def test_previous_splice_preserves_bytes(self, tmp_path):
        """``previous=`` is a pure serialization shortcut: output
        bytes match a from-scratch pack exactly."""
        oracle = make_oracle(67)
        before = tmp_path / "gen0.sestore"
        pack_oracle(oracle.oracle, before, canonical=True)

        oracle.delete(int(oracle.live_ids()[0]))
        oracle.flush()
        plain = tmp_path / "gen1-plain.sestore"
        spliced = tmp_path / "gen1-spliced.sestore"
        report = pack_oracle(oracle.oracle, plain, canonical=True)
        spliced_report = pack_oracle(oracle.oracle, spliced,
                                     canonical=True, previous=before)
        assert plain.read_bytes() == spliced.read_bytes()
        assert spliced_report["sections"] == report["sections"]

    def test_idempotent_flush_reuses_every_section(self, tmp_path):
        """No churn → next generation splices all sections from the
        previous store."""
        oracle = make_oracle(71)
        gen0 = tmp_path / "gen0.sestore"
        pack_oracle(oracle.oracle, gen0, canonical=True)
        oracle.flush()  # no pending updates: pure replay
        gen1 = tmp_path / "gen1.sestore"
        report = pack_oracle(oracle.oracle, gen1, canonical=True,
                             previous=gen0)
        assert report["reused"] == report["sections"]
        assert gen0.read_bytes() == gen1.read_bytes()


class TestReuseAccounting:
    def test_noop_flush_recomputes_nothing(self):
        oracle = make_oracle(73)
        stats = oracle.flush()
        assert stats["computed_rows"] == 0
        assert stats["reused_rows"] > 0
        assert stats["computed_pairs"] == 0

    def test_delete_only_flush_reuses_most_rows(self):
        oracle = make_oracle(79)
        live = [int(i) for i in oracle.live_ids()]
        oracle.delete(live[2])
        oracle.delete(live[7])
        stats = oracle.flush()
        assert stats["reused_rows"] > stats["computed_rows"]

    def test_flush_returns_copy_of_last_stats(self):
        oracle = make_oracle(83)
        oracle.insert(20.0, 80.0)
        stats = oracle.flush()
        assert stats == oracle.last_flush_stats
        stats["reused_rows"] = -1
        assert oracle.last_flush_stats["reused_rows"] != -1


class TestFlushSteps:
    def test_sliced_flush_matches_reference(self):
        incremental = make_oracle(89)
        reference = make_oracle(89)
        trace = draw_trace(89, incremental, "mixed")
        apply_trace(incremental, trace)
        apply_trace(reference, trace)

        slices = list(incremental.flush_steps(slice_ssads=4))
        reference.force_rebuild()

        assert len(slices) > 1
        assert all(not step["done"] for step in slices[:-1])
        final = slices[-1]
        assert final["done"] is True
        assert set(final) >= STAT_KEYS | {"slice", "done"}
        assert_sections_identical(incremental.oracle, reference.oracle)

    def test_queries_answer_between_slices(self):
        oracle = make_oracle(97)
        inserted = oracle.insert(40.0, 60.0)
        expected = oracle.query(inserted, int(oracle.live_ids()[0]))
        steps = oracle.flush_steps(slice_ssads=2)
        for _ in range(3):
            step = next(steps)
            assert step["done"] is False
            # Readers keep getting pre-flush (overlay) answers.
            assert oracle.query(
                inserted, int(oracle.live_ids()[0])) == expected
            assert oracle.has_pending_updates
        for step in steps:
            pass
        assert step["done"] is True
        assert not oracle.has_pending_updates

    def test_abandoned_flush_leaves_oracle_intact(self):
        oracle = make_oracle(101)
        oracle.insert(25.0, 75.0)
        rebuilds = oracle.rebuild_count
        steps = oracle.flush_steps(slice_ssads=1)
        next(steps)
        steps.close()  # abort mid-build
        assert oracle.rebuild_count == rebuilds
        assert oracle.has_pending_updates
        # A later full-strength flush still lands.
        oracle.flush()
        assert not oracle.has_pending_updates
        assert oracle.rebuild_count == rebuilds + 1

    def test_mid_flight_mutation_is_detected(self):
        oracle = make_oracle(103)
        oracle.insert(30.0, 30.0)
        steps = oracle.flush_steps(slice_ssads=1)
        next(steps)
        oracle.insert(70.0, 70.0)  # changes the active set mid-flush
        with pytest.raises(RuntimeError, match="changed while"):
            for _ in steps:
                pass

    def test_invalid_slice_budget(self):
        oracle = make_oracle(107)
        with pytest.raises(ValueError):
            next(oracle.flush_steps(slice_ssads=0))
