"""Golden tests: vectorized proximity queries == scalar references.

The public kNN / range / RNN functions dispatch to a batched path when
the oracle supports ``query_batch``; the ``*_scalar`` functions remain
the executable specification.  This suite pins exact (set *and* order
*and* tie-break) agreement between both paths on real oracles, plus
the explicit unreachable-POI semantics and the RNN self/edge cases on
synthetic distance matrices.
"""

import math

import numpy as np
import pytest

from repro.baselines import FullAPSPBaseline
from repro.core import SEOracle
from repro.geodesic import GeodesicEngine
from repro.queries import (
    k_nearest_neighbors,
    k_nearest_neighbors_scalar,
    nearest_neighbor,
    range_query,
    range_query_scalar,
    reverse_nearest_neighbors,
    reverse_nearest_neighbors_scalar,
)
from repro.terrain import make_terrain, sample_uniform


class MatrixOracle:
    """Batched oracle over an explicit distance matrix (test double)."""

    def __init__(self, matrix):
        self.matrix = np.asarray(matrix, dtype=np.float64)

    def query(self, source: int, target: int) -> float:
        return float(self.matrix[source, target])

    def query_batch(self, sources, targets) -> np.ndarray:
        return self.matrix[np.asarray(sources, dtype=np.intp),
                           np.asarray(targets, dtype=np.intp)]


class ScalarOnlyOracle:
    """The same matrix without a batch path (exercises the fallback)."""

    def __init__(self, matrix):
        self.matrix = np.asarray(matrix, dtype=np.float64)

    def query(self, source: int, target: int) -> float:
        return float(self.matrix[source, target])


@pytest.fixture(scope="module")
def setup():
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=61)
    pois = sample_uniform(mesh, 14, seed=62)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    exact = FullAPSPBaseline(engine).build()
    oracle = SEOracle(engine, epsilon=0.1, seed=3).build()
    oracle.compiled()
    return len(pois), exact, oracle


class TestGoldenAgainstScalar:
    """Vectorized path == scalar reference on real oracles."""

    def test_knn_golden(self, setup):
        n, exact, oracle = setup
        for backend in (exact, oracle):
            for source in range(n):
                for k in (0, 1, 3, n - 1, n + 5):
                    assert k_nearest_neighbors(backend, source, k, n) \
                        == k_nearest_neighbors_scalar(backend, source,
                                                      k, n)

    def test_range_golden(self, setup):
        n, exact, oracle = setup
        radii = [0.0, exact.query(0, 5), exact.query(0, 5) * 0.999,
                 1e12]
        for backend in (exact, oracle):
            for source in range(n):
                for radius in radii:
                    assert range_query(backend, source, radius, n) \
                        == range_query_scalar(backend, source, radius, n)

    def test_rnn_golden(self, setup):
        n, exact, oracle = setup
        for backend in (exact, oracle):
            for source in range(n):
                assert reverse_nearest_neighbors(backend, source, n) \
                    == reverse_nearest_neighbors_scalar(backend, source, n)

    def test_rnn_golden_with_restricted_scope(self, setup):
        """num_pois below the oracle's n scopes the query: POIs outside
        the prefix must not act as disqualifying third POIs."""
        n, exact, oracle = setup
        scope = n - 6
        for backend in (exact, oracle):
            for source in range(scope):
                assert reverse_nearest_neighbors(backend, source, scope) \
                    == reverse_nearest_neighbors_scalar(backend, source,
                                                        scope)

    def test_knn_and_range_with_restricted_scope(self, setup):
        n, exact, oracle = setup
        scope = n - 6
        radius = exact.query(0, 5)
        for backend in (exact, oracle):
            for source in range(scope):
                assert k_nearest_neighbors(backend, source, 3, scope) \
                    == k_nearest_neighbors_scalar(backend, source, 3,
                                                  scope)
                assert range_query(backend, source, radius, scope) \
                    == range_query_scalar(backend, source, radius, scope)

    def test_scalar_fallback_matches_batched(self, setup):
        """A no-batch oracle over the same matrix returns the same."""
        n, exact, _ = setup
        batched = MatrixOracle(exact.matrix())
        plain = ScalarOnlyOracle(exact.matrix())
        for source in range(0, n, 3):
            assert k_nearest_neighbors(plain, source, 4, n) \
                == k_nearest_neighbors(batched, source, 4, n)
            assert reverse_nearest_neighbors(plain, source, n) \
                == reverse_nearest_neighbors(batched, source, n)

    def test_range_boundary_is_inclusive(self, setup):
        n, exact, _ = setup
        radius = exact.query(0, 5)
        result = range_query(exact, 0, radius, n)
        assert 5 in {poi for poi, _ in result}


class TestTieBreaking:
    """argpartition's arbitrary boundary must not leak into results."""

    @pytest.fixture()
    def tied(self):
        # d(0, .) = [-, 2, 1, 2, 2, 3]: three-way tie at distance 2
        # straddles every k in {2, 3}.
        matrix = np.full((6, 6), 9.0)
        np.fill_diagonal(matrix, 0.0)
        matrix[0, 1:] = [2.0, 1.0, 2.0, 2.0, 3.0]
        return MatrixOracle(matrix)

    def test_knn_tie_break_by_poi_index(self, tied):
        for k in range(7):
            got = k_nearest_neighbors(tied, 0, k, 6)
            want = k_nearest_neighbors_scalar(tied, 0, k, 6)
            assert got == want
        assert k_nearest_neighbors(tied, 0, 2, 6) == [(2, 1.0), (1, 2.0)]
        assert k_nearest_neighbors(tied, 0, 3, 6) \
            == [(2, 1.0), (1, 2.0), (3, 2.0)]

    def test_range_tie_order(self, tied):
        assert range_query(tied, 0, 2.0, 6) \
            == [(2, 1.0), (1, 2.0), (3, 2.0), (4, 2.0)]


class TestUnreachableSemantics:
    """Non-finite distances: excluded from kNN/range, inert in RNN."""

    @pytest.fixture()
    def split_world(self):
        # POIs {0,1,2} and {3,4} live on disconnected components;
        # 4 additionally reports nan towards 2 (defective backend).
        matrix = np.array([
            [0.0, 1.0, 4.0, np.inf, np.inf],
            [1.0, 0.0, 2.0, np.inf, np.inf],
            [4.0, 2.0, 0.0, np.inf, np.inf],
            [np.inf, np.inf, np.inf, 0.0, 5.0],
            [np.inf, np.inf, np.nan, 5.0, 0.0],
        ])
        return MatrixOracle(matrix)

    def test_knn_excludes_unreachable(self, split_world):
        assert k_nearest_neighbors(split_world, 0, 10, 5) \
            == [(1, 1.0), (2, 4.0)]
        assert k_nearest_neighbors(split_world, 4, 10, 5) == [(3, 5.0)]

    def test_knn_matches_scalar_reference(self, split_world):
        plain = ScalarOnlyOracle(split_world.matrix)
        for source in range(5):
            for k in (1, 3, 5):
                assert k_nearest_neighbors(split_world, source, k, 5) \
                    == k_nearest_neighbors_scalar(plain, source, k, 5)

    def test_nearest_neighbor_raises_when_all_unreachable(self):
        matrix = np.full((3, 3), np.inf)
        np.fill_diagonal(matrix, 0.0)
        oracle = MatrixOracle(matrix)
        with pytest.raises(ValueError):
            nearest_neighbor(oracle, 0, 3)

    def test_range_excludes_unreachable(self, split_world):
        assert range_query(split_world, 0, 1e12, 5) \
            == [(1, 1.0), (2, 4.0)]
        assert range_query(split_world, 4, math.inf, 5) == [(3, 5.0)]

    def test_rnn_excludes_unreachable_candidates(self, split_world):
        # 3 and 4 cannot reach 0: never in RNN(0).  1's NN is 0.
        assert reverse_nearest_neighbors(split_world, 0, 5) == [1]
        # Unreachable "others" never disqualify: RNN(3) keeps 4 even
        # though 4's distances to 0..2 are inf/nan.
        assert reverse_nearest_neighbors(split_world, 3, 5) == [4]

    def test_rnn_matches_scalar_reference(self, split_world):
        plain = ScalarOnlyOracle(split_world.matrix)
        for source in range(5):
            assert reverse_nearest_neighbors(split_world, source, 5) \
                == reverse_nearest_neighbors_scalar(plain, source, 5)


class TestRNNEdgeCases:
    def test_two_poi_world_is_mutual(self):
        """With one candidate and no third POI, RNN always holds."""
        matrix = np.array([[0.0, 7.0], [7.0, 0.0]])
        oracle = MatrixOracle(matrix)
        assert reverse_nearest_neighbors(oracle, 0, 2) == [1]
        assert reverse_nearest_neighbors(oracle, 1, 2) == [0]

    def test_candidate_self_distance_is_ignored(self):
        """A POI is its own nearest candidate (d=0 on the diagonal) —
        the zero must not disqualify it from every RNN set."""
        matrix = np.array([
            [0.0, 2.0, 9.0],
            [2.0, 0.0, 8.0],
            [9.0, 8.0, 0.0],
        ])
        oracle = MatrixOracle(matrix)
        # 1's nearest other POI is 0 (2 < 8): 1 in RNN(0) despite
        # d(1, 1) == 0 being the row minimum; 2 is out (8 < 9).
        assert reverse_nearest_neighbors(oracle, 0, 3) == [1]
        assert reverse_nearest_neighbors_scalar(oracle, 0, 3) == [1]

    def test_equidistant_other_keeps_candidate(self):
        """Strict comparison: a tie with a third POI does not disqualify."""
        matrix = np.array([
            [0.0, 3.0, 3.0],
            [3.0, 0.0, 3.0],
            [3.0, 3.0, 0.0],
        ])
        oracle = MatrixOracle(matrix)
        assert reverse_nearest_neighbors(oracle, 0, 3) == [1, 2]
        assert reverse_nearest_neighbors_scalar(oracle, 0, 3) == [1, 2]


class TestScalarOracleFallbackGolden:
    """Golden coverage for the kernel-backed oracle families.

    DynamicSEOracle and KAlgo now satisfy the ``DistanceIndex``
    protocol, so the public proximity functions route them through the
    batched path; the results must still match the ``*_scalar``
    executable spec exactly — including a dynamic oracle whose overlay
    (freshly inserted POIs) answers via delta-row SSADs rather than
    the SE pair set.
    """

    @pytest.fixture(scope="class")
    def dynamic_oracle(self):
        from repro.core import DynamicSEOracle
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=15.0, seed=63)
        pois = sample_uniform(mesh, 10, seed=64)
        oracle = DynamicSEOracle(mesh, pois, epsilon=0.25,
                                 rebuild_factor=2.0, seed=5).build()
        # Two overlay POIs: proximity scans now mix base pairs (SE
        # lookups) with overlay pairs (exact SSAD answers).
        low, high = mesh.bounding_box()
        span_x = float(high[0]) - float(low[0])
        span_y = float(high[1]) - float(low[1])
        for fx, fy in ((0.3, 0.6), (0.7, 0.2)):
            oracle.insert(float(low[0]) + fx * span_x,
                          float(low[1]) + fy * span_y)
        assert oracle.overlay_size == 2
        return oracle

    @pytest.fixture(scope="class")
    def kalgo_oracle(self):
        from repro.baselines import KAlgo
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=15.0, seed=65)
        pois = sample_uniform(mesh, 12, seed=66)
        return KAlgo(mesh, pois, epsilon=0.5, points_per_edge=1).build()

    def test_dynamic_oracle_serves_the_protocol(self, dynamic_oracle):
        """The PR-5 refactor: the dynamic oracle answers batches too,
        bit-identically to its scalar path (overlay included)."""
        from repro.core import DistanceIndex
        assert isinstance(dynamic_oracle, DistanceIndex)
        assert dynamic_oracle.supports_updates
        ids = dynamic_oracle.live_ids()
        sources = np.repeat(ids, ids.size)
        targets = np.tile(ids, ids.size)
        batched = dynamic_oracle.query_batch(sources, targets)
        for index in range(sources.size):
            assert batched[index] == dynamic_oracle.query(
                int(sources[index]), int(targets[index]))

    def test_dynamic_knn_golden(self, dynamic_oracle):
        n = dynamic_oracle.num_active
        for source in range(n):
            for k in (1, 3, n + 2):
                assert k_nearest_neighbors(dynamic_oracle, source, k, n) \
                    == k_nearest_neighbors_scalar(dynamic_oracle,
                                                  source, k, n)

    def test_dynamic_range_golden(self, dynamic_oracle):
        n = dynamic_oracle.num_active
        radius = dynamic_oracle.query(0, 1)
        for source in range(n):
            assert range_query(dynamic_oracle, source, radius, n) \
                == range_query_scalar(dynamic_oracle, source, radius, n)

    def test_dynamic_rnn_golden(self, dynamic_oracle):
        n = dynamic_oracle.num_active
        for source in range(n):
            assert reverse_nearest_neighbors(dynamic_oracle, source, n) \
                == reverse_nearest_neighbors_scalar(dynamic_oracle,
                                                    source, n)

    def test_dynamic_knn_includes_overlay_pois(self, dynamic_oracle):
        """An inserted POI can appear as a neighbour of a base POI."""
        n = dynamic_oracle.num_active
        overlay_ids = {10, 11}  # external ids of the two inserts
        seen = set()
        for source in range(10):
            seen |= {poi for poi, _ in
                     k_nearest_neighbors(dynamic_oracle, source,
                                         n - 1, n)}
        assert overlay_ids <= seen

    def test_kalgo_knn_golden(self, kalgo_oracle):
        n = kalgo_oracle.engine.num_pois
        for source in range(n):
            for k in (1, 4, n + 1):
                assert k_nearest_neighbors(kalgo_oracle, source, k, n) \
                    == k_nearest_neighbors_scalar(kalgo_oracle,
                                                  source, k, n)

    def test_kalgo_range_golden(self, kalgo_oracle):
        n = kalgo_oracle.engine.num_pois
        radius = kalgo_oracle.query(0, 1) * 1.5
        for source in range(n):
            assert range_query(kalgo_oracle, source, radius, n) \
                == range_query_scalar(kalgo_oracle, source, radius, n)

    def test_kalgo_rnn_golden(self, kalgo_oracle):
        n = kalgo_oracle.engine.num_pois
        for source in range(n):
            assert reverse_nearest_neighbors(kalgo_oracle, source, n) \
                == reverse_nearest_neighbors_scalar(kalgo_oracle,
                                                    source, n)

    def test_kalgo_matches_exact_backend(self, kalgo_oracle):
        """K-Algo's searches are exact on its metric graph, so its
        proximity results equal a full-APSP backend over the same
        graph — cross-validating the scalar route end to end."""
        engine = kalgo_oracle.engine
        n = engine.num_pois
        exact = FullAPSPBaseline(engine).build()
        for source in range(n):
            assert k_nearest_neighbors(kalgo_oracle, source, 3, n) \
                == k_nearest_neighbors(exact, source, 3, n)
            assert reverse_nearest_neighbors(kalgo_oracle, source, n) \
                == reverse_nearest_neighbors(exact, source, n)
