"""Tests for the partition tree: Lemma 1's three properties and Lemma 2."""

import math

import pytest

from repro.core import build_partition_tree, compress_tree
from repro.geodesic import GeodesicEngine
from repro.terrain import sample_uniform


@pytest.fixture(scope="module", params=["random", "greedy"])
def tree_and_engine(request, medium_engine):
    tree = build_partition_tree(medium_engine, strategy=request.param,
                                seed=5)
    return tree, medium_engine


def _center_distances(engine, center, radius=None):
    return engine.distances_from_poi(center, radius=radius)


class TestStructure:
    def test_basic_shape(self, tree_and_engine):
        tree, engine = tree_and_engine
        tree.check_structure()
        assert tree.root.layer == 0
        assert tree.root.radius == tree.root_radius

    def test_leaf_layer_has_n_nodes(self, tree_and_engine):
        tree, engine = tree_and_engine
        assert len(tree.layers[-1]) == engine.num_pois
        leaf_centers = {tree.node(i).center for i in tree.layers[-1]}
        assert leaf_centers == set(range(engine.num_pois))

    def test_layer_radii_halve(self, tree_and_engine):
        tree, _ = tree_and_engine
        for layer_number in range(tree.height + 1):
            expected = tree.root_radius / (1 << layer_number)
            for node_id in tree.layers[layer_number]:
                assert tree.node(node_id).radius == pytest.approx(expected)

    def test_every_node_has_child_chain(self, tree_and_engine):
        """Each node's centre re-appears as a child centre (chain)."""
        tree, _ = tree_and_engine
        for node in tree.nodes:
            if node.layer == tree.height:
                continue
            child_centers = {tree.node(c).center for c in node.children}
            assert node.center in child_centers

    def test_first_layer_of_center(self, tree_and_engine):
        tree, _ = tree_and_engine
        for node in tree.nodes:
            assert tree.first_layer_of_center[node.center] <= node.layer

    def test_ancestor_at_layer(self, tree_and_engine):
        tree, _ = tree_and_engine
        leaf = tree.layers[-1][0]
        for layer in range(tree.height, -1, -1):
            ancestor = tree.ancestor_at_layer(leaf, layer)
            assert tree.node(ancestor).layer == layer


class TestSeparationProperty:
    def test_same_layer_centers_are_separated(self, tree_and_engine):
        """Separation: centres in Layer i are >= r0/2^i apart."""
        tree, engine = tree_and_engine
        for layer_number in (1, 2, min(3, tree.height)):
            radius = tree.layer_radius(layer_number)
            centers = [tree.node(i).center
                       for i in tree.layers[layer_number]]
            for center in centers[:8]:  # spot-check a prefix
                reached = _center_distances(engine, center,
                                            radius=radius * 0.999)
                others = [c for c in centers
                          if c != center and c in reached
                          and reached[c] < radius * 0.999]
                assert others == [], (
                    f"layer {layer_number} centres too close: "
                    f"{center} vs {others}"
                )


class TestCoveringProperty:
    def test_every_poi_covered_per_layer(self, tree_and_engine):
        tree, engine = tree_and_engine
        n = engine.num_pois
        for layer_number in range(tree.height + 1):
            radius = tree.layer_radius(layer_number)
            covered = set()
            for node_id in tree.layers[layer_number]:
                center = tree.node(node_id).center
                reached = _center_distances(engine, center,
                                            radius=radius * (1 + 1e-6))
                covered.update(p for p, d in reached.items()
                               if d <= radius * (1 + 1e-6))
            assert covered == set(range(n)), (
                f"layer {layer_number} fails covering"
            )


class TestDistanceProperty:
    def test_descendant_centers_within_double_radius(self, tree_and_engine):
        tree, engine = tree_and_engine
        # For a few internal nodes, check all descendants.
        internal = [n for n in tree.nodes if n.children][:6]
        for node in internal:
            reached = _center_distances(engine, node.center,
                                        radius=2.0 * node.radius * (1 + 1e-6))
            stack = list(node.children)
            while stack:
                child = tree.node(stack.pop())
                assert reached.get(child.center, math.inf) \
                    <= 2.0 * node.radius * (1 + 1e-6)
                stack.extend(child.children)


class TestHeightBound:
    def test_lemma2_height_bound(self, tree_and_engine):
        """h <= log2(d_max / d_min) + 1 (Lemma 2)."""
        tree, engine = tree_and_engine
        n = engine.num_pois
        d_max = 0.0
        d_min = math.inf
        for i in range(n):
            reached = engine.distances_from_poi(i)
            for j, d in reached.items():
                if j != i:
                    d_max = max(d_max, d)
                    d_min = min(d_min, d)
        bound = math.log2(d_max / d_min) + 1
        assert tree.height <= bound + 1e-9

    def test_height_is_small(self, tree_and_engine):
        tree, _ = tree_and_engine
        assert tree.height < 30  # the paper's empirical claim


class TestEdgeCases:
    def test_single_poi(self, small_terrain):
        pois = sample_uniform(small_terrain, 1, seed=1)
        engine = GeodesicEngine(small_terrain, pois, points_per_edge=0)
        tree = build_partition_tree(engine)
        assert tree.height == 0
        assert tree.num_nodes == 1
        assert tree.root_radius == 0.0

    def test_zero_pois_rejected(self, small_terrain):
        from repro.terrain import POISet
        engine = GeodesicEngine(small_terrain, POISet([]), points_per_edge=0)
        with pytest.raises(ValueError):
            build_partition_tree(engine)

    def test_two_pois(self, small_terrain):
        pois = sample_uniform(small_terrain, 2, seed=3)
        engine = GeodesicEngine(small_terrain, pois, points_per_edge=0)
        tree = build_partition_tree(engine)
        assert len(tree.layers[-1]) == 2
        tree.check_structure()

    def test_deterministic_given_seed(self, medium_engine):
        t1 = build_partition_tree(medium_engine, seed=9)
        t2 = build_partition_tree(medium_engine, seed=9)
        assert [(n.center, n.layer) for n in t1.nodes] \
            == [(n.center, n.layer) for n in t2.nodes]

    def test_strategies_build_valid_trees(self, medium_engine):
        for strategy in ("random", "greedy"):
            tree = build_partition_tree(medium_engine, strategy=strategy,
                                        seed=1)
            tree.check_structure()


class TestCompression:
    def test_compressed_shape(self, tree_and_engine):
        tree, engine = tree_and_engine
        compressed = compress_tree(tree)
        compressed.check_structure(engine.num_pois)

    def test_linear_size(self, tree_and_engine):
        """Lemma 9: at most 2n - 1 nodes."""
        tree, engine = tree_and_engine
        compressed = compress_tree(tree)
        assert compressed.num_nodes <= 2 * engine.num_pois - 1
        assert compressed.num_nodes < tree.num_nodes

    def test_leaf_radius_zero(self, tree_and_engine):
        tree, _ = tree_and_engine
        compressed = compress_tree(tree)
        for node in compressed.nodes:
            if node.is_leaf:
                assert node.radius == 0.0
                assert node.enlarged_radius == 0.0
            else:
                assert node.radius > 0.0

    def test_layers_preserved_from_original(self, tree_and_engine):
        """Compressed nodes keep their original layer number."""
        tree, _ = tree_and_engine
        compressed = compress_tree(tree)
        for node in compressed.nodes:
            original = tree.node(node.origin_id)
            assert original.layer == node.layer
            assert original.center == node.center

    def test_leaf_lookup(self, tree_and_engine):
        tree, engine = tree_and_engine
        compressed = compress_tree(tree)
        for poi in range(engine.num_pois):
            leaf = compressed.node(compressed.leaf_of_poi[poi])
            assert leaf.center == poi
            assert leaf.is_leaf

    def test_representative_sets_partition_pois(self, tree_and_engine):
        tree, engine = tree_and_engine
        compressed = compress_tree(tree)
        root_rs = compressed.descendant_leaf_centers(compressed.root_id)
        assert sorted(root_rs) == list(range(engine.num_pois))
        for child in compressed.root.children:
            child_rs = compressed.descendant_leaf_centers(child)
            assert set(child_rs) <= set(root_rs)

    def test_layer_array(self, tree_and_engine):
        tree, engine = tree_and_engine
        compressed = compress_tree(tree)
        array = compressed.layer_array(0)
        assert array[compressed.root.layer] == compressed.root_id
        leaf_id = compressed.leaf_of_poi[0]
        assert array[compressed.node(leaf_id).layer] == leaf_id
        # Entries must lie on the leaf-to-root path.
        path = set(compressed.path_to_root(leaf_id))
        assert all(entry in path for entry in array if entry is not None)

    def test_single_poi_compression(self, small_terrain):
        pois = sample_uniform(small_terrain, 1, seed=1)
        engine = GeodesicEngine(small_terrain, pois, points_per_edge=0)
        compressed = compress_tree(build_partition_tree(engine))
        assert compressed.num_nodes == 1
        assert compressed.root.is_leaf
