"""Unit and property tests for the B+-tree substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import BPlusTree


class TestConstruction:
    def test_order_below_three_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert not tree
        assert list(tree) == []
        assert 5 not in tree

    def test_min_max_on_empty_raise(self):
        tree = BPlusTree()
        with pytest.raises(KeyError):
            tree.min_key()
        with pytest.raises(KeyError):
            tree.max_key()


class TestInsertSearch:
    def test_single_insert(self):
        tree = BPlusTree(order=4)
        tree.insert(7, "seven")
        assert 7 in tree
        assert tree.get(7) == "seven"
        assert len(tree) == 1

    def test_get_default(self):
        tree = BPlusTree(order=4)
        assert tree.get(1, "fallback") == "fallback"

    def test_duplicate_insert_raises(self):
        tree = BPlusTree(order=4)
        tree.insert(1)
        with pytest.raises(KeyError):
            tree.insert(1)

    def test_sorted_iteration_after_random_inserts(self):
        tree = BPlusTree(order=4)
        keys = random.Random(1).sample(range(1000), 200)
        for key in keys:
            tree.insert(key, key * 2)
        assert list(tree) == sorted(keys)
        tree.check_invariants()

    def test_values_follow_keys(self):
        tree = BPlusTree(order=5)
        for key in range(50):
            tree.insert(key, key * key)
        assert [value for _, value in tree.items()] == [k * k for k in range(50)]

    def test_min_max_key(self):
        tree = BPlusTree(order=4)
        for key in [42, 7, 99, 3]:
            tree.insert(key)
        assert tree.min_key() == 3
        assert tree.max_key() == 99

    def test_sequential_ascending_inserts(self):
        tree = BPlusTree(order=3)
        for key in range(100):
            tree.insert(key)
        tree.check_invariants()
        assert list(tree) == list(range(100))

    def test_sequential_descending_inserts(self):
        tree = BPlusTree(order=3)
        for key in reversed(range(100)):
            tree.insert(key)
        tree.check_invariants()
        assert list(tree) == list(range(100))

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=16)
        for key in range(2000):
            tree.insert(key)
        assert tree.height() <= 5

    def test_float_keys(self):
        tree = BPlusTree(order=4)
        for key in [0.5, -1.25, 3.75, 2.0]:
            tree.insert(key)
        assert list(tree) == [-1.25, 0.5, 2.0, 3.75]


class TestRangeSearch:
    def test_range_inclusive_bounds(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 10):
            tree.insert(key, str(key))
        assert [k for k, _ in tree.range_search(20, 50)] == [20, 30, 40, 50]

    def test_range_empty_interval(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key)
        assert tree.range_search(100, 200) == []

    def test_range_spanning_leaves(self):
        tree = BPlusTree(order=3)
        for key in range(60):
            tree.insert(key, -key)
        result = tree.range_search(10, 49)
        assert [k for k, _ in result] == list(range(10, 50))
        assert [v for _, v in result] == [-k for k in range(10, 50)]


class TestDelete:
    def test_delete_returns_value(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "one")
        assert tree.delete(1) == "one"
        assert 1 not in tree
        assert len(tree) == 0

    def test_delete_missing_raises(self):
        tree = BPlusTree(order=4)
        tree.insert(1)
        with pytest.raises(KeyError):
            tree.delete(2)

    def test_delete_all_in_insert_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(100))
        for key in keys:
            tree.insert(key)
        for key in keys:
            tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_all_reverse_order(self):
        tree = BPlusTree(order=3)
        keys = list(range(80))
        for key in keys:
            tree.insert(key)
        for key in reversed(keys):
            tree.delete(key)
        assert list(tree) == []

    def test_interleaved_insert_delete(self):
        tree = BPlusTree(order=4)
        rng = random.Random(7)
        present = set()
        for _ in range(2000):
            key = rng.randrange(300)
            if key in present:
                tree.delete(key)
                present.discard(key)
            else:
                tree.insert(key)
                present.add(key)
        assert list(tree) == sorted(present)
        tree.check_invariants()

    def test_delete_shrinks_root(self):
        tree = BPlusTree(order=3)
        for key in range(30):
            tree.insert(key)
        for key in range(29):
            tree.delete(key)
        assert tree.height() == 1
        assert list(tree) == [29]


@settings(max_examples=120, deadline=None)
@given(st.lists(st.integers(-10_000, 10_000), unique=True, max_size=200),
       st.integers(3, 24))
def test_insert_iteration_matches_sorted(keys, order):
    tree = BPlusTree(order=order)
    for key in keys:
        tree.insert(key, key)
    tree.check_invariants()
    assert list(tree) == sorted(keys)
    for key in keys:
        assert tree.get(key) == key


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(-500, 500), unique=True, min_size=1, max_size=120),
       st.data(),
       st.integers(3, 16))
def test_delete_subset_matches_reference(keys, data, order):
    tree = BPlusTree(order=order)
    for key in keys:
        tree.insert(key)
    to_delete = data.draw(st.lists(st.sampled_from(keys), unique=True))
    for key in to_delete:
        tree.delete(key)
        tree.check_invariants()
    assert list(tree) == sorted(set(keys) - set(to_delete))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1000), unique=True, min_size=1, max_size=150),
       st.integers(0, 1000), st.integers(0, 1000))
def test_range_search_matches_filter(keys, a, b):
    low, high = min(a, b), max(a, b)
    tree = BPlusTree(order=6)
    for key in keys:
        tree.insert(key, key)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.range_search(low, high)] == expected
