"""Tests for oracle persistence (save/load round-trips)."""

import json
import pathlib

import pytest

from repro.core import SEOracle, load_oracle, save_oracle, \
    workload_fingerprint
from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, sample_uniform


@pytest.fixture(scope="module")
def workload():
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=81)
    pois = sample_uniform(mesh, 14, seed=82)
    return GeodesicEngine(mesh, pois, points_per_edge=1)


@pytest.fixture(scope="module")
def built(workload):
    return SEOracle(workload, epsilon=0.2, seed=4).build()


class TestSave:
    def test_unbuilt_oracle_rejected(self, workload, tmp_path):
        fresh = SEOracle(workload, epsilon=0.2)
        with pytest.raises(ValueError):
            save_oracle(fresh, tmp_path / "o.json")

    def test_file_is_valid_json(self, built, tmp_path):
        path = tmp_path / "oracle.json"
        save_oracle(built, path)
        document = json.loads(path.read_text())
        assert document["format"] == "repro-se-oracle"
        assert document["epsilon"] == 0.2
        assert len(document["pairs"]) == built.num_pairs


class TestLoad:
    def test_roundtrip_answers_identically(self, built, workload, tmp_path):
        path = tmp_path / "oracle.json"
        save_oracle(built, path)
        loaded = load_oracle(path, workload)
        n = workload.num_pois
        for source in range(n):
            for target in range(n):
                assert loaded.query(source, target) \
                    == built.query(source, target)

    def test_roundtrip_preserves_structure(self, built, workload, tmp_path):
        path = tmp_path / "oracle.json"
        save_oracle(built, path)
        loaded = load_oracle(path, workload)
        assert loaded.height == built.height
        assert loaded.num_pairs == built.num_pairs
        assert loaded.epsilon == built.epsilon
        assert loaded.size_bytes() > 0
        loaded.tree.check_structure(workload.num_pois)

    def test_wrong_workload_rejected(self, built, tmp_path):
        path = tmp_path / "oracle.json"
        save_oracle(built, path)
        other_mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                                  relief=15.0, seed=999)
        other = GeodesicEngine(other_mesh,
                               sample_uniform(other_mesh, 14, seed=1),
                               points_per_edge=1)
        with pytest.raises(ValueError):
            load_oracle(path, other)

    def test_non_strict_skips_fingerprint(self, built, workload, tmp_path):
        path = tmp_path / "oracle.json"
        save_oracle(built, path)
        document = json.loads(path.read_text())
        document["fingerprint"] = "bogus"
        path.write_text(json.dumps(document))
        loaded = load_oracle(path, workload, strict=False)
        assert loaded.query(0, 1) == built.query(0, 1)

    def test_wrong_format_rejected(self, workload, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_oracle(path, workload)

    def test_wrong_version_rejected(self, built, workload, tmp_path):
        path = tmp_path / "oracle.json"
        save_oracle(built, path)
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_oracle(path, workload)


class TestParallelBuildRoundTrip:
    """A --jobs 2 build serializes to exactly what a serial build does."""

    def test_parallel_build_roundtrip_bit_identical(self, built, workload,
                                                    tmp_path):
        parallel = SEOracle(workload, epsilon=0.2, seed=4, jobs=2).build()
        path = tmp_path / "parallel.json"
        save_oracle(parallel, path)
        loaded = load_oracle(path, workload)

        assert set(loaded.pair_set.pairs) == set(built.pair_set.pairs)
        for key, distance in built.pair_set.pairs.items():
            # Exact equality: the parallel fan-out and a JSON round
            # trip must both preserve every float bit.
            assert loaded.pair_set.pairs[key] == distance
        n = workload.num_pois
        for source in range(n):
            for target in range(n):
                assert loaded.query(source, target) \
                    == built.query(source, target)

    def test_build_metadata_recorded(self, built, workload, tmp_path):
        from repro.core.serialize import JSON_FORMAT_VERSION
        parallel = SEOracle(workload, epsilon=0.2, seed=4, jobs=2).build()
        path = tmp_path / "parallel.json"
        save_oracle(parallel, path)
        document = json.loads(path.read_text())
        assert document["version"] == JSON_FORMAT_VERSION == 3
        assert document["build"] == {"executor": "multiprocess", "jobs": 2}
        loaded = load_oracle(path, workload)
        assert loaded.stats.executor == "multiprocess"
        assert loaded.stats.jobs == 2

    def test_version1_documents_still_load(self, built, workload, tmp_path):
        path = tmp_path / "v1.json"
        save_oracle(built, path)
        document = json.loads(path.read_text())
        document["version"] = 1
        del document["build"]
        path.write_text(json.dumps(document))
        loaded = load_oracle(path, workload)
        assert loaded.stats.executor == "serial"
        assert loaded.stats.jobs == 1
        assert loaded.query(0, 1) == built.query(0, 1)


class TestFormatV3Compiled:
    """Format v3: the optional compiled-table (serving) section."""

    def test_uncompiled_save_omits_section(self, built, workload, tmp_path):
        path = tmp_path / "plain.json"
        fresh = SEOracle(workload, epsilon=0.2, seed=4).build()
        save_oracle(fresh, path)
        document = json.loads(path.read_text())
        assert document["version"] == 3
        assert "compiled" not in document
        loaded = load_oracle(path, workload)
        assert not loaded.is_compiled  # compiles on demand below
        assert loaded.query_batch([0], [1])[0] == loaded.query(0, 1)
        assert loaded.is_compiled

    def test_compiled_save_embeds_section(self, built, workload, tmp_path):
        path = tmp_path / "compiled.json"
        fresh = SEOracle(workload, epsilon=0.2, seed=4).build()
        fresh.compiled()
        save_oracle(fresh, path)  # compiled=None -> include (is_compiled)
        document = json.loads(path.read_text())
        assert "compiled" in document
        tables = fresh.compiled()
        assert document["compiled"]["height"] == tables.height
        assert document["compiled"]["chains"] == tables.chains.tolist()

    def test_explicit_compiled_flag(self, built, workload, tmp_path):
        with_path = tmp_path / "with.json"
        without_path = tmp_path / "without.json"
        fresh = SEOracle(workload, epsilon=0.2, seed=4).build()
        save_oracle(fresh, with_path, compiled=True)
        assert fresh.is_compiled  # compiled=True forced compilation
        save_oracle(fresh, without_path, compiled=False)
        assert "compiled" in json.loads(with_path.read_text())
        assert "compiled" not in json.loads(without_path.read_text())

    def test_roundtrip_with_tables_answers_identically(self, built,
                                                       workload, tmp_path):
        path = tmp_path / "compiled.json"
        save_oracle(built, path, compiled=True)
        loaded = load_oracle(path, workload)
        assert loaded.is_compiled  # no recompile needed after load
        n = workload.num_pois
        import numpy as np
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        batched = loaded.query_batch(sources, targets)
        for index in range(sources.size):
            assert batched[index] == built.query(int(sources[index]),
                                                 int(targets[index]))

    def test_loaded_tables_match_recompiled(self, built, workload,
                                            tmp_path):
        path = tmp_path / "compiled.json"
        save_oracle(built, path, compiled=True)
        loaded = load_oracle(path, workload)
        from_document = loaded.compiled()
        recompiled = loaded.compiled(refresh=True)
        assert (from_document.chains == recompiled.chains).all()


class TestVersion2Fixture:
    """A checked-in v2 document (predating compiled tables) still
    loads — and compiles on demand — on the current code."""

    FIXTURE = pathlib.Path(__file__).parent / "data" / "oracle_v2.json"

    def test_fixture_is_version_2(self):
        document = json.loads(self.FIXTURE.read_text())
        assert document["version"] == 2
        assert "compiled" not in document

    def test_loads_and_compiles_on_demand(self, workload):
        # strict=False: the fixture's fingerprint was recorded on the
        # machine that generated it; terrain regeneration is seeded but
        # cross-platform float drift must not fail the compat test.
        loaded = load_oracle(self.FIXTURE, workload, strict=False)
        assert not loaded.is_compiled
        assert loaded.num_pairs == len(
            json.loads(self.FIXTURE.read_text())["pairs"])
        import numpy as np
        n = loaded.engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        batched = loaded.query_batch(sources, targets)
        assert np.isfinite(batched).all()
        for index in range(0, sources.size, 7):
            assert batched[index] == loaded.query(int(sources[index]),
                                                  int(targets[index]))

    def test_resave_upgrades_to_current_format(self, workload, tmp_path):
        from repro.core.serialize import JSON_FORMAT_VERSION
        loaded = load_oracle(self.FIXTURE, workload, strict=False)
        loaded.compiled()
        path = tmp_path / "upgraded.json"
        save_oracle(loaded, path)
        document = json.loads(path.read_text())
        assert document["version"] == JSON_FORMAT_VERSION == 3
        assert "compiled" in document


class TestVersion3Fixture:
    """The checked-in v3 document (with compiled section) still loads
    straight into the batched path on the current code."""

    FIXTURE = pathlib.Path(__file__).parent / "data" / "oracle_v3.json"

    def test_fixture_is_version_3_with_compiled_section(self):
        document = json.loads(self.FIXTURE.read_text())
        assert document["version"] == 3
        assert "compiled" in document

    def test_loads_without_recompiling(self, workload):
        loaded = load_oracle(self.FIXTURE, workload, strict=False)
        assert loaded.is_compiled  # chains came from the document
        assert loaded.query_batch([0], [1])[0] == loaded.query(0, 1)


class TestCrossVersionMatrix:
    """v1/v2/v3/v4 files of the *same* workload all load and answer a
    golden query set identically.

    v4 appears twice: the *checked-in* binary fixture (loaded byte for
    byte, guarding the on-disk layout across code changes) and a fresh
    ``pack_document`` upgrade of the v3 document (guarding the
    conversion path).
    """

    V2 = pathlib.Path(__file__).parent / "data" / "oracle_v2.json"
    V3 = pathlib.Path(__file__).parent / "data" / "oracle_v3.json"
    V4 = pathlib.Path(__file__).parent / "data" / "oracle_v4.store"

    @pytest.fixture(scope="class")
    def version_files(self, tmp_path_factory):
        """One file per format version, derived from the fixtures;
        ``"4-fresh"`` is the on-the-fly v3 -> v4 upgrade."""
        tmp = tmp_path_factory.mktemp("versions")
        document = json.loads(self.V3.read_text())
        v1 = dict(document)
        v1["version"] = 1
        v1.pop("build", None)
        v1.pop("compiled", None)
        v1_path = tmp / "oracle_v1.json"
        v1_path.write_text(json.dumps(v1))
        v4_path = tmp / "oracle_v4.store"
        from repro.core import pack_document
        pack_document(document, v4_path)
        return {1: v1_path, 2: self.V2, 3: self.V3, 4: self.V4,
                "4-fresh": v4_path}

    def test_all_versions_answer_identically(self, workload,
                                             version_files):
        from repro.experiments.harness import generate_query_pairs
        golden_pairs = generate_query_pairs(workload.num_pois, 60,
                                            seed=17)
        golden_pairs += [(poi, poi) for poi in range(workload.num_pois)]
        answers = {}
        for version, path in version_files.items():
            loaded = load_oracle(path, workload, strict=False)
            answers[version] = [loaded.query(source, target)
                                for source, target in golden_pairs]
        for version in (2, 3, 4, "4-fresh"):
            assert answers[version] == answers[1], (
                f"v{version} answers diverge from v1"
            )

    def test_all_versions_batch_identically(self, workload,
                                            version_files):
        import numpy as np
        n = workload.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        matrices = {
            version: load_oracle(path, workload,
                                 strict=False).query_batch(sources,
                                                           targets)
            for version, path in version_files.items()
        }
        for version in (2, 3, 4, "4-fresh"):
            assert (matrices[version] == matrices[1]).all()

    def test_v4_reports_upgraded_metadata(self, version_files):
        from repro.core.store import read_store_meta
        meta = read_store_meta(version_files[4])
        document = json.loads(self.V3.read_text())
        assert meta["version"] == 4
        assert meta["epsilon"] == document["epsilon"]
        assert meta["seed"] == document["seed"]
        assert meta["fingerprint"] == document["fingerprint"]
        assert meta["stats"]["pairs_stored"] == len(document["pairs"])

    def test_checked_in_v4_fixture_matches_fresh_pack_bytes(
            self, version_files):
        """Packing is deterministic (pinned zip timestamps), so the
        fixture's exact bytes reproduce from the v3 document — any
        layout drift in the writer shows up as a byte diff here."""
        fixture = self.V4.read_bytes()
        fresh = pathlib.Path(version_files["4-fresh"]).read_bytes()
        assert fixture == fresh

    def test_checked_in_v4_fixture_mmaps_byte_for_byte(self, workload):
        """The committed store opens straight off its bytes: mapped
        sections, fingerprint intact, fresh-pack answer parity."""
        from repro.core import open_oracle
        stored = open_oracle(self.V4)
        document = json.loads(self.V3.read_text())
        assert stored.fingerprint == document["fingerprint"]
        assert stored.num_pairs == len(document["pairs"])
        loaded = load_oracle(self.V3, workload, strict=False)
        n = loaded.engine.num_pois
        import numpy as np
        grid = np.arange(n, dtype=np.intp)
        assert (stored.query_batch(np.repeat(grid, n), np.tile(grid, n))
                == loaded.query_batch(np.repeat(grid, n),
                                      np.tile(grid, n))).all()


class TestFingerprint:
    def test_deterministic(self, workload):
        assert workload_fingerprint(workload) \
            == workload_fingerprint(workload)

    def test_sensitive_to_density(self, workload):
        other = GeodesicEngine(workload.mesh, workload.pois,
                               points_per_edge=2)
        assert workload_fingerprint(workload) != workload_fingerprint(other)

    def test_sensitive_to_pois(self, workload):
        other = GeodesicEngine(workload.mesh,
                               sample_uniform(workload.mesh, 14, seed=5),
                               points_per_edge=1)
        assert workload_fingerprint(workload) != workload_fingerprint(other)
