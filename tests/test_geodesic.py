"""Tests for the geodesic substrate: Steiner placement, graph, Dijkstra."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesic import (
    GeodesicEngine,
    GeodesicGraph,
    bidirectional_distance,
    dijkstra,
    place_steiner_points,
)
from repro.terrain import (
    TriangleMesh,
    make_terrain,
    pois_from_vertices,
    sample_uniform,
)


@pytest.fixture(scope="module")
def flat_square():
    """A flat 2x2-cell square of side 2 in the z=0 plane."""
    import numpy as np
    xs = np.linspace(0.0, 2.0, 3)
    vertices = []
    for x in xs:
        for y in xs:
            vertices.append([x, y, 0.0])
    vertices = np.asarray(vertices)

    def vid(i, j):
        return i * 3 + j

    faces = []
    for i in range(2):
        for j in range(2):
            a, b, c, d = vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)
            faces.append((a, b, c))
            faces.append((a, c, d))
    return TriangleMesh(vertices, np.asarray(faces))


@pytest.fixture(scope="module")
def hilly():
    return make_terrain(grid_exponent=4, extent=(100.0, 100.0),
                        relief=20.0, seed=7)


class TestSteinerPlacement:
    def test_zero_density(self, flat_square):
        placement = place_steiner_points(flat_square, 0)
        assert placement.count == 0
        assert placement.edge_points == {}

    def test_negative_density_rejected(self, flat_square):
        with pytest.raises(ValueError):
            place_steiner_points(flat_square, -1)

    def test_count(self, flat_square):
        placement = place_steiner_points(flat_square, 3)
        assert placement.count == 3 * flat_square.num_edges

    def test_points_lie_on_edges(self, flat_square):
        placement = place_steiner_points(flat_square, 2)
        for (u, v), point_ids in placement.edge_points.items():
            start = flat_square.vertices[u]
            end = flat_square.vertices[v]
            for rank, pid in enumerate(point_ids, start=1):
                expected = start + rank / 3 * (end - start)
                np.testing.assert_allclose(placement.positions[pid], expected)


class TestGeodesicGraph:
    def test_vertex_graph_edges(self, flat_square):
        graph = GeodesicGraph(flat_square, points_per_edge=0)
        assert graph.num_nodes == flat_square.num_vertices
        assert graph.num_edges == flat_square.num_edges

    def test_steiner_graph_is_bigger(self, flat_square):
        sparse = GeodesicGraph(flat_square, points_per_edge=0)
        dense = GeodesicGraph(flat_square, points_per_edge=2)
        assert dense.num_nodes > sparse.num_nodes
        assert dense.num_edges > sparse.num_edges

    def test_adjacency_is_symmetric(self, flat_square):
        graph = GeodesicGraph(flat_square, points_per_edge=1)
        neighbors, weights = graph.adjacency
        for u in range(graph.num_nodes):
            for v, w in zip(neighbors[u], weights[u]):
                index = neighbors[v].index(u)
                assert weights[v][index] == pytest.approx(w)

    def test_weights_are_euclidean(self, flat_square):
        graph = GeodesicGraph(flat_square, points_per_edge=1)
        neighbors, weights = graph.adjacency
        for u in range(graph.num_nodes):
            for v, w in zip(neighbors[u], weights[u]):
                delta = graph.position(u) - graph.position(v)
                assert w == pytest.approx(float(np.linalg.norm(delta)))

    def test_attach_site_connects_to_face(self, flat_square):
        graph = GeodesicGraph(flat_square, points_per_edge=1)
        node = graph.attach_site((0.5, 0.25, 0.0), face_id=0)
        neighbors, _ = graph.neighbors(node)
        assert set(neighbors) == set(graph.face_boundary_nodes(0))

    def test_attach_vertex_poi_reuses_node(self, flat_square):
        graph = GeodesicGraph(flat_square, points_per_edge=1)
        before = graph.num_nodes
        node = graph.attach_site(tuple(flat_square.vertices[4]), face_id=0,
                                 vertex_id=4)
        assert node == 4
        assert graph.num_nodes == before

    def test_detach_restores_graph(self, flat_square):
        graph = GeodesicGraph(flat_square, points_per_edge=1)
        nodes_before = graph.num_nodes
        edges_before = graph.num_edges
        graph.attach_site((0.5, 0.25, 0.0), face_id=0)
        graph.attach_site((0.6, 0.2, 0.0), face_id=0)
        graph.detach_last_sites(2)
        assert graph.num_nodes == nodes_before
        assert graph.num_edges == edges_before

    def test_detach_non_site_rejected(self, flat_square):
        graph = GeodesicGraph(flat_square, points_per_edge=0)
        with pytest.raises(ValueError):
            graph.detach_last_sites(1)

    def test_two_sites_same_face_connected(self, flat_square):
        graph = GeodesicGraph(flat_square, points_per_edge=0)
        a = graph.attach_site((0.5, 0.25, 0.0), face_id=0)
        b = graph.attach_site((0.6, 0.2, 0.0), face_id=0)
        neighbors, _ = graph.neighbors(b)
        assert a in neighbors

    def test_size_bytes_positive(self, flat_square):
        assert GeodesicGraph(flat_square, 1).size_bytes() > 0


class TestDijkstra:
    def _line_graph(self, weights):
        n = len(weights) + 1
        neighbors = [[] for _ in range(n)]
        edge_weights = [[] for _ in range(n)]
        for i, w in enumerate(weights):
            neighbors[i].append(i + 1)
            edge_weights[i].append(w)
            neighbors[i + 1].append(i)
            edge_weights[i + 1].append(w)
        return neighbors, edge_weights

    def test_line_distances(self):
        adjacency = self._line_graph([1.0, 2.0, 3.0])
        result = dijkstra(adjacency, 0)
        assert result.distances == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0}

    def test_radius_stopping(self):
        adjacency = self._line_graph([1.0] * 10)
        result = dijkstra(adjacency, 0, radius=3.5)
        assert set(result.distances) == {0, 1, 2, 3}
        assert result.frontier_min == pytest.approx(4.0)

    def test_targets_stopping(self):
        adjacency = self._line_graph([1.0] * 10)
        result = dijkstra(adjacency, 0, targets=[2, 4])
        assert 4 in result.distances
        assert 10 not in result.distances

    def test_single_target_early_exit(self):
        adjacency = self._line_graph([1.0] * 10)
        result = dijkstra(adjacency, 0, single_target=3)
        assert result.distances[3] == pytest.approx(3.0)
        assert result.settled_count == 4

    def test_source_in_targets(self):
        adjacency = self._line_graph([1.0])
        result = dijkstra(adjacency, 0, targets=[0])
        assert result.distances == {0: 0.0}

    def test_disconnected_targets_drain(self):
        neighbors = [[1], [0], [3], [2]]
        weights = [[1.0], [1.0], [1.0], [1.0]]
        result = dijkstra((neighbors, weights), 0, targets=[3])
        assert 3 not in result.distances
        assert math.isinf(result.frontier_min)

    def test_path_reconstruction(self):
        adjacency = self._line_graph([1.0, 1.0, 1.0])
        result = dijkstra(adjacency, 0, return_parents=True)
        assert result.path_to(3) == [0, 1, 2, 3]

    def test_path_without_parents_raises(self):
        adjacency = self._line_graph([1.0])
        result = dijkstra(adjacency, 0)
        with pytest.raises(ValueError):
            result.path_to(1)

    def test_bidirectional_matches_unidirectional(self):
        adjacency = self._line_graph([2.0, 1.0, 4.0, 1.5])
        for target in range(5):
            expected = dijkstra(adjacency, 0).distances[target]
            assert bidirectional_distance(adjacency, 0, target) \
                == pytest.approx(expected)

    def test_bidirectional_disconnected(self):
        neighbors = [[1], [0], [], []]
        weights = [[1.0], [1.0], [], []]
        assert math.isinf(bidirectional_distance((neighbors, weights), 0, 3))

    def test_bidirectional_same_node(self):
        adjacency = self._line_graph([1.0])
        assert bidirectional_distance(adjacency, 1, 1) == 0.0


class TestGeodesicAccuracy:
    def test_flat_plane_distance_close_to_euclidean(self, flat_square):
        """On a flat surface the geodesic equals the Euclidean distance."""
        pois = pois_from_vertices(flat_square, [0, 8])  # opposite corners
        engine = GeodesicEngine(flat_square, pois, points_per_edge=4)
        approx = engine.distance(0, 1)
        exact = math.sqrt(8.0)
        assert approx <= exact * 1.05
        assert approx >= exact - 1e-9

    def test_steiner_density_improves_accuracy(self, flat_square):
        pois = pois_from_vertices(flat_square, [1, 3])
        exact = float(np.linalg.norm(
            flat_square.vertices[1] - flat_square.vertices[3]))
        errors = {}
        for density in (0, 4):
            engine = GeodesicEngine(flat_square, pois, points_per_edge=density)
            errors[density] = engine.distance(0, 1) - exact
        # Graph distances always overestimate; densification tightens them.
        assert errors[0] >= errors[4] >= -1e-9
        assert errors[4] < 0.05 * exact

    def test_geodesic_at_least_euclidean(self, hilly):
        pois = sample_uniform(hilly, 10, seed=3)
        engine = GeodesicEngine(hilly, pois, points_per_edge=1)
        for i in range(0, 8, 2):
            geodesic = engine.distance(i, i + 1)
            euclidean = float(np.linalg.norm(
                pois.positions[i] - pois.positions[i + 1]))
            assert geodesic >= euclidean - 1e-9

    def test_triangle_inequality(self, hilly):
        pois = sample_uniform(hilly, 6, seed=4)
        engine = GeodesicEngine(hilly, pois, points_per_edge=1)
        d01 = engine.distance(0, 1)
        d12 = engine.distance(1, 2)
        d02 = engine.distance(0, 2)
        assert d02 <= d01 + d12 + 1e-9

    def test_symmetry(self, hilly):
        pois = sample_uniform(hilly, 4, seed=5)
        engine = GeodesicEngine(hilly, pois, points_per_edge=1)
        assert engine.distance(0, 3) == pytest.approx(engine.distance(3, 0))


class TestEngine:
    def test_distances_from_poi_cover_all(self, hilly):
        pois = sample_uniform(hilly, 12, seed=1)
        engine = GeodesicEngine(hilly, pois, points_per_edge=1)
        distances = engine.distances_from_poi(0)
        assert set(distances) == set(range(len(pois)))
        assert distances[0] == 0.0

    def test_distances_from_poi_radius(self, hilly):
        pois = sample_uniform(hilly, 12, seed=1)
        engine = GeodesicEngine(hilly, pois, points_per_edge=1)
        full = engine.distances_from_poi(0)
        radius = sorted(full.values())[5]
        limited = engine.distances_from_poi(0, radius=radius + 1e-9)
        assert all(dist <= radius + 1e-9 for dist in limited.values())
        for poi, dist in limited.items():
            assert dist == pytest.approx(full[poi])

    def test_pairwise_matches_ssad(self, hilly):
        pois = sample_uniform(hilly, 8, seed=2)
        engine = GeodesicEngine(hilly, pois, points_per_edge=1)
        full = engine.distances_from_poi(3)
        for j in (0, 5, 7):
            assert engine.distance(3, j) == pytest.approx(full[j])

    def test_counters(self, hilly):
        pois = sample_uniform(hilly, 5, seed=2)
        engine = GeodesicEngine(hilly, pois, points_per_edge=0)
        engine.reset_counters()
        engine.distance(0, 1)
        engine.distances_from_poi(2)
        assert engine.ssad_calls == 2
        assert engine.settled_nodes > 0

    def test_shortest_path_geometry(self, flat_square):
        pois = pois_from_vertices(flat_square, [0, 8])
        engine = GeodesicEngine(flat_square, pois, points_per_edge=3)
        dist, path = engine.shortest_path(0, 1)
        assert len(path) >= 2
        np.testing.assert_allclose(path[0], flat_square.vertices[0])
        np.testing.assert_allclose(path[-1], flat_square.vertices[8])
        segment_sum = sum(
            float(np.linalg.norm(path[i + 1] - path[i]))
            for i in range(len(path) - 1)
        )
        assert segment_sum == pytest.approx(dist)

    def test_attach_point_and_distance(self, hilly):
        pois = sample_uniform(hilly, 3, seed=6)
        engine = GeodesicEngine(hilly, pois, points_per_edge=1)
        node = engine.attach_point(50.0, 50.0)
        distance = engine.node_distance(node, engine.poi_node(0))
        assert distance > 0
        engine.detach_points(1)

    def test_attach_point_outside_raises(self, hilly):
        pois = sample_uniform(hilly, 3, seed=6)
        engine = GeodesicEngine(hilly, pois, points_per_edge=0)
        with pytest.raises(ValueError):
            engine.attach_point(1e9, 1e9)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 30))
def test_random_pair_respects_metric_axioms(seed):
    mesh = make_terrain(grid_exponent=3, extent=(50.0, 50.0),
                        relief=10.0, seed=seed)
    pois = sample_uniform(mesh, 4, seed=seed)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    d = [[engine.distance(i, j) for j in range(4)] for i in range(4)]
    for i in range(4):
        assert d[i][i] == 0.0
        for j in range(4):
            assert d[i][j] == pytest.approx(d[j][i], rel=1e-9)
            for k in range(4):
                assert d[i][j] <= d[i][k] + d[k][j] + 1e-6
