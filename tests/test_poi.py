"""Tests for POI management and sampling."""

import numpy as np
import pytest

from repro.terrain import (
    POI,
    POISet,
    make_terrain,
    pois_from_vertices,
    random_surface_point,
    sample_clustered,
    sample_uniform,
)


@pytest.fixture(scope="module")
def terrain():
    return make_terrain(grid_exponent=4, extent=(1000.0, 800.0),
                        relief=100.0, seed=2)


class TestPOI:
    def test_accessors(self):
        poi = POI(index=0, position=(1.0, 2.0, 3.0), face_id=5)
        assert (poi.x, poi.y, poi.z) == (1.0, 2.0, 3.0)
        np.testing.assert_array_equal(poi.as_array(), [1.0, 2.0, 3.0])
        assert poi.vertex_id is None


class TestPOISet:
    def test_deduplication(self):
        pois = [
            POI(index=0, position=(0.0, 0.0, 0.0), face_id=0),
            POI(index=1, position=(0.0, 0.0, 0.0), face_id=0),
            POI(index=2, position=(1.0, 0.0, 0.0), face_id=0),
        ]
        merged = POISet(pois)
        assert len(merged) == 2
        assert [p.index for p in merged] == [0, 1]  # re-indexed

    def test_positions_shape(self, terrain):
        pois = sample_uniform(terrain, 10, seed=1)
        assert pois.positions.shape == (len(pois), 3)
        assert pois.xy().shape == (len(pois), 2)

    def test_empty_set(self):
        empty = POISet([])
        assert len(empty) == 0
        assert empty.positions.shape == (0, 3)

    def test_subset_reindexes(self, terrain):
        pois = sample_uniform(terrain, 10, seed=1)
        sub = pois.subset([3, 7])
        assert len(sub) == 2
        assert [p.index for p in sub] == [0, 1]


class TestVertexPOIs:
    def test_all_vertices(self, terrain):
        pois = pois_from_vertices(terrain)
        assert len(pois) == terrain.num_vertices
        assert pois.all_on_vertices()

    def test_positions_match_vertices(self, terrain):
        pois = pois_from_vertices(terrain, [0, 5, 9])
        np.testing.assert_allclose(pois.positions,
                                   terrain.vertices[[0, 5, 9]])

    def test_face_is_incident(self, terrain):
        pois = pois_from_vertices(terrain, [7])
        poi = pois[0]
        assert poi.vertex_id in terrain.faces[poi.face_id]


class TestUniformSampling:
    def test_count(self, terrain):
        assert len(sample_uniform(terrain, 25, seed=3)) == 25

    def test_negative_count_rejected(self, terrain):
        with pytest.raises(ValueError):
            sample_uniform(terrain, -1)

    def test_points_lie_on_their_faces(self, terrain):
        pois = sample_uniform(terrain, 30, seed=4)
        for poi in pois:
            assert terrain.contains_point_2d(poi.face_id, poi.x, poi.y,
                                             tolerance=1e-6)

    def test_deterministic(self, terrain):
        a = sample_uniform(terrain, 15, seed=9)
        b = sample_uniform(terrain, 15, seed=9)
        np.testing.assert_allclose(a.positions, b.positions)

    def test_not_on_vertices(self, terrain):
        pois = sample_uniform(terrain, 10, seed=5)
        assert not pois.all_on_vertices()

    def test_random_surface_point_on_surface(self, terrain):
        rng = np.random.default_rng(0)
        position, face_id = random_surface_point(terrain, rng)
        assert terrain.contains_point_2d(face_id, position[0], position[1],
                                         tolerance=1e-6)
        projected = terrain.project_onto_surface(position[0], position[1])
        assert projected is not None
        assert abs(projected[2] - position[2]) < 1e-6


class TestClusteredSampling:
    def test_count(self, terrain):
        pois = sample_clustered(terrain, 40, seed=1)
        assert len(pois) == 40

    def test_extends_existing(self, terrain):
        base = sample_uniform(terrain, 10, seed=1)
        extended = sample_clustered(terrain, 15, seed=2, existing=base)
        assert len(extended) == 25
        np.testing.assert_allclose(extended.positions[:10], base.positions)

    def test_points_inside_terrain(self, terrain):
        pois = sample_clustered(terrain, 30, seed=3)
        low, high = terrain.bounding_box()
        assert (pois.positions[:, 0] >= low[0] - 1e-9).all()
        assert (pois.positions[:, 0] <= high[0] + 1e-9).all()

    def test_heights_interpolated(self, terrain):
        pois = sample_clustered(terrain, 20, seed=4)
        for poi in pois:
            surface = terrain.project_onto_surface(poi.x, poi.y)
            assert surface is not None
            assert abs(surface[2] - poi.z) < 1e-6

    def test_clustered_more_concentrated_than_uniform(self, terrain):
        uniform = sample_uniform(terrain, 120, seed=5)
        clustered = sample_clustered(terrain, 120, seed=5)
        assert clustered.xy().std(axis=0).mean() \
            < uniform.xy().std(axis=0).mean() * 1.2
