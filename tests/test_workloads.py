"""Tests for scenario workloads (serving/workloads.py) + replay."""

import json

import pytest

from repro.core import SEOracle, pack_oracle
from repro.geodesic import GeodesicEngine
from repro.serving import OracleService, TerrainSpec, ThreadedServer
from repro.serving.loadgen import replay_direct, replay_workload
from repro.serving.workloads import (
    SCENARIOS,
    WORKLOAD_VERSION,
    WorkloadError,
    check_events,
    dumps_workload,
    generate_workload,
    loads_workload,
    read_workload,
    write_workload,
)
from repro.terrain import make_terrain, sample_uniform

NUM_POIS = 10


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=7)
    pois = sample_uniform(mesh, NUM_POIS, seed=8)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, 0.3, seed=7).build()
    path = tmp_path_factory.mktemp("workloads") / "alps.store"
    pack_oracle(oracle, path)
    return path


@pytest.fixture(scope="module")
def served(store_path):
    service = OracleService(max_resident=2)
    service.register("alps", TerrainSpec(str(store_path)))
    with ThreadedServer(service, max_batch=16) as server:
        yield service, server


class TestGeneration:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_byte_identical_regeneration(self, scenario):
        first = dumps_workload(generate_workload(
            scenario, "alps", NUM_POIS, 50, seed=13, radius=20.0))
        second = dumps_workload(generate_workload(
            scenario, "alps", NUM_POIS, 50, seed=13, radius=20.0))
        assert first.encode() == second.encode()

    def test_different_seeds_differ(self):
        one = dumps_workload(generate_workload(
            "moving-agents", "alps", NUM_POIS, 50, seed=1))
        two = dumps_workload(generate_workload(
            "moving-agents", "alps", NUM_POIS, 50, seed=2))
        assert one != two

    def test_header_pins_provenance(self):
        workload = generate_workload(
            "range-alerts", "alps", NUM_POIS, 25, seed=3, radius=12.5)
        header = workload.header
        assert header["format"] == "repro-workload"
        assert header["version"] == WORKLOAD_VERSION
        assert header["scenario"] == "range-alerts"
        assert header["seed"] == 3
        assert header["events"] == 25
        assert header["params"]["radius"] == 12.5

    def test_events_address_valid_pois(self):
        for scenario in SCENARIOS:
            workload = generate_workload(
                scenario, "alps", NUM_POIS, 200, seed=5, radius=10.0)
            check_events(workload.events, NUM_POIS)

    def test_moving_agents_are_local(self):
        workload = generate_workload(
            "moving-agents", "alps", 100, 400, seed=5, agents=1,
            respawn=0.0)
        sources = [event["source"] for event in workload.events]
        steps = [abs(b - a) for a, b in zip(sources, sources[1:])]
        # One agent, no respawns: every move is a +-2 neighbourhood
        # drift (modulo the wrap-around at the ends of the id space).
        assert all(step <= 2 or step >= 98 for step in steps)

    def test_unknown_scenario(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            generate_workload("teleport", "alps", NUM_POIS, 10)

    def test_bad_parameters(self):
        with pytest.raises(WorkloadError, match="at least 2 POIs"):
            generate_workload("moving-agents", "alps", 1, 10)
        with pytest.raises(WorkloadError, match="at least 1 event"):
            generate_workload("moving-agents", "alps", NUM_POIS, 0)
        with pytest.raises(WorkloadError, match="positive radius"):
            generate_workload("range-alerts", "alps", NUM_POIS, 10,
                              radius=0.0)


class TestPoissonArrivals:
    """The version-2 open-loop arrival-time field (PR-10 satellite)."""

    def test_rate_never_perturbs_event_draws(self):
        plain = generate_workload(
            "moving-agents", "alps", NUM_POIS, 80, seed=13)
        paced = generate_workload(
            "moving-agents", "alps", NUM_POIS, 80, seed=13, rate=250.0)
        stripped = [{key: value for key, value in event.items()
                     if key != "arrival_s"} for event in paced.events]
        assert stripped == plain.events
        assert paced.params["rate"] == 250.0

    def test_arrivals_are_monotone_and_byte_stable(self):
        one = generate_workload(
            "coverage-audit", "alps", NUM_POIS, 60, seed=9, rate=100.0)
        two = generate_workload(
            "coverage-audit", "alps", NUM_POIS, 60, seed=9, rate=100.0)
        assert dumps_workload(one).encode() == dumps_workload(two).encode()
        arrivals = [event["arrival_s"] for event in one.events]
        assert arrivals == sorted(arrivals)
        assert all(value >= 0 for value in arrivals)
        check_events(one.events, NUM_POIS)

    def test_version_one_files_still_load(self):
        plain = generate_workload(
            "coverage-audit", "alps", NUM_POIS, 10, seed=4)
        lines = dumps_workload(plain).splitlines()
        header = json.loads(lines[0])
        header["version"] = 1
        lines[0] = json.dumps(header, sort_keys=True,
                              separators=(",", ":"))
        loaded = loads_workload("\n".join(lines))
        assert loaded.events == plain.events

    def test_bad_rate_and_bad_arrivals_rejected(self):
        with pytest.raises(WorkloadError, match="rate"):
            generate_workload("coverage-audit", "alps", NUM_POIS, 10,
                              rate=0.0)
        with pytest.raises(WorkloadError, match="arrival_s"):
            loads_workload(
                '{"events":1,"format":"repro-workload","num_pois":5,'
                '"params":{},"scenario":"coverage-audit","seed":0,'
                '"terrain":"alps","version":2}\n'
                '{"arrival_s":-1.0,"op":"rnn","source":1}\n')
        with pytest.raises(WorkloadError, match="backwards"):
            check_events(
                [{"op": "rnn", "source": 1, "arrival_s": 2.0},
                 {"op": "rnn", "source": 2, "arrival_s": 1.0}],
                NUM_POIS)

    def test_paced_replay_matches_unpaced_answers(self, served):
        """Pacing changes when requests leave, never what they answer:
        the paced reply stream is byte-identical to the unpaced one."""
        _, server = served
        workload = generate_workload(
            "moving-agents", "alps", NUM_POIS, 40, seed=17,
            rate=5000.0)
        paced = replay_workload(server.host, server.port, "alps",
                                workload.events, pace=True)
        unpaced = replay_workload(server.host, server.port, "alps",
                                  workload.events)
        assert paced.errors == 0
        assert paced.response_bytes == unpaced.response_bytes


class TestSerialisation:
    def test_round_trip(self, tmp_path):
        workload = generate_workload(
            "coverage-audit", "alps", NUM_POIS, 30, seed=4)
        path = tmp_path / "audit.jsonl"
        write_workload(workload, path)
        loaded = read_workload(path)
        assert loaded == workload
        assert dumps_workload(loaded) == dumps_workload(workload)

    def test_version_rejected(self):
        workload = generate_workload(
            "coverage-audit", "alps", NUM_POIS, 5, seed=4)
        text = dumps_workload(workload)
        lines = text.splitlines()
        header = json.loads(lines[0])
        header["version"] = WORKLOAD_VERSION + 1
        lines[0] = json.dumps(header)
        with pytest.raises(WorkloadError, match="version"):
            loads_workload("\n".join(lines))

    def test_missing_format_marker(self):
        with pytest.raises(WorkloadError, match="format marker"):
            loads_workload('{"op":"rnn","source":1}\n')

    def test_empty_file(self):
        with pytest.raises(WorkloadError, match="empty"):
            loads_workload("")

    def test_unknown_op_rejected(self):
        workload = generate_workload(
            "coverage-audit", "alps", NUM_POIS, 2, seed=4)
        text = dumps_workload(workload).replace('"op":"rnn"',
                                                '"op":"teleport"', 1)
        with pytest.raises(WorkloadError, match="unknown op"):
            loads_workload(text)

    def test_missing_field_rejected(self):
        workload = generate_workload(
            "moving-agents", "alps", NUM_POIS, 2, seed=4)
        lines = dumps_workload(workload).splitlines()
        lines[1] = lines[1].replace('"k":3,', "", 1)
        with pytest.raises(WorkloadError, match="missing field"):
            loads_workload("\n".join(lines))

    def test_truncated_file_rejected(self):
        workload = generate_workload(
            "coverage-audit", "alps", NUM_POIS, 5, seed=4)
        lines = dumps_workload(workload).splitlines()
        with pytest.raises(WorkloadError, match="truncated"):
            loads_workload("\n".join(lines[:-2]))

    def test_check_events_bounds(self):
        with pytest.raises(WorkloadError, match="outside"):
            check_events([{"op": "rnn", "source": NUM_POIS}], NUM_POIS)
        check_events([{"op": "rnn", "source": NUM_POIS}], None)  # unknown n


class TestReplay:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_replay_twice_is_byte_identical(self, served, scenario):
        _, server = served
        workload = generate_workload(
            scenario, "alps", NUM_POIS, 60, seed=11, radius=30.0)
        first = replay_workload(server.host, server.port, "alps",
                                workload.events)
        second = replay_workload(server.host, server.port, "alps",
                                 workload.events)
        assert first.errors == 0
        assert first.response_bytes == second.response_bytes

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_wire_matches_direct(self, served, scenario):
        service, server = served
        workload = generate_workload(
            scenario, "alps", NUM_POIS, 60, seed=12, radius=30.0)
        wire = replay_workload(server.host, server.port, "alps",
                               workload.events)
        assert wire.results == replay_direct(service, "alps",
                                             workload.events)

    def test_replay_reports_per_op_latency(self, served):
        _, server = served
        events = [{"op": "knn", "source": 0, "k": 2},
                  {"op": "rnn", "source": 1},
                  {"op": "query", "source": 0, "target": 1}]
        report = replay_workload(server.host, server.port, "alps", events)
        assert set(report.op_latency_ms) == {"knn", "rnn", "query"}
        assert report.requests == 3
        assert report.qps > 0

    def test_error_events_align(self, served):
        service, server = served
        events = [{"op": "query", "source": 0, "target": 1},
                  {"op": "query", "source": 0, "target": NUM_POIS + 5},
                  {"op": "rnn", "source": 2}]
        wire = replay_workload(server.host, server.port, "alps", events)
        direct = replay_direct(service, "alps", events)
        assert wire.errors == 1
        assert wire.results[1] is None and direct[1] is None
        assert wire.results == direct
