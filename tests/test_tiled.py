"""Tiled terrain sharding: per-tile oracles, stitching, paging, API.

Four concerns, one axis each:

1. **Correctness of stitching** — a ``--tiles N`` oracle must stay
   within the monolithic oracle's ``(1 + eps)`` guarantee against
   :func:`~repro.geodesic.dijkstra.dijkstra_reference`, including POIs
   placed exactly on tile-boundary vertices and terrains whose tiles
   are disconnected (empty portal set => ``inf``).
2. **Determinism of the shard layout** — a single-tile build is
   bit-identical to the untiled oracle, packing round-trips
   bit-identically, and paging with ``max_resident_tiles=1`` answers
   bit-identically to an all-resident oracle (with a reconciling
   load/eviction ledger).
3. **The redesigned registration API** — one ``register(terrain_id,
   TerrainSpec(...))`` entry point; the bare-path and
   ``register_mutable`` forms still work but warn; spec validation and
   pin semantics.
4. **Uniform proximity routing** — knn/range/rnn take any
   :class:`~repro.core.index.DistanceIndex` with no per-family
   arguments; a tiled oracle and a mutable overlay answer through the
   same signature.
"""

import threading
import warnings

import numpy as np
import pytest

from repro.core import (
    DynamicSEOracle,
    SEOracle,
    TiledOracle,
    build_tiled_oracle,
    open_oracle,
    pack_tiled,
    plan_tiles,
)
from repro.geodesic import GeodesicEngine, dijkstra_reference
from repro.queries import (
    k_nearest_neighbors,
    range_query,
    reverse_nearest_neighbors,
)
from repro.serving import OracleService, TerrainSpec
from repro.serving.loadgen import sample_pairs
from repro.terrain import (
    TriangleMesh,
    make_terrain,
    pois_from_vertices,
    sample_uniform,
)

NUM_POIS = 12
EPSILON = 0.3


def _workload(seed=5):
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=seed)
    pois = sample_uniform(mesh, NUM_POIS, seed=seed + 1)
    return mesh, pois


def _all_pairs(count):
    sources, targets = np.meshgrid(np.arange(count), np.arange(count),
                                   indexing="ij")
    return sources.reshape(-1), targets.reshape(-1)


def _exact_distances(mesh, pois, source):
    """Ground truth from the reference kernel, POI id -> distance."""
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    nodes = [engine.poi_node(poi) for poi in range(engine.num_pois)]
    result = dijkstra_reference(engine.graph.adjacency, nodes[source],
                                targets=nodes)
    return {poi: result.distances[node]
            for poi, node in enumerate(nodes)
            if node in result.distances}


@pytest.fixture(scope="module")
def tiled4():
    mesh, pois = _workload()
    build = build_tiled_oracle(mesh, pois, EPSILON, tiles=4, seed=0)
    return mesh, pois, build


@pytest.fixture(scope="module")
def tiled_store(tiled4, tmp_path_factory):
    _, _, build = tiled4
    path = tmp_path_factory.mktemp("tiled") / "t.store"
    pack_tiled(build, path)
    return path


@pytest.fixture(scope="module")
def mono_store(tmp_path_factory):
    from repro.core import pack_oracle
    mesh, pois = _workload()
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, EPSILON, seed=0).build()
    path = tmp_path_factory.mktemp("mono") / "m.store"
    pack_oracle(oracle, path)
    return path


class TestApproximation:
    def test_within_epsilon_of_reference(self, tiled4):
        mesh, pois, build = tiled4
        oracle = build.oracle()
        assert oracle.num_tiles == 4
        for source in range(len(pois)):
            exact = _exact_distances(mesh, pois, source)
            for target in range(len(pois)):
                approx = oracle.query(source, target)
                if source == target:
                    assert approx == 0.0
                    continue
                true = exact.get(target, float("inf"))
                if not np.isfinite(true):
                    assert not np.isfinite(approx)
                    continue
                assert abs(approx - true) <= EPSILON * true * (1 + 1e-6), (
                    f"d({source},{target}) = {approx} vs exact {true}")

    def test_plan_covers_every_face(self):
        mesh, _ = _workload()
        face_tile = plan_tiles(mesh, 4)
        assert face_tile.shape == (mesh.num_faces,)
        assert sorted(set(int(t) for t in face_tile)) == [0, 1, 2, 3]


class TestDeterminism:
    def test_single_tile_bit_identical_to_monolithic(self):
        mesh, pois = _workload()
        engine = GeodesicEngine(mesh, pois, points_per_edge=1)
        mono = SEOracle(engine, EPSILON, seed=0).build().compiled()
        build = build_tiled_oracle(mesh, pois, EPSILON, tiles=1, seed=0)
        tiled = build.oracle()
        sources, targets = _all_pairs(len(pois))
        expected = mono.query_batch(sources, targets)
        assert (tiled.query_batch(sources, targets) == expected).all()

    def test_pack_open_bit_identical(self, tiled4, tiled_store):
        _, pois, build = tiled4
        memory = build.oracle()
        stored = open_oracle(tiled_store)
        assert isinstance(stored, TiledOracle)
        assert stored.num_tiles == memory.num_tiles
        assert stored.num_portals == memory.num_portals
        sources, targets = _all_pairs(len(pois))
        assert (stored.query_batch(sources, targets)
                == memory.query_batch(sources, targets)).all()

    def test_parallel_build_bit_identical(self):
        mesh, pois = _workload()
        serial = build_tiled_oracle(mesh, pois, EPSILON, tiles=4,
                                    seed=0, jobs=1)
        fanned = build_tiled_oracle(mesh, pois, EPSILON, tiles=4,
                                    seed=0, jobs=2)
        assert (serial.boundary == fanned.boundary).all()
        for tile, tile_sections in enumerate(serial.sections):
            for name, expected in tile_sections.items():
                assert (np.asarray(expected) == np.asarray(
                    fanned.sections[tile][name])).all(), (tile, name)


class TestBoundaryVertexPOI:
    def test_poi_exactly_on_cut_vertex(self):
        """A POI placed on a tile-boundary vertex coincides with a
        portal; the owning tile must keep answering for it (the portal
        id aliases the owned POI) and stitched distances stay within
        the epsilon envelope."""
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=15.0, seed=11)
        face_tile = plan_tiles(mesh, 4)
        cut_vertices = [
            vertex for vertex in range(mesh.num_vertices)
            if len({int(face_tile[f])
                    for f in mesh.vertex_faces[vertex]}) >= 2]
        assert cut_vertices, "expected shared vertices between tiles"
        interior = [vertex for vertex in range(mesh.num_vertices)
                    if vertex not in set(cut_vertices)]
        chosen = cut_vertices[:3] + interior[:5]
        pois = pois_from_vertices(mesh, chosen)
        build = build_tiled_oracle(mesh, pois, EPSILON, tiles=4, seed=0)
        oracle = build.oracle()
        for source in range(len(pois)):
            exact = _exact_distances(mesh, pois, source)
            for target in range(len(pois)):
                approx = oracle.query(source, target)
                if source == target:
                    assert approx == 0.0
                    continue
                true = exact[target]
                assert abs(approx - true) <= EPSILON * true * (1 + 1e-6)


class TestDisconnectedTiles:
    @pytest.fixture(scope="class")
    def split_world(self):
        """Two far-apart squares: the bisection planner puts each
        component in its own tile and no vertex or edge spans both, so
        the portal set is empty."""
        square = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0],
                           [0.0, 1.0, 0.0], [1.0, 1.0, 0.0]])
        vertices = np.vstack([square, square + [100.0, 0.0, 0.0]])
        faces = np.array([[0, 1, 2], [1, 3, 2],
                          [4, 5, 6], [5, 7, 6]])
        mesh = TriangleMesh(vertices, faces)
        pois = pois_from_vertices(mesh, [0, 3, 4, 7])
        build = build_tiled_oracle(mesh, pois, EPSILON, tiles=2, seed=0)
        return mesh, pois, build

    def test_empty_portal_set(self, split_world):
        _, _, build = split_world
        assert build.oracle().num_portals == 0

    def test_cross_tile_is_inf_intra_is_finite(self, split_world):
        _, _, build = split_world
        oracle = build.oracle()
        assert np.isfinite(oracle.query(0, 1))
        assert np.isfinite(oracle.query(2, 3))
        for source, target in ((0, 2), (0, 3), (1, 2), (1, 3)):
            assert oracle.query(source, target) == float("inf")
            assert oracle.query(target, source) == float("inf")

    def test_proximity_excludes_unreachable(self, split_world):
        _, _, build = split_world
        oracle = build.oracle()
        neighbors = k_nearest_neighbors(oracle, 0, 10)
        assert [poi for poi, _ in neighbors] == [1]


class TestTilePaging:
    def test_residency_one_bit_identical(self, tiled_store):
        full = open_oracle(tiled_store)
        paged = open_oracle(tiled_store, max_resident_tiles=1)
        sources, targets = _all_pairs(full.num_pois)
        expected = full.query_batch(sources, targets)
        assert (paged.query_batch(sources, targets) == expected).all()
        assert len(paged.resident_tiles()) <= 1
        counters = paged.tile_counters()
        assert counters["loads"] - counters["evictions"] == len(
            counters["resident"])
        assert full.peak_resident_bytes >= paged.peak_resident_bytes

    def test_eviction_is_observable(self, tiled_store):
        oracle = open_oracle(tiled_store, max_resident_tiles=2)
        sources, targets = _all_pairs(oracle.num_pois)
        oracle.query_batch(sources, targets)
        counters = oracle.tile_counters()
        assert counters["evictions"] > 0
        assert len(counters["resident"]) <= 2
        resident = oracle.resident_tiles()
        assert oracle.evict_tile(resident[0])
        assert not oracle.evict_tile(resident[0])

    def test_bound_must_be_positive(self, tiled_store):
        with pytest.raises(ValueError):
            open_oracle(tiled_store, max_resident_tiles=0)


class TestServiceTiledTerrains:
    def test_eviction_mid_batch_serial_replay(self, tiled_store):
        """8 threads drive batches through a tiled terrain whose LRU
        holds a single tile, forcing evictions inside query_batch
        dispatch; every recorded answer must match a serial replay and
        the per-tile ledger must reconcile."""
        service = OracleService()
        service.register("t", TerrainSpec(str(tiled_store),
                                          max_resident_tiles=1))
        pairs = sample_pairs(NUM_POIS, 40, seed=7)
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        records = []
        failures = []
        lock = threading.Lock()

        def worker(offset):
            try:
                rolled = sources[offset:] + sources[:offset]
                answers = service.query_batch("t", rolled, targets)
                with lock:
                    records.append((rolled, list(answers)))
            except Exception as error:  # pragma: no cover
                failures.append(error)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(records) == 8
        for rolled, answers in records:
            replay = service.query_batch("t", rolled, targets)
            assert list(replay) == answers

        stats = service.stats()["t"]
        ledger = stats["tiles"]
        assert ledger["loads"] - ledger["evictions"] == len(
            ledger["resident"])
        assert len(ledger["resident"]) <= 1
        assert stats["queries"] == 16 * len(pairs)
        meta = service.describe("t")
        assert meta["tile_paging"]["loads"] >= 1

    def test_proximity_verbs_on_tiled_terrain(self, tiled_store):
        service = OracleService()
        service.register("t", TerrainSpec(str(tiled_store)))
        oracle = open_oracle(tiled_store)
        assert (service.k_nearest("t", 0, 3)
                == k_nearest_neighbors(oracle, 0, 3))
        radius = service.query("t", 0, 1) + 1.0
        assert (service.range_query("t", 0, radius)
                == range_query(oracle, 0, radius))
        assert (service.reverse_nearest("t", 0)
                == reverse_nearest_neighbors(oracle, 0))


class TestRegistrationAPI:
    def test_bare_path_form_warns_and_works(self, mono_store):
        service = OracleService()
        with pytest.deprecated_call():
            meta = service.register("m", str(mono_store))
        assert meta["epsilon"] == EPSILON
        assert service.query("m", 0, 0) == 0.0

    def test_register_mutable_shim_warns(self, mono_store):
        mesh, pois = _workload()
        engine = GeodesicEngine(mesh, pois, points_per_edge=1)
        service = OracleService()
        with pytest.deprecated_call():
            service.register_mutable("m", str(mono_store), engine)
        assert service.describe("m")["mutable"]

    def test_spec_form_does_not_warn(self, mono_store):
        service = OracleService()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service.register("m", TerrainSpec(str(mono_store)))

    def test_spec_plus_kwarg_is_an_error(self, mono_store):
        service = OracleService()
        with pytest.raises(TypeError):
            service.register("m", TerrainSpec(str(mono_store)),
                             track_generation=True)

    def test_mutable_requires_engine(self):
        with pytest.raises(ValueError):
            TerrainSpec("x.store", mutable=True)

    def test_mutable_excludes_tracking(self):
        mesh, pois = _workload()
        engine = GeodesicEngine(mesh, pois, points_per_edge=1)
        with pytest.raises(ValueError):
            TerrainSpec("x.store", mutable=True, engine=engine,
                        track_generation=True)

    def test_tiled_store_refuses_mutable(self, tiled_store):
        mesh, pois = _workload()
        engine = GeodesicEngine(mesh, pois, points_per_edge=1)
        service = OracleService()
        with pytest.raises(ValueError, match="tiled"):
            service.register("t", TerrainSpec(
                str(tiled_store), mutable=True, engine=engine))

    def test_pinned_terrain_survives_lru(self, mono_store, tiled_store):
        service = OracleService(max_resident=1)
        service.register("pinned", TerrainSpec(str(mono_store),
                                               pin=True))
        service.register("t", TerrainSpec(str(tiled_store)))
        service.query("pinned", 0, 1)
        service.query("t", 0, 1)   # would evict "pinned" if unpinned
        assert "pinned" in service.resident_terrains()
        assert not service.evict("pinned")
        assert service.evict("t") or "t" not in \
            service.resident_terrains()


class TestUniformProximity:
    def test_tiled_oracle_needs_no_universe_args(self, tiled_store):
        oracle = open_oracle(tiled_store)
        explicit = k_nearest_neighbors(oracle, 2, 4,
                                       num_pois=oracle.num_pois)
        assert k_nearest_neighbors(oracle, 2, 4) == explicit
        radius = explicit[-1][1]
        assert (range_query(oracle, 2, radius)
                == range_query(oracle, 2, radius,
                               num_pois=oracle.num_pois))
        assert (reverse_nearest_neighbors(oracle, 2)
                == reverse_nearest_neighbors(oracle, 2,
                                             num_pois=oracle.num_pois))

    def test_mutable_overlay_uses_live_ids(self):
        mesh, pois = _workload(seed=23)
        oracle = DynamicSEOracle(mesh, pois, epsilon=EPSILON,
                                 rebuild_factor=10.0, seed=1).build()
        oracle.delete(3)
        oracle.delete(7)
        live = [int(poi) for poi in oracle.live_ids()]
        assert 3 not in live and 7 not in live
        assert (k_nearest_neighbors(oracle, 0, 5)
                == k_nearest_neighbors(oracle, 0, 5, candidates=live))
        assert 3 not in [poi for poi, _ in
                         k_nearest_neighbors(oracle, 0, len(live))]
        assert (reverse_nearest_neighbors(oracle, 0)
                == reverse_nearest_neighbors(oracle, 0,
                                             candidates=live))
