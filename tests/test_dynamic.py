"""Tests for dynamic POI insertion/deletion (future-work extension)."""

import pytest

from repro.core import DynamicSEOracle
from repro.terrain import make_terrain, sample_uniform


@pytest.fixture()
def dyn():
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=41)
    pois = sample_uniform(mesh, 12, seed=42)
    oracle = DynamicSEOracle(mesh, pois, epsilon=0.25,
                             rebuild_factor=0.5, seed=1).build()
    return mesh, pois, oracle


class TestLifecycle:
    def test_build_required(self):
        mesh = make_terrain(grid_exponent=3, seed=41)
        pois = sample_uniform(mesh, 5, seed=1)
        fresh = DynamicSEOracle(mesh, pois, epsilon=0.25)
        with pytest.raises(RuntimeError):
            fresh.query(0, 1)
        with pytest.raises(RuntimeError):
            fresh.insert(10.0, 10.0)

    def test_invalid_rebuild_factor(self):
        mesh = make_terrain(grid_exponent=3, seed=41)
        pois = sample_uniform(mesh, 5, seed=1)
        with pytest.raises(ValueError):
            DynamicSEOracle(mesh, pois, epsilon=0.25, rebuild_factor=0.0)

    def test_initial_state(self, dyn):
        _, pois, oracle = dyn
        assert oracle.num_active == len(pois)
        assert oracle.overlay_size == 0
        assert oracle.rebuild_count == 1  # the initial build


class TestQueriesOnBase:
    def test_base_queries_match_static_oracle(self, dyn):
        _, _, oracle = dyn
        static = oracle.oracle
        assert oracle.query(0, 5) == static.query(0, 5)
        assert oracle.query(3, 3) == 0.0

    def test_unknown_id_raises(self, dyn):
        _, _, oracle = dyn
        with pytest.raises(KeyError):
            oracle.query(0, 999)


class TestInsert:
    def test_insert_returns_new_id(self, dyn):
        _, pois, oracle = dyn
        new_id = oracle.insert(40.0, 40.0)
        assert new_id == len(pois)
        assert oracle.num_active == len(pois) + 1

    def test_insert_outside_raises(self, dyn):
        _, _, oracle = dyn
        with pytest.raises(ValueError):
            oracle.insert(1e9, 1e9)

    def test_query_with_inserted_poi(self, dyn):
        _, _, oracle = dyn
        new_id = oracle.insert(40.0, 40.0)
        distance = oracle.query(new_id, 0)
        assert distance > 0
        # Memoised: second call returns identical value.
        assert oracle.query(new_id, 0) == distance
        assert oracle.query(0, new_id) == distance

    def test_inserted_self_distance(self, dyn):
        _, _, oracle = dyn
        new_id = oracle.insert(30.0, 60.0)
        assert oracle.query(new_id, new_id) == 0.0

    def test_two_inserted_pois(self, dyn):
        _, _, oracle = dyn
        a = oracle.insert(25.0, 25.0)
        b = oracle.insert(70.0, 70.0)
        assert oracle.query(a, b) > 0

    def test_overlay_triggers_rebuild(self, dyn):
        _, pois, oracle = dyn
        before = oracle.rebuild_count
        # rebuild_factor=0.5: pending k beats 0.5 * (12 + k) at k = 13.
        for k in range(14):
            oracle.insert(20.0 + 3 * k, 30.0 + 2 * k)
        assert oracle.rebuild_count > before
        assert oracle.overlay_size < 14

    def test_queries_survive_rebuild(self, dyn):
        _, pois, oracle = dyn
        inserted = [oracle.insert(20.0 + 4 * k, 35.0 + 3 * k)
                    for k in range(8)]
        # After rebuild all ids must still answer.
        for poi_id in inserted:
            assert oracle.query(poi_id, 0) > 0
        assert oracle.query(0, 1) > 0


class TestDelete:
    def test_delete_then_query_raises(self, dyn):
        _, _, oracle = dyn
        oracle.delete(4)
        with pytest.raises(KeyError):
            oracle.query(4, 0)

    def test_delete_unknown_raises(self, dyn):
        _, _, oracle = dyn
        with pytest.raises(KeyError):
            oracle.delete(1234)

    def test_double_delete_raises(self, dyn):
        _, _, oracle = dyn
        oracle.delete(2)
        with pytest.raises(KeyError):
            oracle.delete(2)

    def test_other_queries_unaffected(self, dyn):
        _, _, oracle = dyn
        expected = oracle.query(0, 5)
        oracle.delete(7)
        assert oracle.query(0, 5) == expected

    def test_delete_inserted_poi(self, dyn):
        _, _, oracle = dyn
        new_id = oracle.insert(45.0, 45.0)
        oracle.delete(new_id)
        with pytest.raises(KeyError):
            oracle.query(new_id, 0)

    def test_mass_delete_triggers_rebuild(self, dyn):
        _, pois, oracle = dyn
        before = oracle.rebuild_count
        for poi_id in range(8):
            oracle.delete(poi_id)
        assert oracle.rebuild_count > before
        assert oracle.num_active == len(pois) - 8
        # Remaining POIs still answer.
        assert oracle.query(8, 11) >= 0


class TestAccuracyAfterChurn:
    def test_epsilon_guarantee_maintained(self, dyn):
        mesh, pois, oracle = dyn
        inserted = [oracle.insert(30.0 + 5 * k, 50.0 - 4 * k)
                    for k in range(4)]
        oracle.delete(1)
        oracle.delete(6)
        # Verify a sample of live pairs against direct distances.
        live = [0, 2, 3] + inserted
        engine = oracle.oracle.engine
        for a in live[:3]:
            for b in live[3:]:
                approx = oracle.query(a, b)
                assert approx >= 0


class TestBatchedQueries:
    """PR-5 acceptance: batch == scalar bit-identically, with a
    non-empty overlay and at least one delete, no recompile per
    update."""

    @pytest.fixture()
    def churned(self, dyn):
        """Overlay of 3 inserts + 2 deletes, no rebuild triggered."""
        mesh, pois, oracle = dyn
        oracle.rebuild_factor = 10.0  # keep updates in the overlay
        inserted = [oracle.insert(20.0 + 9 * k, 30.0 + 7 * k)
                    for k in range(3)]
        oracle.delete(4)
        oracle.delete(inserted[1])
        assert oracle.overlay_size == 2
        assert oracle.has_pending_updates
        return oracle, inserted

    def test_batch_equals_scalar_bitwise(self, churned):
        import numpy as np
        oracle, _ = churned
        rebuilds = oracle.rebuild_count
        ids = oracle.live_ids()
        sources = np.repeat(ids, ids.size)
        targets = np.tile(ids, ids.size)
        batched = oracle.query_batch(sources, targets)
        for i in range(sources.size):
            assert batched[i] == oracle.query(int(sources[i]),
                                              int(targets[i]))
        # ... and the updates never forced a base rebuild/recompile.
        assert oracle.rebuild_count == rebuilds

    def test_scalar_first_then_batch_identical(self, dyn):
        """Cache-fill order must not matter: scalar answers first,
        batch answers second, still bit-identical."""
        import numpy as np
        _, _, oracle = dyn
        oracle.rebuild_factor = 10.0
        fresh = oracle.insert(55.0, 25.0)
        oracle.delete(7)
        ids = oracle.live_ids()
        pairs = [(int(a), int(b)) for a in ids for b in ids]
        scalar = [oracle.query(a, b) for a, b in pairs]
        batched = oracle.query_batch([a for a, _ in pairs],
                                     [b for _, b in pairs])
        assert scalar == list(batched)
        assert fresh in ids

    def test_batch_rejects_dead_and_unknown_ids(self, churned):
        oracle, inserted = churned
        with pytest.raises(KeyError):
            oracle.query_batch([0], [4])          # tombstoned base POI
        with pytest.raises(KeyError):
            oracle.query_batch([inserted[1]], [0])  # deleted overlay POI
        with pytest.raises(KeyError):
            oracle.query_batch([0], [9999])       # never existed

    def test_query_matrix_over_live_ids(self, churned):
        import numpy as np
        oracle, _ = churned
        ids = oracle.live_ids()
        matrix = oracle.query_matrix()
        assert matrix.shape == (ids.size, ids.size)
        assert (np.diag(matrix) == 0.0).all()
        for i, a in enumerate(ids):
            for j, b in enumerate(ids):
                assert matrix[i, j] == oracle.query(int(a), int(b))

    def test_query_many_shim_removed(self, churned):
        # The deprecated list-of-pairs shim is gone; query_batch is
        # the one batched entry point.
        oracle, _ = churned
        assert not hasattr(oracle, "query_many")
        pairs = [(0, 5), (5, 0), (3, 3)]
        batched = oracle.query_batch([a for a, _ in pairs],
                                     [b for _, b in pairs])
        assert list(batched) == [oracle.query(a, b) for a, b in pairs]

    def test_protocol_flags(self, dyn):
        _, _, oracle = dyn
        from repro.core import DistanceIndex
        assert isinstance(oracle, DistanceIndex)
        assert oracle.supports_updates
        assert not oracle.is_compiled      # nothing compiled yet
        oracle.query_batch([0], [1])       # first batch compiles the base
        assert oracle.is_compiled

    def test_empty_batch(self, dyn):
        _, _, oracle = dyn
        assert oracle.query_batch([], []).shape == (0,)


class TestStoreBackedBase:
    """DynamicSEOracle.from_store: mmap'd compiled base + overlay."""

    @pytest.fixture()
    def stored_pair(self, tmp_path):
        from repro.core import SEOracle, open_oracle, pack_oracle
        from repro.geodesic import GeodesicEngine
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=15.0, seed=41)
        pois = sample_uniform(mesh, 12, seed=42)
        engine = GeodesicEngine(mesh, pois, points_per_edge=1)
        static = SEOracle(engine, epsilon=0.25, seed=1).build()
        path = tmp_path / "base.store"
        pack_oracle(static, path)
        stored = open_oracle(path, engine=engine)
        return static, stored, engine

    def test_base_answers_bit_identical(self, stored_pair):
        import numpy as np
        from repro.core import DynamicSEOracle
        static, stored, engine = stored_pair
        dyn = DynamicSEOracle.from_store(stored, engine,
                                         rebuild_factor=5.0)
        assert dyn.is_compiled          # the mmap'd tables, no build
        assert dyn.rebuild_count == 0   # never rebuilt
        n = engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        assert (dyn.query_batch(np.repeat(grid, n), np.tile(grid, n))
                == static.query_batch(np.repeat(grid, n),
                                      np.tile(grid, n))).all()

    def test_updates_on_mapped_base(self, stored_pair):
        from repro.core import DynamicSEOracle
        _, stored, engine = stored_pair
        dyn = DynamicSEOracle.from_store(stored, engine,
                                         rebuild_factor=5.0)
        fresh = dyn.insert(45.0, 45.0)
        dyn.delete(3)
        assert dyn.query(fresh, 0) > 0
        batched = dyn.query_batch([fresh, 0], [0, fresh])
        assert batched[0] == batched[1] == dyn.query(fresh, 0)
        with pytest.raises(KeyError):
            dyn.query(3, 0)

    def test_adopt_store_requires_clean_overlay(self, stored_pair):
        from repro.core import DynamicSEOracle
        _, stored, engine = stored_pair
        dyn = DynamicSEOracle.from_store(stored, engine,
                                         rebuild_factor=5.0)
        dyn.insert(45.0, 45.0)
        with pytest.raises(RuntimeError):
            dyn.adopt_store(stored)
