"""Tests for the multi-terrain serving layer (OracleService)."""

import numpy as np
import pytest

from repro.core import SEOracle, pack_oracle
from repro.geodesic import GeodesicEngine
from repro.queries import (
    k_nearest_neighbors,
    range_query,
    reverse_nearest_neighbors,
)
from repro.serving import OracleService
from repro.terrain import make_terrain, sample_uniform


def _build(seed: int, pois: int = 12, epsilon: float = 0.3) -> SEOracle:
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=seed)
    poi_set = sample_uniform(mesh, pois, seed=seed + 1)
    engine = GeodesicEngine(mesh, poi_set, points_per_edge=1)
    return SEOracle(engine, epsilon, seed=seed).build()


@pytest.fixture(scope="module")
def terrains(tmp_path_factory):
    """Three packed terrains with their in-memory reference oracles."""
    tmp = tmp_path_factory.mktemp("terrains")
    result = {}
    for index, name in enumerate(("alps", "andes", "atlas")):
        oracle = _build(seed=41 + index, pois=10 + 2 * index)
        path = tmp / f"{name}.store"
        pack_oracle(oracle, path)
        result[name] = (path, oracle)
    return result


@pytest.fixture()
def service(terrains):
    service = OracleService(max_resident=2)
    for name, (path, _) in terrains.items():
        service.register(name, str(path))
    return service


class TestRegistry:
    def test_register_returns_meta(self, terrains):
        service = OracleService()
        path, oracle = terrains["alps"]
        meta = service.register("alps", str(path))
        assert meta["epsilon"] == oracle.epsilon
        assert service.terrains() == ["alps"]

    def test_register_does_not_load(self, service):
        assert service.resident_terrains() == []

    def test_unknown_terrain(self, service):
        with pytest.raises(KeyError):
            service.query("everest", 0, 1)
        with pytest.raises(KeyError):
            service.counters("everest")

    def test_describe(self, service, terrains):
        info = service.describe("andes")
        assert info["resident"] is False
        assert info["path"] == str(terrains["andes"][0])

    def test_unregister(self, service):
        service.unregister("alps")
        assert "alps" not in service.terrains()
        with pytest.raises(KeyError):
            service.query("alps", 0, 1)

    def test_reregister_drops_residency(self, service, terrains):
        service.query("alps", 0, 1)
        assert "alps" in service.resident_terrains()
        service.register("alps", str(terrains["alps"][0]))
        assert "alps" not in service.resident_terrains()
        # counters survive re-registration; the dropped residency is
        # accounted as an eviction
        assert service.counters("alps").queries == 1
        assert service.counters("alps").evictions == 1

    def test_max_resident_validation(self):
        with pytest.raises(ValueError):
            OracleService(max_resident=0)


class TestRouting:
    def test_queries_match_source_oracles(self, service, terrains):
        for name, (_, oracle) in terrains.items():
            n = oracle.engine.num_pois
            for source in range(0, n, 3):
                for target in range(n):
                    assert service.query(name, source, target) \
                        == oracle.query(source, target)

    def test_batch_matches_source_oracle(self, service, terrains):
        _, oracle = terrains["andes"]
        n = oracle.engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        assert (service.query_batch("andes", sources, targets)
                == oracle.query_batch(sources, targets)).all()

    def test_matrix_matches_source_oracle(self, service, terrains):
        _, oracle = terrains["atlas"]
        assert (service.query_matrix("atlas")
                == oracle.query_matrix()).all()

    def test_proximity_matches_direct_calls(self, service, terrains):
        _, oracle = terrains["alps"]
        n = oracle.engine.num_pois
        compiled = oracle.compiled()
        radius = oracle.query(0, 3)
        for source in range(n):
            assert service.k_nearest("alps", source, 3) \
                == k_nearest_neighbors(compiled, source, 3, n)
            assert service.range_query("alps", source, radius) \
                == range_query(compiled, source, radius, n)
            assert service.reverse_nearest("alps", source) \
                == reverse_nearest_neighbors(compiled, source, n)


class TestResidency:
    def test_lru_eviction(self, service):
        service.query("alps", 0, 1)
        service.query("andes", 0, 1)
        assert service.resident_terrains() == ["alps", "andes"]
        service.query("atlas", 0, 1)  # bound is 2: alps evicted
        assert service.resident_terrains() == ["andes", "atlas"]
        assert service.counters("alps").evictions == 1

    def test_recent_use_protects_from_eviction(self, service):
        service.query("alps", 0, 1)
        service.query("andes", 0, 1)
        service.query("alps", 0, 2)  # alps now most recent
        service.query("atlas", 0, 1)  # andes evicted, not alps
        assert set(service.resident_terrains()) == {"alps", "atlas"}

    def test_reload_after_eviction_counts_load(self, service):
        service.query("alps", 0, 1)
        service.query("andes", 0, 1)
        service.query("atlas", 0, 1)
        service.query("alps", 0, 1)  # cold again
        counters = service.counters("alps")
        assert counters.loads == 2
        assert counters.load_seconds > 0.0

    def test_explicit_evict(self, service):
        service.query("alps", 0, 1)
        assert service.evict("alps") is True
        assert service.evict("alps") is False
        assert service.resident_terrains() == []


class TestCounters:
    def test_query_and_batch_counts(self, service):
        service.query("alps", 0, 1)
        service.query_batch("alps", [0, 1, 2], [3, 4, 5])
        counters = service.counters("alps")
        assert counters.queries == 4
        assert counters.batches == 2
        assert counters.loads == 1
        assert counters.hits == 1  # second dispatch reused the tables
        assert counters.query_seconds > 0.0

    def test_stats_report(self, service):
        service.query("andes", 0, 1)
        stats = service.stats()
        assert set(stats) == {"alps", "andes", "atlas"}
        assert stats["andes"]["resident"] is True
        assert stats["andes"]["queries"] == 1
        assert stats["andes"]["num_pois"] is not None
        assert stats["alps"]["resident"] is False
        assert stats["alps"]["mean_batch_seconds"] == 0.0
