"""Tests for the multi-terrain serving layer (OracleService)."""

import numpy as np
import pytest

from repro.core import SEOracle, pack_oracle
from repro.geodesic import GeodesicEngine
from repro.queries import (
    k_nearest_neighbors,
    range_query,
    reverse_nearest_neighbors,
)
from repro.serving import OracleService
from repro.terrain import make_terrain, sample_uniform


def _build(seed: int, pois: int = 12, epsilon: float = 0.3) -> SEOracle:
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=seed)
    poi_set = sample_uniform(mesh, pois, seed=seed + 1)
    engine = GeodesicEngine(mesh, poi_set, points_per_edge=1)
    return SEOracle(engine, epsilon, seed=seed).build()


@pytest.fixture(scope="module")
def terrains(tmp_path_factory):
    """Three packed terrains with their in-memory reference oracles."""
    tmp = tmp_path_factory.mktemp("terrains")
    result = {}
    for index, name in enumerate(("alps", "andes", "atlas")):
        oracle = _build(seed=41 + index, pois=10 + 2 * index)
        path = tmp / f"{name}.store"
        pack_oracle(oracle, path)
        result[name] = (path, oracle)
    return result


@pytest.fixture()
def service(terrains):
    service = OracleService(max_resident=2)
    for name, (path, _) in terrains.items():
        service.register(name, str(path))
    return service


class TestRegistry:
    def test_register_returns_meta(self, terrains):
        service = OracleService()
        path, oracle = terrains["alps"]
        meta = service.register("alps", str(path))
        assert meta["epsilon"] == oracle.epsilon
        assert service.terrains() == ["alps"]

    def test_register_does_not_load(self, service):
        assert service.resident_terrains() == []

    def test_unknown_terrain(self, service):
        with pytest.raises(KeyError):
            service.query("everest", 0, 1)
        with pytest.raises(KeyError):
            service.counters("everest")

    def test_describe(self, service, terrains):
        info = service.describe("andes")
        assert info["resident"] is False
        assert info["path"] == str(terrains["andes"][0])

    def test_unregister(self, service):
        service.unregister("alps")
        assert "alps" not in service.terrains()
        with pytest.raises(KeyError):
            service.query("alps", 0, 1)

    def test_reregister_drops_residency(self, service, terrains):
        service.query("alps", 0, 1)
        assert "alps" in service.resident_terrains()
        service.register("alps", str(terrains["alps"][0]))
        assert "alps" not in service.resident_terrains()
        # counters survive re-registration; the dropped residency is
        # accounted as an eviction
        assert service.counters("alps").queries == 1
        assert service.counters("alps").evictions == 1

    def test_max_resident_validation(self):
        with pytest.raises(ValueError):
            OracleService(max_resident=0)


class TestRouting:
    def test_queries_match_source_oracles(self, service, terrains):
        for name, (_, oracle) in terrains.items():
            n = oracle.engine.num_pois
            for source in range(0, n, 3):
                for target in range(n):
                    assert service.query(name, source, target) \
                        == oracle.query(source, target)

    def test_batch_matches_source_oracle(self, service, terrains):
        _, oracle = terrains["andes"]
        n = oracle.engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        sources = np.repeat(grid, n)
        targets = np.tile(grid, n)
        assert (service.query_batch("andes", sources, targets)
                == oracle.query_batch(sources, targets)).all()

    def test_matrix_matches_source_oracle(self, service, terrains):
        _, oracle = terrains["atlas"]
        assert (service.query_matrix("atlas")
                == oracle.query_matrix()).all()

    def test_proximity_matches_direct_calls(self, service, terrains):
        _, oracle = terrains["alps"]
        n = oracle.engine.num_pois
        compiled = oracle.compiled()
        radius = oracle.query(0, 3)
        for source in range(n):
            assert service.k_nearest("alps", source, 3) \
                == k_nearest_neighbors(compiled, source, 3, n)
            assert service.range_query("alps", source, radius) \
                == range_query(compiled, source, radius, n)
            assert service.reverse_nearest("alps", source) \
                == reverse_nearest_neighbors(compiled, source, n)


class TestResidency:
    def test_lru_eviction(self, service):
        service.query("alps", 0, 1)
        service.query("andes", 0, 1)
        assert service.resident_terrains() == ["alps", "andes"]
        service.query("atlas", 0, 1)  # bound is 2: alps evicted
        assert service.resident_terrains() == ["andes", "atlas"]
        assert service.counters("alps").evictions == 1

    def test_recent_use_protects_from_eviction(self, service):
        service.query("alps", 0, 1)
        service.query("andes", 0, 1)
        service.query("alps", 0, 2)  # alps now most recent
        service.query("atlas", 0, 1)  # andes evicted, not alps
        assert set(service.resident_terrains()) == {"alps", "atlas"}

    def test_reload_after_eviction_counts_load(self, service):
        service.query("alps", 0, 1)
        service.query("andes", 0, 1)
        service.query("atlas", 0, 1)
        service.query("alps", 0, 1)  # cold again
        counters = service.counters("alps")
        assert counters.loads == 2
        assert counters.load_seconds > 0.0

    def test_explicit_evict(self, service):
        service.query("alps", 0, 1)
        assert service.evict("alps") is True
        assert service.evict("alps") is False
        assert service.resident_terrains() == []


class TestCounters:
    def test_query_and_batch_counts(self, service):
        service.query("alps", 0, 1)
        service.query_batch("alps", [0, 1, 2], [3, 4, 5])
        counters = service.counters("alps")
        assert counters.queries == 4
        assert counters.batches == 2
        assert counters.loads == 1
        assert counters.hits == 1  # second dispatch reused the tables
        assert counters.query_seconds > 0.0

    def test_stats_report(self, service):
        service.query("andes", 0, 1)
        stats = service.stats()
        assert set(stats) == {"alps", "andes", "atlas"}
        assert stats["andes"]["resident"] is True
        assert stats["andes"]["queries"] == 1
        assert stats["andes"]["num_pois"] is not None
        assert stats["alps"]["resident"] is False
        assert stats["alps"]["mean_batch_seconds"] == 0.0


# ----------------------------------------------------------------------
# mutable terrains
# ----------------------------------------------------------------------
@pytest.fixture()
def mutable_setup(tmp_path):
    """A mutable registration plus its workload engine and reference."""
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=51)
    poi_set = sample_uniform(mesh, 12, seed=52)
    engine = GeodesicEngine(mesh, poi_set, points_per_edge=1)
    oracle = SEOracle(engine, epsilon=0.3, seed=51).build()
    path = tmp_path / "mutable.store"
    pack_oracle(oracle, path)
    service = OracleService(max_resident=2)
    service.register_mutable("dunes", str(path), engine,
                             rebuild_factor=10.0)
    return service, engine, oracle, path


class TestMutableRegistration:
    def test_wrong_workload_rejected(self, mutable_setup, tmp_path):
        service, _, _, path = mutable_setup
        other_mesh = make_terrain(grid_exponent=3, seed=999)
        other = GeodesicEngine(other_mesh,
                               sample_uniform(other_mesh, 12, seed=1),
                               points_per_edge=1)
        with pytest.raises(ValueError):
            service.register_mutable("wrong", str(path), other)

    def test_pinned_outside_lru(self, mutable_setup):
        service, _, _, _ = mutable_setup
        service.query("dunes", 0, 1)
        assert "dunes" not in service.resident_terrains()
        assert service.evict("dunes") is False
        assert service.describe("dunes")["resident"] is True

    def test_static_terrain_rejects_updates(self, service):
        with pytest.raises(ValueError, match="not mutable"):
            service.insert_poi("alps", 10.0, 10.0)
        with pytest.raises(ValueError, match="not mutable"):
            service.delete_poi("alps", 0)
        with pytest.raises(ValueError, match="not mutable"):
            service.flush("alps")

    def test_oracle_accessor_rejects_mutable(self, mutable_setup):
        service, _, _, _ = mutable_setup
        with pytest.raises(ValueError, match="mutable"):
            service.oracle("dunes")

    def test_base_answers_match_packed_oracle(self, mutable_setup):
        service, engine, oracle, _ = mutable_setup
        n = engine.num_pois
        grid = np.arange(n, dtype=np.intp)
        assert (service.query_batch("dunes", np.repeat(grid, n),
                                    np.tile(grid, n))
                == oracle.query_batch(np.repeat(grid, n),
                                      np.tile(grid, n))).all()


class TestMutableLifecycle:
    """The acceptance flow: insert -> query -> delete -> flush, with
    query/batch/kNN/range/RNN correct at every step."""

    def test_full_lifecycle(self, mutable_setup):
        service, engine, _, _ = mutable_setup
        overlay = service._registry["dunes"].overlay

        # Insert, then query it every way.
        fresh = service.insert_poi("dunes", 45.0, 45.0)
        assert fresh == engine.num_pois
        d = service.query("dunes", fresh, 0)
        assert 0 < d < float("inf")
        batched = service.query_batch("dunes", [fresh, 0, 1],
                                      [0, fresh, 2])
        assert batched[0] == d == batched[1]
        assert batched[2] == service.query("dunes", 1, 2)

        # Proximity queries see the inserted POI and match the scalar
        # reference over the live ids.
        from repro.queries import (
            k_nearest_neighbors_scalar,
            range_query_scalar,
            reverse_nearest_neighbors_scalar,
        )
        live = overlay.live_ids()
        knn = service.k_nearest("dunes", fresh, 3)
        assert knn == k_nearest_neighbors_scalar(
            overlay, fresh, 3, candidates=live)
        radius = knn[-1][1]
        hits = service.range_query("dunes", fresh, radius)
        assert hits == range_query_scalar(
            overlay, fresh, radius, candidates=live)
        rnn = service.reverse_nearest("dunes", 0)
        assert rnn == reverse_nearest_neighbors_scalar(
            overlay, 0, candidates=live)

        # Delete a base POI: it disappears from every query surface.
        service.delete_poi("dunes", 3)
        with pytest.raises(KeyError):
            service.query("dunes", 3, 0)
        assert 3 not in [poi for poi, _ in
                         service.k_nearest("dunes", 0, 20)]
        assert 3 not in service.reverse_nearest("dunes", 0)

        # Flush: rebuild + repack; everything still answers, external
        # ids stay stable, the overlay is folded into the base.
        stats_before = service.stats()["dunes"]
        assert stats_before["dirty"] is True
        meta = service.flush("dunes")
        assert meta["stats"]["pairs_stored"] > 0
        assert service.stats()["dunes"]["dirty"] is False
        assert service.stats()["dunes"]["flushes"] == 1
        assert overlay.overlay_size == 0
        assert service.query("dunes", fresh, 0) > 0
        with pytest.raises(KeyError):
            service.query("dunes", 3, 0)
        knn_after = service.k_nearest("dunes", fresh, 3)
        assert knn_after == k_nearest_neighbors_scalar(
            overlay, fresh, 3, candidates=overlay.live_ids())
        assert service.reverse_nearest("dunes", 0) == \
            reverse_nearest_neighbors_scalar(
                overlay, 0, candidates=overlay.live_ids())

    def test_flush_reopens_store_from_disk(self, mutable_setup):
        from repro.core import open_oracle
        service, engine, _, path = mutable_setup
        fresh = service.insert_poi("dunes", 40.0, 60.0)
        service.flush("dunes")
        # The on-disk store now covers the grown POI set and serves
        # the same answers as the live overlay.
        stored = open_oracle(str(path))
        overlay = service._registry["dunes"].overlay
        assert stored.num_pois == overlay.num_pois
        live = overlay.live_ids()
        sources = np.repeat(live, live.size)
        targets = np.tile(live, live.size)
        slot = {int(ext): i for i, ext in enumerate(live)}
        remap_s = np.array([slot[int(e)] for e in sources], dtype=np.intp)
        remap_t = np.array([slot[int(e)] for e in targets], dtype=np.intp)
        assert (overlay.query_batch(sources, targets)
                == stored.query_batch(remap_s, remap_t)).all()
        assert fresh in live

    def test_flush_without_updates_is_noop(self, mutable_setup):
        import os
        service, _, _, path = mutable_setup
        before = os.path.getmtime(path)
        meta = service.flush("dunes")
        assert meta["version"] == 4
        assert os.path.getmtime(path) == before
        assert service.stats()["dunes"]["flushes"] == 0

    def test_update_counters(self, mutable_setup):
        service, _, _, _ = mutable_setup
        service.insert_poi("dunes", 30.0, 30.0)
        service.insert_poi("dunes", 60.0, 60.0)
        service.delete_poi("dunes", 1)
        stats = service.stats()["dunes"]
        assert stats["updates"] == 3
        assert stats["mutable"] is True
        assert stats["overlay_size"] == 2

    def test_reregister_over_dirty_overlay_refused(self, mutable_setup):
        """Unflushed updates must never be dropped silently: both
        register and register_mutable refuse, flush unblocks."""
        service, engine, _, path = mutable_setup
        service.insert_poi("dunes", 30.0, 30.0)
        with pytest.raises(ValueError, match="unflushed"):
            service.register("dunes", str(path))
        with pytest.raises(ValueError, match="unflushed"):
            service.register_mutable("dunes", str(path), engine)
        service.flush("dunes")
        service.register("dunes", str(path))
        assert service.describe("dunes")["mutable"] is False
        with pytest.raises(ValueError, match="not mutable"):
            service.insert_poi("dunes", 10.0, 10.0)

    def test_failed_flush_cleans_temp_and_stays_dirty(self,
                                                     mutable_setup,
                                                     monkeypatch):
        import os
        service, _, _, path = mutable_setup
        service.insert_poi("dunes", 30.0, 30.0)

        def broken_pack(oracle, temp_path, **kwargs):
            with open(temp_path, "wb") as handle:
                handle.write(b"partial")
            raise OSError("disk full")

        monkeypatch.setattr("repro.serving.service.pack_oracle",
                            broken_pack)
        with pytest.raises(OSError, match="disk full"):
            service.flush("dunes")
        assert not os.path.exists(str(path) + ".flush.tmp")
        assert service.stats()["dunes"]["dirty"] is True
        # The overlay keeps serving, and a later (healthy) flush works.
        assert service.query("dunes", 0, 1) > 0
        monkeypatch.undo()
        service.flush("dunes")
        assert service.stats()["dunes"]["dirty"] is False

    def test_adopt_store_rejects_different_oracle(self, mutable_setup,
                                                  tmp_path):
        """The same workload packed with a different epsilon must not
        be adoptable as 'the current base'."""
        from repro.core import open_oracle
        service, engine, _, _ = mutable_setup
        other = SEOracle(engine, epsilon=0.6, seed=51).build()
        other_path = tmp_path / "other.store"
        pack_oracle(other, other_path)
        overlay = service._registry["dunes"].overlay
        with pytest.raises(ValueError, match="epsilon"):
            overlay.adopt_store(open_oracle(other_path, engine=engine))
