"""Query-equivalence harness: compiled vs scalar vs ground truth.

The compiled oracle's whole claim is that ``query_batch`` is the
*same function* as ``SEOracle.query``, just vectorized — so this suite
asserts bit-identity (not approximate closeness) between the two
across an epsilon × terrain-size × POI-layout grid, on seeded random
pair workloads plus the degenerate cases (source == target, adjacent
leaves, a single-POI terrain).  Against :class:`FullAPSPBaseline`
ground truth the assertion is Theorem 1's ε bound, since the oracle is
approximate by design.
"""

import numpy as np
import pytest

from repro.baselines import FullAPSPBaseline
from repro.core import CompiledOracle, SEOracle, compile_oracle
from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, sample_clustered, sample_uniform

# (name, grid_exponent, poi_count, layout, epsilon)
GRID = [
    ("small-uniform-loose", 3, 14, "uniform", 0.5),
    ("small-uniform-tight", 3, 14, "uniform", 0.1),
    ("small-clustered", 3, 18, "clustered", 0.25),
    ("medium-uniform", 4, 30, "uniform", 0.25),
    ("medium-clustered-tight", 4, 24, "clustered", 0.1),
]


def build_workload(exponent: int, poi_count: int, layout: str,
                   epsilon: float, seed: int = 71):
    mesh = make_terrain(grid_exponent=exponent,
                        extent=(120.0 * exponent, 100.0 * exponent),
                        relief=20.0 * exponent, seed=seed)
    sampler = sample_uniform if layout == "uniform" else sample_clustered
    pois = sampler(mesh, poi_count, seed=seed + 1)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, epsilon, seed=seed + 2).build()
    return engine, oracle


def random_pairs(num_pois: int, count: int, seed: int):
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, num_pois, size=count).astype(np.intp)
    targets = rng.integers(0, num_pois, size=count).astype(np.intp)
    return sources, targets


@pytest.mark.parametrize(
    "name,exponent,poi_count,layout,epsilon",
    GRID, ids=[row[0] for row in GRID])
class TestGridEquivalence:
    def test_batch_bit_identical_to_scalar(self, name, exponent,
                                           poi_count, layout, epsilon):
        _, oracle = build_workload(exponent, poi_count, layout, epsilon)
        sources, targets = random_pairs(poi_count, 400, seed=17)
        batched = oracle.query_batch(sources, targets)
        scalar = np.array([oracle.query(int(s), int(t))
                           for s, t in zip(sources, targets)])
        # Bitwise, not approx: the compiled path must return the very
        # float the scalar walk returns.
        assert (batched == scalar).all()

    def test_full_product_bit_identical(self, name, exponent, poi_count,
                                        layout, epsilon):
        _, oracle = build_workload(exponent, poi_count, layout, epsilon)
        matrix = oracle.query_matrix()
        for source in range(poi_count):
            for target in range(poi_count):
                assert matrix[source, target] \
                    == oracle.query(source, target)

    def test_within_epsilon_of_ground_truth(self, name, exponent,
                                            poi_count, layout, epsilon):
        engine, oracle = build_workload(exponent, poi_count, layout,
                                        epsilon)
        exact = FullAPSPBaseline(engine).build()
        sources, targets = random_pairs(poi_count, 150, seed=23)
        batched = oracle.query_batch(sources, targets)
        truth = exact.query_batch(sources, targets)
        nonzero = truth > 0
        errors = np.abs(batched[nonzero] - truth[nonzero]) \
            / truth[nonzero]
        assert errors.max() <= epsilon + 1e-9
        assert (batched[~nonzero] == truth[~nonzero]).all()


class TestDegenerateCases:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(3, 16, "uniform", 0.25, seed=91)

    def test_source_equals_target(self, workload):
        _, oracle = workload
        ids = np.arange(16, dtype=np.intp)
        batched = oracle.query_batch(ids, ids)
        assert (batched == 0.0).all()
        for poi in range(16):
            assert oracle.query(poi, poi) == 0.0

    def test_adjacent_leaves(self, workload):
        """The closest POI pair (adjacent leaves) resolves identically."""
        engine, oracle = workload
        exact = FullAPSPBaseline(engine).build()
        matrix = exact.matrix().copy()
        np.fill_diagonal(matrix, np.inf)
        source, target = np.unravel_index(np.argmin(matrix), matrix.shape)
        batched = oracle.query_batch(
            np.array([source, target]), np.array([target, source]))
        assert batched[0] == oracle.query(int(source), int(target))
        assert batched[1] == oracle.query(int(target), int(source))

    def test_empty_batch(self, workload):
        _, oracle = workload
        result = oracle.query_batch(np.empty(0, dtype=np.intp),
                                    np.empty(0, dtype=np.intp))
        assert result.shape == (0,)

    def test_out_of_range_ids_rejected(self, workload):
        _, oracle = workload
        with pytest.raises(IndexError):
            oracle.query_batch(np.array([0]), np.array([99]))
        with pytest.raises(IndexError):
            oracle.query_batch(np.array([-1]), np.array([0]))

    def test_misaligned_batch_rejected(self, workload):
        _, oracle = workload
        with pytest.raises(ValueError):
            oracle.query_batch(np.array([0, 1]), np.array([1]))

    def test_single_poi_terrain(self):
        mesh = make_terrain(grid_exponent=2, extent=(50.0, 50.0),
                            relief=8.0, seed=5)
        pois = sample_uniform(mesh, 1, seed=6)
        engine = GeodesicEngine(mesh, pois, points_per_edge=1)
        oracle = SEOracle(engine, epsilon=0.25, seed=7).build()
        assert oracle.query(0, 0) == 0.0
        batched = oracle.query_batch(np.array([0]), np.array([0]))
        assert batched[0] == 0.0
        assert oracle.query_matrix().shape == (1, 1)


class TestCompiledLifecycle:
    def test_compile_is_cached_and_refreshable(self):
        _, oracle = build_workload(3, 12, "uniform", 0.5, seed=51)
        assert not oracle.is_compiled
        first = oracle.compiled()
        assert oracle.is_compiled
        assert oracle.compiled() is first
        assert oracle.compiled(refresh=True) is not first

    def test_rebuild_invalidates_cache(self):
        _, oracle = build_workload(3, 12, "uniform", 0.5, seed=52)
        stale = oracle.compiled()
        oracle.build()
        assert not oracle.is_compiled
        assert oracle.compiled() is not stale

    def test_unbuilt_oracle_rejected(self):
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=15.0, seed=53)
        pois = sample_uniform(mesh, 8, seed=54)
        oracle = SEOracle(GeodesicEngine(mesh, pois), epsilon=0.25)
        with pytest.raises(RuntimeError):
            compile_oracle(oracle)

    def test_chain_matrix_matches_layer_arrays(self):
        _, oracle = build_workload(3, 12, "uniform", 0.5, seed=55)
        compiled = oracle.compiled()
        tree = oracle.tree
        chains = compiled.chains
        assert chains.shape == (12, tree.height + 1)
        for poi in range(12):
            expected = [-1 if node is None else node
                        for node in tree.layer_array(poi)]
            assert chains[poi].tolist() == expected

    def test_chains_view_is_read_only(self):
        _, oracle = build_workload(3, 12, "uniform", 0.5, seed=56)
        compiled = oracle.compiled()
        with pytest.raises(ValueError):
            compiled.chains[0, 0] = 7

    def test_size_bytes_positive(self):
        _, oracle = build_workload(3, 12, "uniform", 0.5, seed=57)
        assert oracle.compiled().size_bytes() > 0

    def test_raw_constructor_rejects_bad_chains(self):
        _, oracle = build_workload(3, 12, "uniform", 0.5, seed=58)
        with pytest.raises(ValueError):
            CompiledOracle(np.zeros(4, dtype=np.int64),
                           oracle.pair_hash, 0.5)
