"""Smoke tests for the figure runners (tiny scale, minimal sweeps).

The full sweeps run as benchmarks; these tests pin the runner
interfaces: series shapes, method rosters, render output.
"""

import pytest

from repro.experiments import (
    figure8,
    figure9,
    figure10,
    figure11,
    figure13,
    figure14,
)


class TestFigureRunners:
    def test_figure8_series_shape(self, capsys):
        series = figure8("tiny", epsilons=(0.25,), num_queries=5,
                         render=True)
        assert list(series) == ["0.25"]
        methods = [r.method for r in series["0.25"]]
        assert methods == ["SE(Greedy)", "SE(Random)", "SE-Naive",
                           "SP-Oracle", "K-Algo"]
        out = capsys.readouterr().out
        assert "Figure 8" in out and "(d) Error" in out

    def test_figure9_sp_oracle_row_replicated(self):
        series = figure9("tiny", poi_counts=(8, 12), num_queries=5)
        rows = list(series.values())
        sp_first = next(r for r in rows[0] if r.method == "SP-Oracle")
        sp_second = next(r for r in rows[1] if r.method == "SP-Oracle")
        # POI-independent: the same measurement is reused.
        assert sp_first is sp_second

    def test_figure10_sorted_by_actual_N(self):
        series = figure10("tiny", vertex_targets=(30, 81), num_queries=5)
        n_values = [int(k) for k in series]
        assert n_values == sorted(n_values)
        for results in series.values():
            assert [r.method for r in results] == ["SE(Random)", "K-Algo"]

    def test_figure11_v2v_methods(self):
        series = figure11("tiny", vertex_targets=(16,), num_queries=5)
        (key, results), = series.items()
        assert [r.method for r in results] \
            == ["SE(Random)", "SP-Oracle", "K-Algo"]
        # V2V: POIs are vertices, n = N.
        assert int(key) >= 16

    @pytest.mark.parametrize("runner,title", [(figure13, "Figure 13"),
                                              (figure14, "Figure 14")])
    def test_epsilon_figures(self, runner, title, capsys):
        series = runner("tiny", epsilons=(0.2,), num_queries=5,
                        render=True)
        assert "0.2" in series
        assert title in capsys.readouterr().out
