"""Tests for capacity dimension estimation and error statistics."""

import math

import pytest

from repro.analysis import (
    estimate_capacity_dimension,
    measure_errors,
    relative_error,
)
from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, sample_uniform


class TestRelativeError:
    def test_exact_match(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_overestimate(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_underestimate(self):
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)

    def test_zero_exact_zero_approx(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_exact_nonzero_approx(self):
        assert math.isinf(relative_error(1.0, 0.0))


class TestMeasureErrors:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            measure_errors(lambda a, b: 0, lambda a, b: 0, [])

    def test_perfect_oracle(self):
        exact = {(0, 1): 4.0, (1, 2): 7.0}
        stats = measure_errors(lambda a, b: exact[(a, b)],
                               lambda a, b: exact[(a, b)],
                               [(0, 1), (1, 2)])
        assert stats.mean == 0.0
        assert stats.max == 0.0
        assert stats.count == 2
        assert stats.within_bound(0.0)

    def test_constant_error(self):
        stats = measure_errors(lambda a, b: 1.1, lambda a, b: 1.0,
                               [(0, 1)] * 5)
        assert stats.mean == pytest.approx(0.1)
        assert stats.max == pytest.approx(0.1)
        assert stats.p50 == pytest.approx(0.1)
        assert stats.within_bound(0.1 + 1e-12)
        assert not stats.within_bound(0.05)

    def test_percentiles(self):
        approximations = iter([1.0, 1.1, 1.2, 1.3, 2.0])
        stats = measure_errors(lambda a, b: next(approximations),
                               lambda a, b: 1.0,
                               [(0, i) for i in range(5)])
        assert stats.p50 == pytest.approx(0.2)
        assert stats.max == pytest.approx(1.0)
        assert stats.p95 == pytest.approx(1.0)


class TestCapacityDimension:
    @pytest.fixture(scope="class")
    def engine(self):
        mesh = make_terrain(grid_exponent=4, extent=(200.0, 200.0),
                            relief=30.0, seed=71)
        pois = sample_uniform(mesh, 40, seed=72)
        return GeodesicEngine(mesh, pois, points_per_edge=0)

    def test_too_few_pois_rejected(self):
        mesh = make_terrain(grid_exponent=3, seed=71)
        pois = sample_uniform(mesh, 2, seed=1)
        engine = GeodesicEngine(mesh, pois, points_per_edge=0)
        with pytest.raises(ValueError):
            estimate_capacity_dimension(engine)

    def test_beta_in_plausible_range(self, engine):
        """Terrain surfaces are ~2D manifolds: beta should land near
        the paper's [1.3, 1.5] band (we accept a generous envelope for
        a 40-point sample)."""
        estimate = estimate_capacity_dimension(engine, num_centers=6,
                                               radius_steps=3, seed=1)
        assert 0.5 <= estimate.beta <= 2.5
        assert estimate.per_ball

    def test_summary_format(self, engine):
        estimate = estimate_capacity_dimension(engine, num_centers=3,
                                               radius_steps=2, seed=2)
        assert "beta=" in estimate.summary()

    def test_deterministic(self, engine):
        first = estimate_capacity_dimension(engine, num_centers=4, seed=5)
        second = estimate_capacity_dimension(engine, num_centers=4, seed=5)
        assert first.beta == second.beta
