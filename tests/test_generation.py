"""Tests for synthetic terrain generation, refinement and simplification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.terrain import (
    diamond_square,
    gaussian_hills,
    heightfield_to_mesh,
    make_terrain,
    refine_centroid,
    simplify_grid,
    terrain_statistics,
    validate_mesh,
)


class TestDiamondSquare:
    def test_size(self):
        assert diamond_square(3).shape == (9, 9)
        assert diamond_square(0).shape == (2, 2)

    def test_deterministic(self):
        np.testing.assert_array_equal(diamond_square(4, seed=7),
                                      diamond_square(4, seed=7))

    def test_seed_changes_output(self):
        assert not np.array_equal(diamond_square(4, seed=1),
                                  diamond_square(4, seed=2))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            diamond_square(-1)
        with pytest.raises(ValueError):
            diamond_square(3, roughness=0.0)
        with pytest.raises(ValueError):
            diamond_square(3, roughness=1.5)

    def test_rough_surface_has_more_variation(self):
        smooth = diamond_square(5, roughness=0.3, seed=3)
        rough = diamond_square(5, roughness=0.9, seed=3)

        def high_frequency_energy(grid):
            return np.abs(np.diff(grid, axis=0)).mean()

        assert high_frequency_energy(rough) > high_frequency_energy(smooth)


class TestGaussianHills:
    def test_shape(self):
        assert gaussian_hills(17).shape == (17, 17)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            gaussian_hills(1)

    def test_nonzero_relief(self):
        grid = gaussian_hills(33, num_hills=4, seed=2)
        assert grid.max() - grid.min() > 0.1


class TestHeightfieldToMesh:
    def test_vertex_and_face_counts(self):
        mesh = heightfield_to_mesh(np.zeros((4, 5)), 3.0, 4.0)
        assert mesh.num_vertices == 20
        assert mesh.num_faces == 2 * 3 * 4

    def test_extent_respected(self):
        mesh = heightfield_to_mesh(np.zeros((5, 5)), 100.0, 50.0)
        assert mesh.xy_extent() == pytest.approx((100.0, 50.0))

    def test_z_scale(self):
        heights = np.ones((3, 3))
        mesh = heightfield_to_mesh(heights, 1.0, 1.0, z_scale=7.0)
        assert mesh.vertices[:, 2].max() == pytest.approx(7.0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            heightfield_to_mesh(np.zeros(5), 1.0, 1.0)
        with pytest.raises(ValueError):
            heightfield_to_mesh(np.zeros((1, 5)), 1.0, 1.0)

    def test_mesh_is_valid(self):
        mesh = heightfield_to_mesh(diamond_square(4, seed=1), 10.0, 10.0)
        report = validate_mesh(mesh)
        assert report.ok, report.messages


class TestMakeTerrain:
    def test_statistics_are_plausible(self):
        mesh = make_terrain(grid_exponent=4, extent=(14_000.0, 10_000.0),
                            relief=900.0, seed=0)
        stats = terrain_statistics(mesh)
        assert stats.extent_x == pytest.approx(14_000.0)
        assert stats.extent_y == pytest.approx(10_000.0)
        assert 0 < stats.relief <= 900.0 + 1e-9
        assert stats.ruggedness >= 1.0

    def test_terrain_is_manifold_patch(self):
        mesh = make_terrain(grid_exponent=4, seed=3)
        report = validate_mesh(mesh)
        assert report.ok, report.messages
        assert report.boundary_edges > 0  # open patch, not a closed surface


class TestRefineCentroid:
    def test_counts(self):
        mesh = make_terrain(grid_exponent=3, seed=1)
        refined = refine_centroid(mesh)
        assert refined.num_vertices == mesh.num_vertices + mesh.num_faces
        assert refined.num_faces == 3 * mesh.num_faces

    def test_preserves_surface_area(self):
        mesh = make_terrain(grid_exponent=3, seed=1)
        refined = refine_centroid(mesh)
        assert refined.surface_area() == pytest.approx(mesh.surface_area())

    def test_refined_is_valid(self):
        mesh = make_terrain(grid_exponent=3, seed=2)
        report = validate_mesh(refine_centroid(mesh))
        assert report.ok, report.messages

    def test_repeated_refinement_scales(self):
        mesh = make_terrain(grid_exponent=3, seed=0)
        twice = refine_centroid(refine_centroid(mesh))
        assert twice.num_faces == 9 * mesh.num_faces


class TestSimplifyGrid:
    def test_reduces_vertex_count(self):
        mesh = make_terrain(grid_exponent=5, seed=4)
        simplified = simplify_grid(mesh, target_vertices=200)
        assert simplified.num_vertices <= 220
        assert simplified.num_vertices >= 4

    def test_target_above_size_is_identity(self):
        mesh = make_terrain(grid_exponent=3, seed=4)
        assert simplify_grid(mesh, 10_000) is mesh

    def test_target_validation(self):
        mesh = make_terrain(grid_exponent=3, seed=4)
        with pytest.raises(ValueError):
            simplify_grid(mesh, 3)

    def test_covers_same_region(self):
        mesh = make_terrain(grid_exponent=5, extent=(1000.0, 800.0), seed=4)
        simplified = simplify_grid(mesh, target_vertices=150)
        orig_x, orig_y = mesh.xy_extent()
        simp_x, simp_y = simplified.xy_extent()
        assert simp_x >= 0.8 * orig_x
        assert simp_y >= 0.8 * orig_y

    def test_simplified_mesh_loads(self):
        mesh = make_terrain(grid_exponent=5, seed=9)
        simplified = simplify_grid(mesh, target_vertices=120)
        report = validate_mesh(simplified)
        # Clustering may leave minor artefacts but must stay connected
        # and produce no degenerate faces.
        assert report.degenerate_faces == 0
        assert report.is_connected


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 5), st.floats(0.2, 1.0), st.integers(0, 100))
def test_diamond_square_always_finite(exponent, roughness, seed):
    grid = diamond_square(exponent, roughness=roughness, seed=seed)
    assert np.isfinite(grid).all()


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 4), st.integers(0, 50))
def test_heightfield_mesh_is_structurally_sound(exponent, seed):
    mesh = heightfield_to_mesh(diamond_square(exponent, seed=seed), 10.0, 10.0)
    report = validate_mesh(mesh)
    assert report.ok, report.messages
