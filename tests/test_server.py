"""End-to-end tests for the asyncio TCP server: wire parity with the
direct service, typed errors, pipelining, batching/coalescing, and the
load-generator round trip.

No asyncio plumbing in the tests themselves — the server runs on its
own event-loop thread (:class:`ThreadedServer`) and the tests speak to
it through the synchronous :class:`OracleClient`.
"""

import json

import pytest

from repro.core import SEOracle, pack_oracle
from repro.geodesic import GeodesicEngine
from repro.serving import OracleService, ThreadedServer
from repro.serving.loadgen import (
    OracleClient,
    ServerError,
    closed_loop,
    open_loop,
    sample_pairs,
)
from repro.serving.protocol import PROTOCOL_VERSION
from repro.terrain import make_terrain, sample_uniform

NUM_POIS = 12


@pytest.fixture(scope="module")
def workload():
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=7)
    pois = sample_uniform(mesh, NUM_POIS, seed=8)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, 0.3, seed=7).build()
    return mesh, pois, engine, oracle


@pytest.fixture(scope="module")
def store_path(workload, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "alps.store"
    pack_oracle(workload[3], path)
    return path


@pytest.fixture(scope="module")
def served(store_path):
    """A running server over a static 'alps' terrain, plus its
    service for direct-reference answers."""
    service = OracleService(max_resident=2)
    service.register("alps", str(store_path))
    with ThreadedServer(service, max_batch=32) as server:
        yield service, server


@pytest.fixture()
def client(served):
    _, server = served
    with OracleClient(server.host, server.port) as c:
        yield c


class TestWireParity:
    def test_hello(self, served, client):
        hello = client.hello()
        assert hello["protocol"] == PROTOCOL_VERSION
        assert hello["worker"] == 0
        assert hello["workers"] == 1
        assert hello["writer"] is True
        assert "alps" in hello["terrains"]

    def test_terrains(self, client):
        assert client.terrains() == ["alps"]

    def test_query_matches_service(self, served, client):
        service, _ = served
        assert client.query("alps", 0, 5) == service.query("alps", 0, 5)
        assert client.query("alps", 3, 3) == 0.0

    def test_batch_matches_service(self, served, client):
        service, _ = served
        sources, targets = [0, 1, 2, 3], [4, 5, 6, 7]
        via_wire = client.batch("alps", sources, targets)
        direct = service.query_batch("alps", sources, targets)
        assert via_wire == [float(d) for d in direct]

    def test_knn_matches_service(self, served, client):
        service, _ = served
        via_wire = client.k_nearest("alps", 0, 3)
        direct = service.k_nearest("alps", 0, 3)
        assert via_wire == [(int(p), float(d)) for p, d in direct]

    def test_range_matches_service(self, served, client):
        service, _ = served
        via_wire = client.range_query("alps", 0, 60.0)
        direct = service.range_query("alps", 0, 60.0)
        assert via_wire == [(int(p), float(d)) for p, d in direct]

    def test_rnn_matches_service(self, served, client):
        service, _ = served
        assert client.reverse_nearest("alps", 2) == [
            int(p) for p in service.reverse_nearest("alps", 2)
        ]

    def test_describe(self, served, client):
        service, _ = served
        assert (client.describe("alps")["epsilon"]
                == service.describe("alps")["epsilon"])

    def test_stats_carry_counters(self, client):
        client.query("alps", 0, 1)
        stats = client.stats()
        assert stats["worker"] == 0
        counters = stats["terrains"]["alps"]
        assert counters["queries"] >= 1
        assert "coalesce_ratio" in counters


class TestTypedErrors:
    def expect(self, call, error_type):
        with pytest.raises(ServerError) as info:
            call()
        assert info.value.error_type == error_type

    def test_unknown_terrain(self, client):
        self.expect(lambda: client.query("nope", 0, 1), "unknown-terrain")

    def test_unknown_poi(self, client):
        self.expect(lambda: client.query("alps", 0, 9999), "unknown-poi")

    def test_negative_id(self, client):
        self.expect(lambda: client.query("alps", -1, 2), "bad-request")

    def test_update_on_static_terrain(self, client):
        self.expect(lambda: client.insert("alps", 1.0, 2.0), "not-mutable")
        self.expect(lambda: client.delete("alps", 0), "not-mutable")
        self.expect(lambda: client.flush("alps"), "not-mutable")

    def test_unknown_op(self, client):
        self.expect(lambda: client.call("frobnicate"), "unknown-op")

    def test_unsupported_version(self, client):
        stream = client.stream
        stream.write(b'{"op":"hello","v":99,"id":1}\n')
        stream.flush()
        reply = json.loads(stream.readline())
        assert reply["ok"] is False
        assert reply["error"]["type"] == "unsupported-version"
        assert reply["id"] == 1

    def test_bad_json_line(self, client):
        stream = client.stream
        stream.write(b"this is not json\n")
        stream.flush()
        reply = json.loads(stream.readline())
        assert reply["ok"] is False
        assert reply["error"]["type"] == "bad-request"
        assert reply["id"] is None

    def test_blank_lines_ignored(self, client):
        stream = client.stream
        stream.write(b"\n\n" + b'{"op":"terrains","id":9}\n')
        stream.flush()
        reply = json.loads(stream.readline())
        assert reply["id"] == 9 and reply["ok"] is True

    def test_oversized_line_closes_connection(self, served):
        _, server = served
        with OracleClient(server.host, server.port) as throwaway:
            stream = throwaway.stream
            stream.write(b'{"op":"hello","pad":"' + b"x" * (2 << 20)
                         + b'"}\n')
            stream.flush()
            reply = json.loads(stream.readline())
            assert reply["error"]["type"] == "bad-request"
            assert "too long" in reply["error"]["message"]
            # The server hangs up: either a clean EOF or a reset,
            # depending on how much of the line was still in flight.
            try:
                assert stream.readline() == b""
            except ConnectionError:
                pass

    def test_errors_do_not_poison_connection(self, client):
        with pytest.raises(ServerError):
            client.query("alps", 0, 9999)
        assert client.query("alps", 0, 1) >= 0.0


class TestPipeliningAndCoalescing:
    def test_pipelined_ids_match(self, served, client):
        service, _ = served
        pairs = sample_pairs(NUM_POIS, 40, seed=5)
        stream = client.stream
        for i, (s, t) in enumerate(pairs):
            stream.write(json.dumps(
                {"op": "query", "id": i, "terrain": "alps",
                 "source": s, "target": t}
            ).encode() + b"\n")
        stream.flush()
        for i, (s, t) in enumerate(pairs):
            reply = json.loads(stream.readline())
            assert reply["id"] == i  # responses arrive in order
            assert (reply["result"]["distance"]
                    == service.query("alps", s, t))

    def test_burst_is_coalesced(self, served):
        service, server = served
        before = service.counters("alps").server_batched_queries
        batches_before = service.counters("alps").server_batches
        with OracleClient(server.host, server.port) as c:
            stream = c.stream
            for i in range(32):
                stream.write(json.dumps(
                    {"op": "query", "id": i, "terrain": "alps",
                     "source": i % NUM_POIS,
                     "target": (i * 5) % NUM_POIS}
                ).encode() + b"\n")
            stream.flush()
            for _ in range(32):
                assert json.loads(stream.readline())["ok"] is True
        counters = service.counters("alps")
        drained = counters.server_batched_queries - before
        batches = counters.server_batches - batches_before
        assert drained == 32
        # A back-to-back pipelined burst must land in fewer probes
        # than requests — that's the whole point of the batcher.
        assert batches < 32

    def test_bad_id_in_burst_fails_alone(self, served, client):
        """Per-item fallback: one unknown POI inside a coalesced burst
        errors that request only; its neighbours still answer."""
        service, _ = served
        stream = client.stream
        sources = [0, 1, 9999, 2, 3]
        for i, s in enumerate(sources):
            stream.write(json.dumps(
                {"op": "query", "id": i, "terrain": "alps",
                 "source": s, "target": 4}
            ).encode() + b"\n")
        stream.flush()
        replies = [json.loads(stream.readline()) for _ in sources]
        assert [r["ok"] for r in replies] == [True, True, False,
                                              True, True]
        assert replies[2]["error"]["type"] == "unknown-poi"
        for reply, s in zip(replies, sources):
            if reply["ok"]:
                assert (reply["result"]["distance"]
                        == service.query("alps", s, 4))


class TestMutableVerbs:
    @pytest.fixture()
    def mutable_served(self, workload, store_path):
        mesh, pois, engine, _ = workload
        service = OracleService(max_resident=2)
        service.register_mutable("dunes", str(store_path), engine,
                                 rebuild_factor=10.0)
        with ThreadedServer(service, max_batch=16) as server:
            with OracleClient(server.host, server.port) as c:
                yield service, c

    def test_insert_query_delete(self, mutable_served):
        service, c = mutable_served
        new_id = c.insert("dunes", 40.0, 40.0)
        assert new_id == NUM_POIS
        distance = c.query("dunes", new_id, 0)
        assert distance == service.query("dunes", new_id, 0)
        c.delete("dunes", new_id)
        with pytest.raises(ServerError) as info:
            c.query("dunes", new_id, 0)
        assert info.value.error_type == "unknown-poi"

    def test_flush_returns_meta_and_queries_survive(self, mutable_served):
        service, c = mutable_served
        before = c.query("dunes", 0, 5)
        c.insert("dunes", 30.0, 60.0)
        meta = c.flush("dunes")
        assert "fingerprint" in meta
        # Distances between surviving original POIs are invariant
        # under insert + flush.
        assert c.query("dunes", 0, 5) == before


class TestLoadGenerator:
    def test_closed_loop_equivalence(self, served):
        service, server = served
        pairs = sample_pairs(NUM_POIS, 120, seed=11)
        report = closed_loop(server.host, server.port, "alps", pairs,
                             clients=4)
        assert report.mode.startswith("closed-loop")
        assert report.requests == len(pairs)
        assert report.errors == 0
        assert report.qps > 0
        assert report.latency_ms["p50"] <= report.latency_ms["p95"]
        reference = service.query_batch("alps",
                                        [s for s, _ in pairs],
                                        [t for _, t in pairs])
        assert report.distances == [float(d) for d in reference]

    def test_open_loop_equivalence(self, served):
        service, server = served
        pairs = sample_pairs(NUM_POIS, 60, seed=13)
        report = open_loop(server.host, server.port, "alps", pairs,
                           rate=500.0)
        assert report.mode.startswith("open-loop")
        assert report.errors == 0
        reference = service.query_batch("alps",
                                        [s for s, _ in pairs],
                                        [t for _, t in pairs])
        assert report.distances == [float(d) for d in reference]

    def test_report_as_dict_is_json_ready(self, served):
        _, server = served
        pairs = sample_pairs(NUM_POIS, 20, seed=17)
        report = closed_loop(server.host, server.port, "alps", pairs,
                             clients=2)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["mode"].startswith("closed-loop")
        assert set(payload["latency_ms"]) == {"p50", "p95", "p99", "max"}
