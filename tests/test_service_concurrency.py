"""Concurrency tests for :class:`OracleService`.

The service promises that concurrent callers see the same answers a
serial caller would: every public method runs under one re-entrant
lock, LRU evictions are atomic with the queries that trigger them, and
mutable updates never tear an in-flight probe.  These tests hammer the
service from many threads — with a resident budget small enough to
force constant eviction churn, and with a writer thread mutating a
terrain mid-flight — then replay every recorded answer serially and
demand bit-identical results.

Two invariants drive the mutable tests.  While updates stay in the
overlay (no flush), the mmap'd base tables are untouched, so distances
between surviving original POIs are *bit-identical* to a serial run.
A flush rebuilds the base oracle — the approximation may legitimately
shift by ulps — so flush-under-load is checked as an atomic swap
instead: every concurrent answer must equal either the pre-flush or
the post-flush serial value, never a torn in-between.
"""

import shutil
import threading

import pytest

from repro.core import SEOracle, pack_oracle
from repro.geodesic import GeodesicEngine
from repro.serving import OracleService, ThreadedServer
from repro.serving.loadgen import OracleClient, sample_pairs
from repro.terrain import make_terrain, sample_uniform

NUM_POIS = 10


def _pack(path, seed):
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=seed)
    pois = sample_uniform(mesh, NUM_POIS, seed=seed + 1)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, 0.3, seed=seed).build()
    pack_oracle(oracle, path)
    return engine


@pytest.fixture(scope="module")
def static_stores(tmp_path_factory):
    root = tmp_path_factory.mktemp("static")
    paths = {name: root / f"{name}.store" for name in ("a", "b")}
    for i, path in enumerate(paths.values()):
        _pack(path, seed=20 + i)
    return paths


@pytest.fixture(scope="module")
def pristine_mutable(tmp_path_factory):
    path = tmp_path_factory.mktemp("mutable") / "pristine.store"
    engine = _pack(path, seed=29)
    return path, engine


@pytest.fixture()
def mutable_service(pristine_mutable, tmp_path):
    """A fresh copy of the mutable store per test — flush repacks the
    file in place, which would break the next test's fingerprint."""
    pristine, engine = pristine_mutable
    path = tmp_path / "m.store"
    shutil.copyfile(pristine, path)
    service = OracleService(max_resident=2)
    service.register_mutable("m", str(path), engine,
                             rebuild_factor=10.0)
    return service


def _run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestEvictionChurn:
    def test_concurrent_queries_under_lru_thrash(self, static_stores):
        """8 threads alternating between two terrains with room for
        only one resident: every answer must match serial replay and
        the load/eviction ledgers must reconcile."""
        service = OracleService(max_resident=1)
        service.register("a", str(static_stores["a"]))
        service.register("b", str(static_stores["b"]))

        pairs = sample_pairs(NUM_POIS, 60, seed=3)
        records = []
        lock = threading.Lock()
        failures = []

        def worker(slot):
            try:
                terrain = "a" if slot % 2 == 0 else "b"
                local = []
                for i, (s, t) in enumerate(pairs):
                    # Cross over mid-run so both terrains keep
                    # evicting each other.
                    name = terrain if i % 3 else ("b" if terrain == "a"
                                                  else "a")
                    local.append((name, s, t,
                                  service.query(name, s, t)))
                with lock:
                    records.extend(local)
            except Exception as error:  # pragma: no cover
                failures.append(error)

        _run_threads([lambda slot=k: worker(slot) for k in range(8)])
        assert not failures

        # Bit-identical serial replay of every recorded answer.
        for name, s, t, answer in records:
            assert service.query(name, s, t) == answer

        total = 8 * len(pairs) + len(records)  # workers + replay
        stats = service.stats()
        assert stats["a"]["queries"] + stats["b"]["queries"] == total
        for name in ("a", "b"):
            counters = stats[name]
            assert counters["loads"] >= 1
            # Residency bookkeeping balances: every load beyond the
            # ones still resident was matched by an eviction.
            resident = name in service.resident_terrains()
            assert (counters["loads"] - counters["evictions"]
                    == (1 if resident else 0))
        assert len(service.resident_terrains()) <= 1

    def test_explicit_evict_races_with_queries(self, static_stores):
        service = OracleService(max_resident=2)
        service.register("a", str(static_stores["a"]))
        pairs = sample_pairs(NUM_POIS, 80, seed=9)
        reference = [service.query("a", s, t) for s, t in pairs]
        failures = []

        def querier():
            try:
                for (s, t), expected in zip(pairs, reference):
                    assert service.query("a", s, t) == expected
            except Exception as error:  # pragma: no cover
                failures.append(error)

        def evictor():
            for _ in range(40):
                service.evict("a")

        _run_threads([querier, querier, evictor])
        assert not failures


class TestPagedPoolChurn:
    def test_single_page_pool_under_thread_hammering(
            self, static_stores):
        """8 threads share one terrain served through a single-page
        pool — the worst paging regime, where every gather group can
        evict the previous one.  Every recorded answer must match a
        serial replay bit for bit, and the page ledger must reconcile
        after the stampede."""
        from repro.serving import TerrainSpec
        service = OracleService(max_resident=2)
        service.register("a", TerrainSpec(
            str(static_stores["a"]), max_resident_bytes=8))

        service.query("a", 0, 1)  # lazy open: materialise the pool
        ledger = service.stats()["a"]["paging"]
        assert ledger["max_pages"] == 1
        assert ledger["page_bytes"] == 8

        pairs = sample_pairs(NUM_POIS, 60, seed=5)
        records = []
        lock = threading.Lock()
        failures = []

        def worker(slot):
            try:
                local = []
                for s, t in pairs[slot % 3:]:
                    local.append((s, t, service.query("a", s, t)))
                with lock:
                    records.extend(local)
            except Exception as error:  # pragma: no cover
                failures.append(error)

        _run_threads([lambda slot=k: worker(slot) for k in range(8)])
        assert not failures
        assert records

        for s, t, answer in records:
            assert service.query("a", s, t) == answer

        ledger = service.stats()["a"]["paging"]
        assert ledger["loads"] >= 1
        assert ledger["loads"] - ledger["evictions"] \
            == ledger["resident_pages"]
        assert ledger["peak_resident_bytes"] <= ledger["budget_bytes"]
        assert service.describe("a")["paging"]["loads"] \
            >= ledger["loads"]


class TestMutableChurn:
    def test_readers_bit_identical_during_overlay_churn(
            self, mutable_service):
        """Reader threads query distances between never-deleted
        original POIs while a writer inserts and deletes overlay POIs.
        The base tables never change, so every recorded answer must
        equal its serial replay after the churn stops."""
        service = mutable_service
        stable = list(range(NUM_POIS))  # originals, never deleted
        pairs = [(s, t) for s in stable[:5] for t in stable[5:]]
        records = []
        lock = threading.Lock()
        failures = []
        stop = threading.Event()

        def reader():
            try:
                local = []
                while not stop.is_set():
                    for s, t in pairs:
                        local.append((s, t, service.query("m", s, t)))
                with lock:
                    records.extend(local)
            except Exception as error:  # pragma: no cover
                failures.append(error)

        def writer():
            try:
                for round_no in range(3):
                    fresh = [service.insert_poi("m", 20.0 + 7 * k,
                                                30.0 + 5 * k + round_no)
                             for k in range(3)]
                    for poi in fresh:
                        assert service.query("m", poi, 0) > 0
                    for poi in fresh:
                        service.delete_poi("m", poi)
            except Exception as error:  # pragma: no cover
                failures.append(error)
            finally:
                stop.set()

        _run_threads([reader, reader, writer])
        assert not failures
        assert records, "readers never got a pass in"

        for s, t, answer in records:
            assert service.query("m", s, t) == answer

        counters = service.stats()["m"]
        assert counters["updates"] == 3 * 6  # 3 inserts + 3 deletes, x3
        assert counters["flushes"] == 0

    def test_flush_under_load_is_an_atomic_swap(self, mutable_service):
        """A flush rebuilds and atomically republishes the base
        tables; concurrent readers must only ever see the pre-flush or
        the post-flush answer for a pair — never a torn in-between,
        never an error."""
        service = mutable_service
        pairs = sample_pairs(NUM_POIS, 40, seed=23)
        before = {(s, t): service.query("m", s, t) for s, t in pairs}
        records = []
        lock = threading.Lock()
        failures = []
        stop = threading.Event()

        def reader():
            try:
                local = []
                while not stop.is_set():
                    for s, t in pairs:
                        local.append((s, t, service.query("m", s, t)))
                with lock:
                    records.extend(local)
            except Exception as error:  # pragma: no cover
                failures.append(error)

        def flusher():
            try:
                poi = service.insert_poi("m", 33.0, 44.0)
                service.delete_poi("m", poi)
                service.flush("m")
            except Exception as error:  # pragma: no cover
                failures.append(error)
            finally:
                stop.set()

        _run_threads([reader, reader, flusher])
        assert not failures
        assert records

        after = {(s, t): service.query("m", s, t) for s, t in pairs}
        for s, t, answer in records:
            assert answer in (before[(s, t)], after[(s, t)])
        assert service.stats()["m"]["flushes"] == 1

    def test_background_flush_under_reader_hammering(
            self, mutable_service):
        """A background (sliced, incremental) flush runs while reader
        threads hammer the terrain: no torn reads — every answer is
        the pre-flush or post-flush serial value — one atomic
        generation swap, and the counters reconcile."""
        service = mutable_service
        pairs = sample_pairs(NUM_POIS, 40, seed=37)
        poi = service.insert_poi("m", 41.0, 52.0)
        service.delete_poi("m", poi)
        before = {(s, t): service.query("m", s, t) for s, t in pairs}
        records = []
        lock = threading.Lock()
        failures = []
        stop = threading.Event()

        def reader():
            try:
                local = []
                while not stop.is_set():
                    for s, t in pairs:
                        local.append((s, t, service.query("m", s, t)))
                with lock:
                    records.extend(local)
            except Exception as error:  # pragma: no cover
                failures.append(error)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        flusher = service.flush_background("m", slice_ssads=2)
        flusher.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert not failures
        assert "error" not in flusher.flush_outcome
        assert records, "readers never got a pass in"

        after = {(s, t): service.query("m", s, t) for s, t in pairs}
        for s, t, answer in records:
            assert answer in (before[(s, t)], after[(s, t)])

        counters = service.stats()["m"]
        assert counters["flushes"] == 1
        assert counters["flush_slices"] >= 1
        assert counters["dirty"] is False

    def test_updates_refused_while_background_flush_in_flight(
            self, mutable_service):
        """The mid-flight guard: while a background flush owns the
        terrain, updates and competing flushes are refused instead of
        silently invalidating the in-progress rebuild."""
        service = mutable_service
        registration = service._mutable("m")
        registration.flushing = True  # deterministic in-flight state
        try:
            with pytest.raises(RuntimeError, match="in\\s*flight"):
                service.insert_poi("m", 10.0, 10.0)
            with pytest.raises(RuntimeError, match="in\\s*flight"):
                service.delete_poi("m", 0)
            with pytest.raises(RuntimeError, match="in\\s*flight"):
                service.flush("m")
            with pytest.raises(RuntimeError, match="in\\s*flight"):
                service.flush_background("m")
        finally:
            registration.flushing = False
        # Queries were never blocked, and the terrain still works.
        assert service.query("m", 0, 1) > 0
        assert service.insert_poi("m", 10.0, 10.0) == NUM_POIS

    def test_idle_background_flush_is_a_noop(self, mutable_service):
        """No pending updates and a clean store: the background flush
        publishes nothing and flips no counters."""
        service = mutable_service
        thread = service.flush_background("m")
        thread.join()
        assert "error" not in thread.flush_outcome
        counters = service.stats()["m"]
        assert counters["flushes"] == 0
        assert counters["flush_slices"] == 0

    def test_server_batcher_interleaves_with_direct_updates(
            self, mutable_service):
        """Async/thread interleaving: the server's event loop coalesces
        wire queries into batched probes while this thread mutates the
        same terrain through the service directly."""
        service = mutable_service
        stable_pairs = sample_pairs(NUM_POIS, 120, seed=31)
        reference = {
            (s, t): service.query("m", s, t) for s, t in stable_pairs
        }

        with ThreadedServer(service, max_batch=16) as server:
            failures = []

            def wire_reader():
                try:
                    with OracleClient(server.host, server.port) as c:
                        for s, t in stable_pairs:
                            assert (c.query("m", s, t)
                                    == reference[(s, t)])
                except Exception as error:  # pragma: no cover
                    failures.append(error)

            def direct_writer():
                try:
                    for k in range(4):
                        poi = service.insert_poi("m", 25.0 + 6 * k,
                                                 40.0 + 4 * k)
                        service.delete_poi("m", poi)
                except Exception as error:  # pragma: no cover
                    failures.append(error)

            _run_threads([wire_reader, wire_reader, direct_writer])
            assert not failures

        # Flush after the recorded phase (a rebuild may shift the
        # approximation by ulps, which is exercised separately above).
        service.flush("m")
        counters = service.stats()["m"]
        assert counters["server_batched_queries"] == 2 * len(stable_pairs)
        assert counters["updates"] == 8
        assert counters["flushes"] == 1
