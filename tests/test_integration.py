"""End-to-end integration tests: dataset -> oracle -> applications.

These exercise the full public API path a downstream user follows,
plus hypothesis property tests asserting the paper's guarantees on
randomly generated workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FullAPSPBaseline,
    GeodesicEngine,
    KAlgo,
    SEOracle,
    k_nearest_neighbors,
    make_terrain,
    range_query,
    sample_uniform,
)
from repro.core import load_oracle, save_oracle
from repro.experiments import load_dataset


class TestFullPipeline:
    """The life of a deployment: build, persist, reload, serve queries."""

    def test_build_save_load_serve(self, tmp_path):
        dataset = load_dataset("sf-small", "tiny")
        engine = GeodesicEngine(dataset.mesh, dataset.pois,
                                points_per_edge=1)
        oracle = SEOracle(engine, epsilon=0.15, seed=6).build()
        path = tmp_path / "oracle.json"
        save_oracle(oracle, path)

        served = load_oracle(path, engine)
        exact = FullAPSPBaseline(engine).build()
        n = dataset.num_pois
        for source in range(n):
            for target in range(n):
                approx = served.query(source, target)
                true = exact.query(source, target)
                if true == 0:
                    assert approx == 0
                else:
                    assert abs(approx - true) <= 0.15 * true * (1 + 1e-6)

    def test_proximity_stack_on_oracle(self):
        dataset = load_dataset("bearhead", "tiny")
        engine = GeodesicEngine(dataset.mesh, dataset.pois,
                                points_per_edge=1)
        oracle = SEOracle(engine, epsilon=0.1, seed=2).build()
        exact = FullAPSPBaseline(engine).build()
        n = dataset.num_pois

        # kNN through the oracle agrees with exact kNN up to eps ties.
        for source in (0, n // 2):
            approx_knn = [p for p, _ in
                          k_nearest_neighbors(oracle, source, 3, n)]
            exact_order = [p for p, _ in
                           k_nearest_neighbors(exact, source, n - 1, n)]
            # Every oracle-reported neighbour is near the front of the
            # exact ranking (eps can only reorder near-ties).
            for poi in approx_knn:
                assert exact_order.index(poi) < 3 + 3

        # Range queries agree on safely-inside and safely-outside POIs.
        radius = exact.query(0, n // 2)
        approx_hits = {p for p, _ in range_query(oracle, 0, radius, n)}
        for target in range(1, n):
            true = exact.query(0, target)
            if true <= radius * (1 - 0.1):
                assert target in approx_hits
            if true > radius * (1 + 0.1):
                assert target not in approx_hits

    def test_oracle_vs_kalgo_consistency(self):
        """Two completely different code paths, one metric."""
        dataset = load_dataset("eaglepeak", "tiny")
        engine = GeodesicEngine(dataset.mesh, dataset.pois,
                                points_per_edge=1)
        oracle = SEOracle(engine, epsilon=0.05, seed=3).build()
        kalgo = KAlgo(dataset.mesh, dataset.pois, epsilon=0.05,
                      points_per_edge=1)
        for source, target in [(0, 5), (3, 11), (9, 1)]:
            se_distance = oracle.query(source, target)
            kalgo_distance = kalgo.query(source, target)
            assert se_distance == pytest.approx(kalgo_distance,
                                                rel=0.05 + 1e-9)


class TestStressScenarios:
    def test_collinear_poi_line(self):
        """POIs along a straight line: degenerate tree geometry."""
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=0.001, seed=5)
        from repro.terrain import POI, POISet
        pois = []
        for index, x in enumerate(np.linspace(10.0, 90.0, 12)):
            face = mesh.locate_face(float(x), 50.0)
            point = mesh.project_onto_surface(float(x), 50.0)
            pois.append(POI(index=index,
                            position=tuple(float(c) for c in point),
                            face_id=face))
        engine = GeodesicEngine(mesh, POISet(pois), points_per_edge=1)
        oracle = SEOracle(engine, epsilon=0.1, seed=1).build()
        # Distances along the line should be ~Euclidean and monotone.
        previous = 0.0
        for target in range(1, 12):
            distance = oracle.query(0, target)
            assert distance > previous * (1 - 0.1)
            previous = distance

    def test_tight_cluster_plus_outlier(self):
        """A dense cluster and one far POI: extreme radius ratios."""
        mesh = make_terrain(grid_exponent=4, extent=(1000.0, 1000.0),
                            relief=50.0, seed=6)
        from repro.terrain import POI, POISet
        rng = np.random.default_rng(1)
        pois = []
        for index in range(10):
            x = 100.0 + float(rng.uniform(0, 5))
            y = 100.0 + float(rng.uniform(0, 5))
            face = mesh.locate_face(x, y)
            point = mesh.project_onto_surface(x, y)
            pois.append(POI(index=index,
                            position=tuple(float(c) for c in point),
                            face_id=face))
        face = mesh.locate_face(900.0, 900.0)
        point = mesh.project_onto_surface(900.0, 900.0)
        pois.append(POI(index=10, position=tuple(float(c) for c in point),
                        face_id=face))
        engine = GeodesicEngine(mesh, POISet(pois), points_per_edge=0)
        oracle = SEOracle(engine, epsilon=0.2, seed=2).build()
        # Lemma 2: the height tracks log of the distance spread.
        assert oracle.height <= 30
        far = oracle.query(0, 10)
        near = oracle.query(0, 1)
        assert far > 50 * near

    def test_epsilon_extremes(self, small_engine):
        for epsilon in (0.01, 10.0):
            oracle = SEOracle(small_engine, epsilon=epsilon, seed=1).build()
            exact = small_engine.distance(0, 5)
            approx = oracle.query(0, 5)
            assert abs(approx - exact) <= epsilon * exact * (1 + 1e-6)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 1000), st.integers(5, 14),
       st.sampled_from([0.1, 0.25, 0.5]))
def test_property_epsilon_guarantee_random_workloads(seed, n, epsilon):
    """Paper's headline guarantee on arbitrary random workloads."""
    mesh = make_terrain(grid_exponent=3, extent=(200.0, 200.0),
                        relief=40.0, seed=seed)
    pois = sample_uniform(mesh, n, seed=seed + 1)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, epsilon=epsilon, seed=seed).build()
    exact = FullAPSPBaseline(engine).build()
    count = len(pois)
    for source in range(0, count, 3):
        for target in range(1, count, 4):
            true = exact.query(source, target)
            approx = oracle.query(source, target)
            if true == 0.0:
                assert approx == 0.0
            else:
                assert abs(approx - true) <= epsilon * true * (1 + 1e-6)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 500))
def test_property_unique_pair_match_random_workloads(seed):
    """Theorem 1's unique-covering-pair property on random workloads."""
    mesh = make_terrain(grid_exponent=3, extent=(150.0, 150.0),
                        relief=25.0, seed=seed)
    pois = sample_uniform(mesh, 10, seed=seed + 7)
    engine = GeodesicEngine(mesh, pois, points_per_edge=0)
    oracle = SEOracle(engine, epsilon=0.3, seed=seed).build()
    for source in range(len(pois)):
        for target in range(len(pois)):
            oracle.covering_pair(source, target)  # raises unless exactly 1
