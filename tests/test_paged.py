"""Page-pool serving tests: bit-identity under eviction pressure.

:class:`~repro.core.paged.PagedOracle` promises that paging is
invisible to answers — the pool changes *where* the pair/hash bytes
come from, never *which* element a probe reads — so every test here
demands bit-identity against the unpaged mmap oracle while forcing the
pool through its worst regimes: a pool smaller than a single batch's
candidate set, eviction churn in the middle of ``query_matrix``, and
repeated workloads that must turn misses into hits.  The ledger is
checked as an accounting system: loads minus evictions must equal the
resident page count and the peak must respect the configured budget.

Satellite coverage: the zero-copy fallback tests pin
:func:`~repro.core.store.read_store`'s per-section ``zero_copy`` meta,
the one-shot ``RuntimeWarning`` on compressed stores, and the
``non_zero_copy_sections`` surfacing in ``StoredOracle`` stats.
"""

import os
import shutil
import warnings
import zipfile

import numpy as np
import pytest

from repro.core import SEOracle, open_oracle, pack_oracle
from repro.core.paged import PAGED_SECTIONS, PagedOracle
from repro.core.store import read_store, section_layouts
from repro.geodesic import GeodesicEngine
from repro.terrain import make_terrain, sample_uniform

NUM_POIS = 24


@pytest.fixture(scope="module")
def packed(tmp_path_factory):
    """One packed store + its unpaged oracle, shared by the module."""
    path = tmp_path_factory.mktemp("paged") / "oracle.store"
    mesh = make_terrain(grid_exponent=4, extent=(200.0, 200.0),
                        relief=30.0, seed=11)
    pois = sample_uniform(mesh, NUM_POIS, seed=12)
    engine = GeodesicEngine(mesh, pois, points_per_edge=1)
    oracle = SEOracle(engine, 0.25, seed=13).build()
    pack_oracle(oracle, path)
    return str(path), open_oracle(path)


def _full_grid(n):
    grid = np.arange(n, dtype=np.intp)
    return np.repeat(grid, n), np.tile(grid, n)


def _pageable_bytes(path):
    _, layouts = section_layouts(path)
    return sum(int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
               for name, (offset, dtype, shape) in layouts.items()
               if name in PAGED_SECTIONS)


class TestPoolSmallerThanBatch:
    def test_one_tiny_page_answers_full_grid_batch(self, packed):
        """A single 64-byte page (8 elements) cannot hold even one
        batch's candidate set; the gather loop must page through it
        and still answer bit-identically."""
        path, unpaged = packed
        paged = PagedOracle(path, page_bytes=64, max_pages=1)
        sources, targets = _full_grid(NUM_POIS)
        assert (paged.query_batch(sources, targets)
                == unpaged.query_batch(sources, targets)).all()
        ledger = paged.page_counters()
        assert ledger["max_pages"] == 1
        assert ledger["evictions"] > 0
        assert ledger["loads"] - ledger["evictions"] \
            == ledger["resident_pages"] == 1
        assert ledger["peak_resident_bytes"] <= 64
        paged.close()

    def test_minimum_budget_single_element_pages(self, packed):
        """The degenerate bound: an 8-byte budget means one-element
        pages — every gathered element is its own load."""
        path, unpaged = packed
        paged = PagedOracle(path, max_resident_bytes=8)
        sources, targets = _full_grid(NUM_POIS)
        assert (paged.query_batch(sources, targets)
                == unpaged.query_batch(sources, targets)).all()
        assert paged.page_counters()["page_bytes"] == 8
        paged.close()


class TestEvictionMidMatrix:
    def test_matrix_bit_identical_while_evicting(self, packed):
        """query_matrix spans every candidate row; with a two-page
        pool the matrix cannot complete without evicting pages loaded
        earlier in the same call."""
        path, unpaged = packed
        paged = PagedOracle(path, page_bytes=256, max_pages=2)
        before = paged.page_counters()["evictions"]
        matrix = paged.query_matrix()
        after = paged.page_counters()["evictions"]
        assert after > before, "matrix never evicted mid-call"
        assert (matrix == unpaged.query_matrix()).all()
        paged.close()


class TestLedgerAccounting:
    def test_loads_evictions_hits_reconcile(self, packed):
        path, _ = packed
        paged = PagedOracle(path, page_bytes=1024, max_pages=128)
        sources, targets = _full_grid(NUM_POIS)
        paged.query_batch(sources, targets)
        first = paged.page_counters()
        assert first["loads"] - first["evictions"] \
            == first["resident_pages"]
        assert first["resident_bytes"] \
            <= first["page_bytes"] * first["max_pages"]
        assert first["peak_resident_bytes"] <= first["budget_bytes"]
        assert first["fixed_bytes"] > 0
        paged.query_batch(sources, targets)
        second = paged.page_counters()
        assert second["hits"] > first["hits"]
        paged.close()

    def test_unbounded_pool_loads_each_page_once(self, packed):
        """With room for everything, the second pass is all hits and
        nothing is ever evicted."""
        path, _ = packed
        paged = PagedOracle(path, page_bytes=4096)  # unbounded pages
        sources, targets = _full_grid(NUM_POIS)
        paged.query_batch(sources, targets)
        loads = paged.page_counters()["loads"]
        paged.query_batch(sources, targets)
        ledger = paged.page_counters()
        assert ledger["loads"] == loads
        assert ledger["evictions"] == 0
        paged.close()

    def test_scalar_query_matches_unpaged(self, packed):
        path, unpaged = packed
        paged = PagedOracle(path, page_bytes=128, max_pages=2)
        for source in range(0, NUM_POIS, 5):
            for target in range(NUM_POIS):
                assert paged.query(source, target) \
                    == unpaged.query(source, target)
        paged.close()


class TestOpenDispatchAndErrors:
    def test_open_oracle_budget_returns_paged(self, packed):
        path, unpaged = packed
        stored = open_oracle(path, max_resident_bytes=4096)
        assert isinstance(stored, PagedOracle)
        assert stored.num_pois == unpaged.num_pois
        assert stored.num_pairs == unpaged.num_pairs
        sources, targets = _full_grid(NUM_POIS)
        assert (stored.query_batch(sources, targets)
                == unpaged.query_batch(sources, targets)).all()
        stored.close()

    def test_budget_below_one_element_rejected(self, packed):
        path, _ = packed
        with pytest.raises(ValueError, match="max_resident_bytes"):
            PagedOracle(path, max_resident_bytes=7)

    def test_page_bytes_must_be_element_aligned(self, packed):
        path, _ = packed
        with pytest.raises(ValueError, match="page_bytes"):
            PagedOracle(path, page_bytes=100, max_pages=2)

    def test_out_of_range_ids_still_raise(self, packed):
        path, _ = packed
        paged = PagedOracle(path, page_bytes=256, max_pages=2)
        with pytest.raises(IndexError):
            paged.query(0, NUM_POIS)
        with pytest.raises(IndexError):
            paged.query_batch([0], [NUM_POIS + 3])
        paged.close()

    def test_tiled_store_refuses_byte_budget(self, tmp_path):
        from repro.core import build_tiled_oracle, pack_tiled
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=15.0, seed=31)
        pois = sample_uniform(mesh, 10, seed=32)
        build = build_tiled_oracle(mesh, pois, 0.5, tiles=2, seed=33,
                                   points_per_edge=1)
        path = tmp_path / "tiled.store"
        pack_tiled(build, path)
        with pytest.raises(ValueError, match="max_resident_tiles"):
            open_oracle(path, max_resident_bytes=4096)
        with pytest.raises(ValueError, match="tile"):
            PagedOracle(str(path), max_resident_bytes=4096)


def _recompress(src, dst, names):
    """Copy a store, rewriting ``names`` members as ZIP_DEFLATED."""
    with zipfile.ZipFile(src) as zin, \
            zipfile.ZipFile(dst, "w") as zout:
        for info in zin.infolist():
            compress = (zipfile.ZIP_DEFLATED
                        if info.filename in names
                        else zipfile.ZIP_STORED)
            zout.writestr(info.filename, zin.read(info.filename),
                          compress_type=compress)


class TestZeroCopyFallback:
    def test_pristine_store_is_all_zero_copy(self, packed):
        path, _ = packed
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            meta, _ = read_store(path)
        assert meta["sections"]
        assert all(entry["zero_copy"]
                   for entry in meta["sections"].values())

    def test_compressed_sections_warn_and_are_recorded(
            self, packed, tmp_path):
        path, _ = packed
        squeezed = tmp_path / "squeezed.store"
        _recompress(path, squeezed,
                    {"pair_keys.npy", "pair_distances.npy"})
        with pytest.warns(RuntimeWarning, match="zero-copy"):
            meta, _ = read_store(squeezed)
        assert meta["sections"]["pair_keys"]["zero_copy"] is False
        assert meta["sections"]["pair_distances"]["zero_copy"] is False
        assert meta["sections"]["chains"]["zero_copy"] is True

    def test_no_warning_when_mmap_not_requested(self, packed, tmp_path):
        path, _ = packed
        squeezed = tmp_path / "squeezed.store"
        _recompress(path, squeezed, {"pair_keys.npy"})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            meta, _ = read_store(squeezed, mmap=False)
        assert meta["sections"]["pair_keys"]["zero_copy"] is False

    def test_stored_oracle_stats_surface_eager_sections(
            self, packed, tmp_path):
        path, unpaged = packed
        squeezed = tmp_path / "squeezed.store"
        _recompress(path, squeezed, {"pair_keys.npy", "chains.npy"})
        with pytest.warns(RuntimeWarning, match="zero-copy"):
            stored = open_oracle(squeezed)
        assert stored.stats["non_zero_copy_sections"] \
            == ["chains", "pair_keys"]
        assert unpaged.stats["non_zero_copy_sections"] == []
        # The eager fallback still answers bit-identically.
        sources, targets = _full_grid(NUM_POIS)
        assert (stored.query_batch(sources, targets)
                == unpaged.query_batch(sources, targets)).all()

    def test_compressed_store_rejected_by_section_layouts(
            self, packed, tmp_path):
        """The paged path cannot serve compressed members — the
        layout scan refuses instead of paging garbage bytes."""
        path, _ = packed
        squeezed = tmp_path / "squeezed.store"
        _recompress(path, squeezed, {"pair_keys.npy"})
        with pytest.raises(ValueError, match="compress"):
            section_layouts(squeezed)
