"""Tests for the staged parallel build pipeline (core.parallel).

The contract under test: a build that fans its SSAD batches out
across worker processes is **bit-identical** to a serial build — same
node pairs, same float64 distances, same compressed tree, same
search-effort counters — for both construction methods, across ε
values, and on both Dijkstra kernels (SciPy and pure-Python).
"""

import multiprocessing
import pickle

import pytest

from repro.core import (
    A2AOracle,
    DynamicSEOracle,
    MultiprocessExecutor,
    SEOracle,
    SerialExecutor,
    make_executor,
)
from repro.geodesic import EngineSnapshot, GeodesicEngine
from repro.terrain import make_terrain, sample_uniform

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def workload():
    mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                        relief=15.0, seed=31)
    pois = sample_uniform(mesh, 18, seed=32)
    return GeodesicEngine(mesh, pois, points_per_edge=1)


def assert_bit_identical(serial: SEOracle, parallel: SEOracle) -> None:
    """Bitwise structural equality plus exact effort-counter parity."""
    assert set(serial.pair_set.pairs) == set(parallel.pair_set.pairs)
    for key, distance in serial.pair_set.pairs.items():
        # Exact float equality on purpose: parallel reduction must not
        # change a single bit.
        assert parallel.pair_set.pairs[key] == distance
    assert serial.pair_set.considered == parallel.pair_set.considered
    serial_nodes = [(n.node_id, n.center, n.layer, n.radius, n.parent)
                    for n in serial.tree.nodes]
    parallel_nodes = [(n.node_id, n.center, n.layer, n.radius, n.parent)
                      for n in parallel.tree.nodes]
    assert serial_nodes == parallel_nodes
    assert serial.stats.ssad_calls == parallel.stats.ssad_calls
    assert serial.stats.settled_nodes == parallel.stats.settled_nodes
    assert serial.stats.heap_pushes == parallel.stats.heap_pushes
    assert serial.stats.enhanced_edges == parallel.stats.enhanced_edges
    assert serial.stats.enhanced_lookup_fallbacks \
        == parallel.stats.enhanced_lookup_fallbacks


class TestExecutorFactory:
    def test_serial_for_one_or_none(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(None), SerialExecutor)

    def test_multiprocess_for_two(self):
        executor = make_executor(2)
        assert isinstance(executor, MultiprocessExecutor)
        assert executor.jobs == 2
        executor.close()

    def test_negative_means_cpu_count(self):
        executor = make_executor(-1)
        assert executor.jobs >= 1
        executor.close()

    def test_multiprocess_rejects_single_worker(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(1)

    def test_unbound_executor_raises(self):
        with pytest.raises(RuntimeError):
            SerialExecutor().map_pair_distances([(0, 1)])
        with pytest.raises(RuntimeError):
            MultiprocessExecutor(2).map_ssad([(0, None)])


class TestEngineSnapshot:
    def test_roundtrips_through_pickle(self, workload):
        snapshot = workload.snapshot()
        assert isinstance(snapshot, EngineSnapshot)
        clone = pickle.loads(pickle.dumps(snapshot)).rehydrate()
        for poi in range(0, workload.num_pois, 5):
            assert clone.distances_from_poi(poi) \
                == workload.distances_from_poi(poi)
        assert clone.distance(0, 3) == workload.distance(0, 3)
        assert clone.num_pois == workload.num_pois

    def test_counters_start_clean(self, workload):
        clone = GeodesicEngine.from_snapshot(workload.snapshot())
        assert clone.ssad_calls == 0
        clone.distance(0, 1)
        assert clone.ssad_calls == 1

    def test_rejects_transient_overlay(self):
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=15.0, seed=33)
        engine = GeodesicEngine(mesh, sample_uniform(mesh, 5, seed=34),
                                points_per_edge=1)
        engine.attach_point(40.0, 40.0)
        with pytest.raises(RuntimeError):
            engine.snapshot()
        engine.detach_points(1)
        engine.snapshot()  # frozen again -> fine

    def test_account_external_feeds_counters(self, workload):
        before = workload.ssad_calls
        workload.account_external(3, 100, 200)
        assert workload.ssad_calls == before + 3
        workload.account_external(-3, -100, -200)  # restore


class TestSerialExecutorIsReference:
    def test_map_ssad_matches_engine(self, workload):
        executor = SerialExecutor()
        executor.bind(workload)
        results = executor.map_ssad([(0, None), (1, 30.0)])
        assert results[0] == workload.distances_from_poi(0)
        assert results[1] == workload.distances_from_poi(1, radius=30.0)

    def test_map_pair_distances_matches_engine(self, workload):
        executor = SerialExecutor()
        executor.bind(workload)
        pairs = [(0, 1), (2, 5), (3, 3)]
        assert executor.map_pair_distances(pairs) \
            == [workload.distance(a, b) for a, b in pairs]


class TestParallelParity:
    """The acceptance property: parallel == serial, bit for bit."""

    @pytest.mark.parametrize("epsilon", [1.0, 0.25])
    @pytest.mark.parametrize("method", ["efficient", "naive"])
    def test_jobs2_bit_identical(self, workload, epsilon, method):
        serial = SEOracle(workload, epsilon, method=method, seed=3).build()
        parallel = SEOracle(workload, epsilon, method=method, seed=3,
                            jobs=2).build()
        assert parallel.stats.executor == "multiprocess"
        assert parallel.stats.jobs == 2
        assert_bit_identical(serial, parallel)
        n = workload.num_pois
        for source in range(0, n, 3):
            for target in range(1, n, 4):
                assert serial.query(source, target) \
                    == parallel.query(source, target)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pure_python_kernel_parity(self, workload, monkeypatch):
        """The no-scipy kernel path, forced in-process.

        Workers inherit the patched module state through fork, so both
        sides of the comparison run the pure-Python array kernel.
        """
        import sys

        # `repro.geodesic.dijkstra` the *attribute* is the kernel
        # function (the package re-exports it); patch the module.
        kernel_module = sys.modules["repro.geodesic.dijkstra"]
        monkeypatch.setattr(kernel_module, "_scipy_dijkstra", None)
        serial = SEOracle(workload, 0.5, seed=5).build()
        parallel = SEOracle(workload, 0.5, seed=5, jobs=2).build()
        assert_bit_identical(serial, parallel)

    def test_greedy_strategy_parity(self, workload):
        serial = SEOracle(workload, 0.5, strategy="greedy", seed=9).build()
        parallel = SEOracle(workload, 0.5, strategy="greedy", seed=9,
                            jobs=2).build()
        assert_bit_identical(serial, parallel)


class TestExecutorOwnership:
    def test_caller_supplied_executor_survives_builds(self, workload):
        executor = MultiprocessExecutor(2)
        try:
            first = SEOracle(workload, 1.0, seed=3,
                             executor=executor).build()
            second = SEOracle(workload, 0.5, seed=3,
                              executor=executor).build()
            assert first.stats.executor == "multiprocess"
            assert second.num_pairs > first.num_pairs
        finally:
            executor.close()

    def test_close_is_idempotent_and_rebindable(self, workload):
        executor = MultiprocessExecutor(2)
        executor.bind(workload)
        executor.close()
        executor.close()
        executor.bind(workload)  # binding again after close is allowed
        try:
            assert executor.map_pair_distances([(0, 1)]) \
                == [workload.distance(0, 1)]
        finally:
            executor.close()


class TestThreadedEntryPoints:
    def test_dynamic_oracle_jobs(self):
        mesh = make_terrain(grid_exponent=3, extent=(100.0, 100.0),
                            relief=15.0, seed=41)
        pois = sample_uniform(mesh, 10, seed=42)
        serial = DynamicSEOracle(mesh, pois, epsilon=0.5, seed=1).build()
        parallel = DynamicSEOracle(mesh, pois, epsilon=0.5, seed=1,
                                   jobs=2).build()
        for source in range(0, 10, 2):
            for target in range(1, 10, 3):
                assert serial.query(source, target) \
                    == parallel.query(source, target)

    def test_a2a_oracle_jobs(self):
        mesh = make_terrain(grid_exponent=2, extent=(60.0, 60.0),
                            relief=8.0, seed=43)
        serial = A2AOracle(mesh, epsilon=0.5, seed=1).build()
        parallel = A2AOracle(mesh, epsilon=0.5, seed=1, jobs=2).build()
        query = ((10.0, 12.0), (45.0, 40.0))
        assert serial.query(*query) == parallel.query(*query)
