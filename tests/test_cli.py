"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def terrain_file(tmp_path):
    path = tmp_path / "t.off"
    code = main(["generate", "--exponent", "3", "--extent", "100", "100",
                 "--relief", "20", "--seed", "5", "--out", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x.off"])
        assert args.exponent == 5
        assert args.out == "x.off"


class TestGenerate:
    def test_creates_file(self, terrain_file, capsys):
        assert terrain_file.exists()
        from repro.terrain import read_mesh
        mesh = read_mesh(terrain_file)
        assert mesh.num_vertices == 81

    def test_obj_output(self, tmp_path):
        path = tmp_path / "t.obj"
        assert main(["generate", "--exponent", "2", "--out",
                     str(path)]) == 0
        assert path.exists()


class TestStats:
    def test_prints_summary(self, terrain_file, capsys):
        assert main(["stats", str(terrain_file)]) == 0
        out = capsys.readouterr().out
        assert "81 vertices" in out
        assert "valid=True" in out


class TestBuildAndQuery:
    def test_build_then_query(self, terrain_file, tmp_path, capsys):
        oracle_path = tmp_path / "oracle.json"
        code = main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.2", "--out", str(oracle_path)])
        assert code == 0
        assert oracle_path.exists()
        out = capsys.readouterr().out
        assert "n=10" in out

        code = main(["query", str(terrain_file), str(oracle_path),
                     "0", "7", "--pois", "10", "--exact"])
        assert code == 0
        out = capsys.readouterr().out
        assert "d(0, 7)" in out
        assert "error" in out

    def test_query_with_wrong_poi_count_fails(self, terrain_file, tmp_path):
        oracle_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(oracle_path)])
        # Different POI workload -> fingerprint mismatch.
        with pytest.raises(ValueError):
            main(["query", str(terrain_file), str(oracle_path),
                  "0", "1", "--pois", "12"])

    def test_positionals_after_options(self, terrain_file, tmp_path,
                                       capsys):
        """Ids may trail (or straddle) options, as the docs show."""
        oracle_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(oracle_path)])
        capsys.readouterr()
        for argv in (
            ["query", str(terrain_file), str(oracle_path),
             "--pois", "10", "0", "7"],
            ["query", str(terrain_file), str(oracle_path),
             "0", "--pois", "10", "7"],
        ):
            assert main(argv) == 0
            assert "d(0, 7)" in capsys.readouterr().out

    def test_query_batch_verb(self, terrain_file, tmp_path, capsys):
        oracle_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(oracle_path)])
        capsys.readouterr()
        code = main(["query", str(terrain_file), str(oracle_path),
                     "--pois", "10", "--batch", "0:7", "2:5",
                     "--random", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "d(0, 7)" in out and "d(2, 5)" in out
        assert "q/s" in out

    def test_query_without_ids_or_batch_fails(self, terrain_file,
                                              tmp_path):
        oracle_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(oracle_path)])
        assert main(["query", str(terrain_file), str(oracle_path),
                     "--pois", "10"]) == 2

    def test_greedy_strategy(self, terrain_file, tmp_path):
        oracle_path = tmp_path / "g.json"
        assert main(["build", str(terrain_file), "--pois", "8",
                     "--strategy", "greedy", "--out",
                     str(oracle_path)]) == 0

    def test_parallel_build_jobs(self, terrain_file, tmp_path, capsys):
        """--jobs 2 builds the same oracle file a serial build writes."""
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.25", "--out", str(serial_path)]) == 0
        assert main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.25", "--jobs", "2",
                     "--out", str(parallel_path)]) == 0
        out = capsys.readouterr().out
        assert "multiprocess x2" in out
        import json
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert serial["pairs"] == parallel["pairs"]
        assert serial["tree"] == parallel["tree"]
        assert parallel["build"] == {"executor": "multiprocess", "jobs": 2}


class TestBench:
    def test_table2(self, capsys):
        assert main(["bench", "table2", "--scale", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig13_tiny(self, capsys):
        assert main(["bench", "fig13", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "Query time" in out
