"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def terrain_file(tmp_path):
    path = tmp_path / "t.off"
    code = main(["generate", "--exponent", "3", "--extent", "100", "100",
                 "--relief", "20", "--seed", "5", "--out", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x.off"])
        assert args.exponent == 5
        assert args.out == "x.off"


class TestGenerate:
    def test_creates_file(self, terrain_file, capsys):
        assert terrain_file.exists()
        from repro.terrain import read_mesh
        mesh = read_mesh(terrain_file)
        assert mesh.num_vertices == 81

    def test_obj_output(self, tmp_path):
        path = tmp_path / "t.obj"
        assert main(["generate", "--exponent", "2", "--out",
                     str(path)]) == 0
        assert path.exists()


class TestStats:
    def test_prints_summary(self, terrain_file, capsys):
        assert main(["stats", str(terrain_file)]) == 0
        out = capsys.readouterr().out
        assert "81 vertices" in out
        assert "valid=True" in out


class TestBuildAndQuery:
    def test_build_then_query(self, terrain_file, tmp_path, capsys):
        oracle_path = tmp_path / "oracle.json"
        code = main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.2", "--out", str(oracle_path)])
        assert code == 0
        assert oracle_path.exists()
        out = capsys.readouterr().out
        assert "n=10" in out

        code = main(["query", str(terrain_file), str(oracle_path),
                     "0", "7", "--pois", "10", "--exact"])
        assert code == 0
        out = capsys.readouterr().out
        assert "d(0, 7)" in out
        assert "error" in out

    def test_query_with_wrong_poi_count_fails(self, terrain_file, tmp_path):
        oracle_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(oracle_path)])
        # Different POI workload -> fingerprint mismatch.
        with pytest.raises(ValueError):
            main(["query", str(terrain_file), str(oracle_path),
                  "0", "1", "--pois", "12"])

    def test_positionals_after_options(self, terrain_file, tmp_path,
                                       capsys):
        """Ids may trail (or straddle) options, as the docs show."""
        oracle_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(oracle_path)])
        capsys.readouterr()
        for argv in (
            ["query", str(terrain_file), str(oracle_path),
             "--pois", "10", "0", "7"],
            ["query", str(terrain_file), str(oracle_path),
             "0", "--pois", "10", "7"],
        ):
            assert main(argv) == 0
            assert "d(0, 7)" in capsys.readouterr().out

    def test_query_batch_verb(self, terrain_file, tmp_path, capsys):
        oracle_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(oracle_path)])
        capsys.readouterr()
        code = main(["query", str(terrain_file), str(oracle_path),
                     "--pois", "10", "--batch", "0:7", "2:5",
                     "--random", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "d(0, 7)" in out and "d(2, 5)" in out
        assert "q/s" in out

    def test_query_without_ids_or_batch_fails(self, terrain_file,
                                              tmp_path):
        oracle_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(oracle_path)])
        assert main(["query", str(terrain_file), str(oracle_path),
                     "--pois", "10"]) == 2

    def test_greedy_strategy(self, terrain_file, tmp_path):
        oracle_path = tmp_path / "g.json"
        assert main(["build", str(terrain_file), "--pois", "8",
                     "--strategy", "greedy", "--out",
                     str(oracle_path)]) == 0

    def test_parallel_build_jobs(self, terrain_file, tmp_path, capsys):
        """--jobs 2 builds the same oracle file a serial build writes."""
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.25", "--out", str(serial_path)]) == 0
        assert main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.25", "--jobs", "2",
                     "--out", str(parallel_path)]) == 0
        out = capsys.readouterr().out
        assert "multiprocess x2" in out
        import json
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert serial["pairs"] == parallel["pairs"]
        assert serial["tree"] == parallel["tree"]
        assert parallel["build"] == {"executor": "multiprocess", "jobs": 2}


class TestPackAndStore:
    @pytest.fixture()
    def oracle_files(self, terrain_file, tmp_path, capsys):
        json_path = tmp_path / "oracle.json"
        store_path = tmp_path / "oracle.store"
        assert main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.2", "--out", str(json_path)]) == 0
        assert main(["pack", str(json_path), "--out",
                     str(store_path)]) == 0
        capsys.readouterr()
        return json_path, store_path

    def test_pack_prints_sizes_and_open_time(self, terrain_file,
                                             tmp_path, capsys):
        json_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "10",
              "--epsilon", "0.2", "--out", str(json_path)])
        capsys.readouterr()
        store_path = tmp_path / "oracle.store"
        assert main(["pack", str(json_path), "--out",
                     str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "v4" in out and "open:" in out
        assert store_path.exists()

    def test_query_store_scalar(self, terrain_file, oracle_files,
                                capsys):
        _, store_path = oracle_files
        assert main(["query", str(terrain_file), str(store_path),
                     "0", "7", "--pois", "10", "--store",
                     "--exact"]) == 0
        out = capsys.readouterr().out
        assert "opened" in out and "d(0, 7)" in out and "error" in out

    def test_query_store_batch(self, terrain_file, oracle_files,
                               capsys):
        _, store_path = oracle_files
        assert main(["query", str(terrain_file), str(store_path),
                     "--pois", "10", "--store", "--batch", "0:7",
                     "--random", "25"]) == 0
        out = capsys.readouterr().out
        assert "d(0, 7)" in out and "q/s" in out

    def test_store_answers_match_json(self, terrain_file, oracle_files,
                                      capsys):
        json_path, store_path = oracle_files
        main(["query", str(terrain_file), str(json_path),
              "0", "7", "--pois", "10"])
        json_out = capsys.readouterr().out
        main(["query", str(terrain_file), str(store_path),
              "0", "7", "--pois", "10", "--store"])
        store_out = capsys.readouterr().out
        json_line = [line for line in json_out.splitlines()
                     if line.startswith("d(0, 7)")][0]
        store_line = [line for line in store_out.splitlines()
                      if line.startswith("d(0, 7)")][0]
        assert json_line.split("=")[1].split("[")[0].strip() \
            == store_line.split("=")[1].split("[")[0].strip()

    def test_query_store_wrong_workload_fails(self, terrain_file,
                                              oracle_files):
        _, store_path = oracle_files
        with pytest.raises(ValueError):
            main(["query", str(terrain_file), str(store_path),
                  "0", "1", "--pois", "12", "--store"])

    def test_build_direct_to_store(self, terrain_file, tmp_path,
                                   capsys):
        """build --out x.store writes the binary store directly."""
        store_path = tmp_path / "direct.store"
        assert main(["build", str(terrain_file), "--pois", "8",
                     "--epsilon", "0.25", "--out",
                     str(store_path)]) == 0
        capsys.readouterr()
        assert main(["query", str(terrain_file), str(store_path),
                     "0", "3", "--pois", "8", "--store"]) == 0


class TestServe:
    @pytest.fixture()
    def stores(self, terrain_file, tmp_path, capsys):
        paths = {}
        for name, pois in (("north", 8), ("south", 10)):
            json_path = tmp_path / f"{name}.json"
            store_path = tmp_path / f"{name}.store"
            main(["build", str(terrain_file), "--pois", str(pois),
                  "--epsilon", "0.25", "--out", str(json_path)])
            main(["pack", str(json_path), "--out", str(store_path)])
            paths[name] = store_path
        capsys.readouterr()
        return paths

    def test_malformed_registration(self, capsys):
        assert main(["serve", "no-equals-sign"]) == 2

    def test_missing_store_file(self, capsys):
        assert main(["serve", "alps=/nonexistent/alps.store"]) == 2
        assert "cannot register alps" in capsys.readouterr().err

    def test_non_store_file_registration(self, terrain_file, tmp_path,
                                         capsys):
        json_path = tmp_path / "oracle.json"
        main(["build", str(terrain_file), "--pois", "8",
              "--epsilon", "0.25", "--out", str(json_path)])
        capsys.readouterr()
        assert main(["serve", f"alps={json_path}"]) == 2
        assert "cannot register alps" in capsys.readouterr().err

    def test_registration_summary(self, stores, capsys):
        argv = ["serve"] + [f"{name}={path}"
                            for name, path in stores.items()]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "registered north" in out and "registered south" in out
        assert "2 terrains registered" in out

    def test_repl_session(self, stores, capsys, monkeypatch):
        import io
        script = "\n".join([
            "query north 0 1",
            "batch south 0:1 2:3",
            "knn north 0 2",
            "range north 0 1e9",
            "rnn south 0",
            "terrains",
            "stats",
            "bogus command",
            "query nowhere 0 1",
            "quit",
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        argv = ["serve", "--repl", "--max-resident", "1"] \
            + [f"{name}={path}" for name, path in stores.items()]
        assert main(argv) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert "bye" in lines[-1]
        assert any("north" in line and "resident" in line
                   for line in lines)
        assert '"evictions"' in captured.out  # stats JSON block
        assert "unknown command" in captured.err
        assert "unknown terrain id" in captured.err

    def test_repl_survives_vanished_store(self, stores, capsys,
                                          monkeypatch):
        """A store deleted after registration (or after eviction)
        fails that line only; other terrains keep serving."""
        import io
        import os
        script = "\n".join([
            "query south 0 1",   # loads south; bound 1
            "query north 0 1",   # evicts south, loads north
            "query south 0 1",   # south's file is gone -> error line
            "query north 0 2",   # still serving
            "quit",
        ]) + "\n"
        # Make the re-load of south fail: drop its file before start.
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        argv = ["serve", "--repl", "--max-resident", "1",
                f"north={stores['north']}", f"south={stores['south']}"]

        from repro.serving import OracleService
        original = OracleService.oracle

        def flaky(self, terrain_id):
            if terrain_id == "south" \
                    and "south" not in self.resident_terrains() \
                    and self.counters("south").loads >= 1:
                os.unlink(stores["south"])
            return original(self, terrain_id)

        monkeypatch.setattr(OracleService, "oracle", flaky)
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "bye" in captured.out
        assert "No such file" in captured.err \
            or "Errno" in captured.err


class TestBench:
    def test_table2(self, capsys):
        assert main(["bench", "table2", "--scale", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig13_tiny(self, capsys):
        assert main(["bench", "fig13", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "Query time" in out


class TestServeMutable:
    @pytest.fixture()
    def mutable_store(self, terrain_file, tmp_path, capsys):
        store_path = tmp_path / "dunes.store"
        main(["build", str(terrain_file), "--pois", "10",
              "--poi-seed", "1", "--epsilon", "0.25",
              "--out", str(store_path)])
        capsys.readouterr()
        return store_path

    def test_malformed_mutable_registration(self, mutable_store, capsys):
        assert main(["serve", f"dunes={mutable_store}",
                     "--mutable", "no-equals"]) == 2
        assert "malformed mutable" in capsys.readouterr().err

    def test_mutable_name_without_store(self, mutable_store,
                                        terrain_file, capsys):
        assert main(["serve", f"dunes={mutable_store}",
                     "--mutable", f"other={terrain_file}",
                     "--pois", "10"]) == 2
        assert "without a NAME=STORE" in capsys.readouterr().err

    def test_mutable_workload_mismatch(self, mutable_store,
                                       terrain_file, capsys):
        """A wrong POI workload fails the fingerprint check loudly."""
        assert main(["serve", f"dunes={mutable_store}",
                     "--mutable", f"dunes={terrain_file}",
                     "--pois", "9"]) == 2
        assert "cannot register dunes" in capsys.readouterr().err

    def test_mutable_repl_lifecycle(self, mutable_store, terrain_file,
                                    capsys, monkeypatch):
        """insert -> query -> knn -> delete -> rnn -> flush -> batch,
        plus update verbs rejected on a static terrain."""
        import io
        script = "\n".join([
            "query dunes 0 5",
            "insert dunes 40 40",
            "query dunes 10 0",      # the fresh external id is 10
            "knn dunes 10 3",
            "delete dunes 3",
            "rnn dunes 0",
            "flush dunes",
            "flush dunes",           # second flush is a no-op
            "batch dunes 0:5 10:0",
            "insert rock 1 1",       # static terrain: rejected per line
            "stats",
            "quit",
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", f"dunes={mutable_store}",
                     f"rock={mutable_store}",
                     "--mutable", f"dunes={terrain_file}",
                     "--pois", "10", "--poi-seed", "1", "--repl"]) == 0
        captured = capsys.readouterr()
        assert "registered dunes" in captured.out and "mutable" \
            in captured.out
        assert "inserted 10" in captured.out
        assert "deleted 3" in captured.out
        assert "flushed dunes" in captured.out
        assert '"updates": 2' in captured.out    # stats JSON block
        assert '"flushes": 1' in captured.out
        assert "not mutable" in captured.err


class TestUnknownPoiErrors:
    """Out-of-range POI ids surface as typed errors, not tracebacks."""

    @pytest.fixture()
    def oracle_file(self, terrain_file, tmp_path):
        path = tmp_path / "oracle.json"
        assert main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.2", "--out", str(path)]) == 0
        return path

    def test_scalar_query_out_of_range(self, terrain_file, oracle_file,
                                       capsys):
        code = main(["query", str(terrain_file), str(oracle_file),
                     "--pois", "10", "3", "99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error[unknown-poi]" in err
        assert "99" in err and "0..9" in err

    def test_batch_query_out_of_range(self, terrain_file, oracle_file,
                                      capsys):
        code = main(["query", str(terrain_file), str(oracle_file),
                     "--pois", "10", "--batch", "1:2", "5:42"])
        assert code == 2
        assert "error[unknown-poi]" in capsys.readouterr().err

    def test_store_query_out_of_range(self, terrain_file, oracle_file,
                                      tmp_path, capsys):
        store = tmp_path / "oracle.store"
        assert main(["pack", str(oracle_file), "--out", str(store)]) == 0
        code = main(["query", str(terrain_file), str(store), "--pois",
                     "10", "--store", "0", "10"])
        assert code == 2
        assert "error[unknown-poi]" in capsys.readouterr().err

    def test_in_range_still_works(self, terrain_file, oracle_file,
                                  capsys):
        assert main(["query", str(terrain_file), str(oracle_file),
                     "--pois", "10", "0", "9"]) == 0
        assert "d(0, 9)" in capsys.readouterr().out


class TestIngest:
    DATA = pathlib.Path(__file__).parent / "data"

    def test_asc_fixture_to_servable_store(self, tmp_path, capsys):
        store = tmp_path / "dem.store"
        code = main(["ingest", str(self.DATA / "dem_fixture.asc"),
                     "--poi-file", str(self.DATA / "dem_pois.csv"),
                     "--out", str(store)])
        assert code == 0
        out = capsys.readouterr().out
        assert "haversine gate" in out
        assert store.exists()
        from repro.serving import OracleService, TerrainSpec
        service = OracleService()
        service.register("real", TerrainSpec(str(store)))
        assert service.query("real", 0, 1) > 0.0

    def test_geotiff_with_sampled_pois(self, tmp_path, capsys):
        store = tmp_path / "dem.store"
        code = main(["ingest", str(self.DATA / "dem_fixture.tif"),
                     "--pois", "5", "--decimate", "2",
                     "--out", str(store)])
        assert code == 0
        assert "haversine gate" in capsys.readouterr().out

    def test_mesh_out(self, tmp_path):
        mesh_path = tmp_path / "dem.off"
        assert main(["ingest", str(self.DATA / "dem_fixture.asc"),
                     "--pois", "4", "--out", str(tmp_path / "d.store"),
                     "--mesh-out", str(mesh_path)]) == 0
        from repro.terrain import read_mesh
        assert read_mesh(mesh_path).num_vertices == 316

    def test_malformed_dem_is_typed_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.asc"
        bad.write_text("ncols 4\nnrows 4\n")
        code = main(["ingest", str(bad), "--out",
                     str(tmp_path / "d.store")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_poi_outside_extent_is_typed_error(self, tmp_path, capsys):
        pois = tmp_path / "far.csv"
        pois.write_text("name,lat,lon\nfaraway,47.5,8.9\n")
        code = main(["ingest", str(self.DATA / "dem_fixture.asc"),
                     "--poi-file", str(pois),
                     "--out", str(tmp_path / "d.store")])
        assert code == 2
        assert "outside" in capsys.readouterr().err


class TestWorkloadVerb:
    DATA = pathlib.Path(__file__).parent / "data"

    def test_gen_needs_poi_count(self, tmp_path, capsys):
        code = main(["workload", "gen", "coverage-audit",
                     "--out", str(tmp_path / "w.jsonl")])
        assert code == 2
        assert "--store or --num-pois" in capsys.readouterr().err

    def test_gen_writes_replayable_file(self, tmp_path, capsys):
        out = tmp_path / "agents.jsonl"
        code = main(["workload", "gen", "moving-agents", "--num-pois",
                     "8", "--events", "30", "--seed", "3",
                     "--terrain", "alps", "--out", str(out)])
        assert code == 0
        from repro.serving.workloads import read_workload
        loaded = read_workload(out)
        assert loaded.scenario == "moving-agents"
        assert len(loaded.events) == 30

    def test_gen_and_replay_against_server(self, tmp_path, capsys):
        store = tmp_path / "dem.store"
        assert main(["ingest", str(self.DATA / "dem_fixture.asc"),
                     "--poi-file", str(self.DATA / "dem_pois.csv"),
                     "--out", str(store)]) == 0
        out = tmp_path / "audit.jsonl"
        assert main(["workload", "gen", "coverage-audit", "--store",
                     str(store), "--terrain", "real", "--events", "12",
                     "--out", str(out)]) == 0
        from repro.serving import OracleService, TerrainSpec, \
            ThreadedServer
        service = OracleService()
        service.register("real", TerrainSpec(str(store)))
        with ThreadedServer(service) as server:
            code = main(["workload", "replay", str(out), "--host",
                         server.host, "--port", str(server.port)])
        assert code == 0
        output = capsys.readouterr().out
        assert "replayed 12 events" in output
        assert "rnn: p50=" in output

    def test_replay_missing_file(self, tmp_path, capsys):
        code = main(["workload", "replay", str(tmp_path / "nope.jsonl"),
                     "--port", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_gen_rate_stamps_paced_arrivals(self, tmp_path, capsys):
        out = tmp_path / "paced.jsonl"
        code = main(["workload", "gen", "moving-agents", "--num-pois",
                     "8", "--events", "20", "--seed", "3",
                     "--rate", "500", "--out", str(out)])
        assert code == 0
        from repro.serving.workloads import read_workload
        loaded = read_workload(out)
        arrivals = [event["arrival_s"] for event in loaded.events]
        assert arrivals == sorted(arrivals)
        assert loaded.params["rate"] == 500.0

    def test_pace_without_arrivals_is_refused(self, tmp_path, capsys):
        out = tmp_path / "unpaced.jsonl"
        assert main(["workload", "gen", "moving-agents", "--num-pois",
                     "8", "--events", "5", "--out", str(out)]) == 0
        code = main(["workload", "replay", str(out), "--port", "1",
                     "--pace"])
        assert code == 2
        assert "--rate" in capsys.readouterr().err


class TestAnalyzeVerb:
    DATA = pathlib.Path(__file__).parent / "data"

    def test_mirror_fixture_and_run_views(self, tmp_path, capsys):
        """Mirror the v4 fixture into SQLite; the canned views' row
        counts must agree with the in-memory oracle's tables."""
        store = self.DATA / "oracle_v4.store"
        db = tmp_path / "oracle.db"
        code = main(["analyze", str(store), "--db", str(db),
                     "--view", "pair_count_by_layer",
                     "--view", "poi_coverage",
                     "--sql", "SELECT COUNT(*) FROM pairs"])
        assert code == 0
        output = capsys.readouterr().out
        assert "mirrored" in output
        assert "pair_count_by_layer" in output

        from repro.analysis import run_sql, run_view
        from repro.core import open_oracle
        stored = open_oracle(store)
        _, pair_rows = run_sql(db, "SELECT COUNT(*) FROM pairs")
        assert pair_rows[0][0] == stored.num_pairs
        _, layer_rows = run_view(db, "pair_count_by_layer")
        assert sum(row[1] for row in layer_rows) == stored.num_pairs
        _, coverage = run_view(db, "poi_coverage")
        assert len(coverage) == stored.num_pois
        _, zero_self = run_sql(
            db, "SELECT nonzero_self_distances FROM error_stats")
        assert zero_self[0][0] == 0

    def test_analyze_missing_store(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope.store"),
                     "--db", str(tmp_path / "out.db")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_analyze_unknown_view(self, tmp_path, capsys):
        store = self.DATA / "oracle_v4.store"
        code = main(["analyze", str(store),
                     "--db", str(tmp_path / "out.db"),
                     "--view", "not_a_view"])
        assert code == 2
        assert "unknown view" in capsys.readouterr().err

    def test_query_store_paged_prints_ledger(self, terrain_file,
                                             tmp_path, capsys):
        """`query --store --max-resident-bytes` serves through the
        page pool and reports the paging ledger."""
        store = tmp_path / "oracle.store"
        assert main(["build", str(terrain_file), "--pois", "10",
                     "--epsilon", "0.2", "--out", str(store)]) == 0
        capsys.readouterr()
        code = main(["query", str(terrain_file), str(store),
                     "--pois", "10", "--store", "--batch",
                     "--random", "50", "--max-resident-bytes", "4096"])
        assert code == 0
        output = capsys.readouterr().out
        assert "(paged," in output
        assert "paging:" in output
        assert "B budget" in output

    def test_max_resident_bytes_requires_store(self, terrain_file,
                                               tmp_path, capsys):
        code = main(["query", str(terrain_file), "whatever.store",
                     "--max-resident-bytes", "4096", "0", "1"])
        assert code == 2
        assert "--store" in capsys.readouterr().err
