"""Page-pool serving benchmark: QPS and memory vs pool budget.

For each workload scale this script builds one SE oracle, packs it as
a v4 store, and serves the same random pair workload through
:class:`~repro.core.paged.PagedOracle` at three pool bounds — a
minimal one-default-page budget (64 KiB), 25% of the paged columns,
and 100% (everything fits) — next to the unpaged mmap baseline.  Per
bound it records:

* batched QPS (best-of timing) and its ratio to the unpaged oracle;
* the page ledger: loads / evictions / hits, resident and peak
  resident bytes, and the fixed (never-paged) routing bytes;
* the OS view: each bound is re-run in a **fresh subprocess** and its
  ``resource.getrusage`` max-RSS recorded, so pool configs cannot
  share interpreter warm-up or page-cache state.

It *gates* (non-zero exit) on three invariants, which is what lets CI
run it as an out-of-core serving regression smoke test:

1. paged answers (``query_batch`` over the workload *and* a full
   ``query_matrix``) are **bit-identical** to the unpaged oracle at
   every pool bound;
2. the ledger's peak resident bytes stay within the configured budget
   plus at most one page, at every bound;
3. at the largest scale the full-pool QPS stays at or above
   ``--min-qps-ratio`` (default 0.3) of the unpaged QPS.

Max-RSS is reported, not gated: a Python process's RSS floor is the
interpreter plus NumPy, orders of magnitude above smoke-size pool
budgets.  What the budget actually controls — the pool's own
footprint — is exactly what gate 2 pins, and the per-bound subprocess
RSS column makes regressions of the fixed overhead visible in the
report without a flaky absolute threshold.

Usage::

    PYTHONPATH=src python benchmarks/bench_paged.py \
        --scales tiny small medium --min-qps-ratio 0.3 \
        --out BENCH_paged.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SEOracle, open_oracle, pack_oracle  # noqa: E402
from repro.core.paged import (  # noqa: E402
    DEFAULT_PAGE_BYTES,
    PAGED_SECTIONS,
    PagedOracle,
)
from repro.core.store import section_layouts  # noqa: E402
from repro.geodesic import GeodesicEngine  # noqa: E402
from repro.terrain import make_terrain, sample_uniform  # noqa: E402

# Workload shapes shared with the other smoke benchmarks.
from bench_query_throughput import SCALES, pair_workload  # noqa: E402


def paged_section_bytes(store_path: str) -> int:
    """Total bytes of the store's pageable columns."""
    _, layouts = section_layouts(store_path)
    total = 0
    for name in PAGED_SECTIONS:
        _, dtype, shape = layouts[name]
        total += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    return total


def pool_bounds(store_path: str) -> dict:
    """The swept budgets: one page, 25%, 100% of the paged columns.

    Budgets are whole-page multiples of the default page size, and the
    100% bound counts *pages per section* (a section shorter than a
    page still occupies one) so every page of every column can be
    resident at once — the no-eviction steady state.
    """
    _, layouts = section_layouts(store_path)
    pages_needed = 0
    for name in PAGED_SECTIONS:
        _, dtype, shape = layouts[name]
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        pages_needed += -(-nbytes // DEFAULT_PAGE_BYTES)
    return {
        "minpool": DEFAULT_PAGE_BYTES,
        "25pct": DEFAULT_PAGE_BYTES * max(1, pages_needed // 4),
        "100pct": DEFAULT_PAGE_BYTES * pages_needed,
    }


def timed_qps(oracle, sources, targets, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        oracle.query_batch(sources, targets)
        best = min(best, time.perf_counter() - tick)
    return sources.size / best if best > 0 else float("inf")


# ----------------------------------------------------------------------
# subprocess probe: one pool config, fresh interpreter, max-RSS
# ----------------------------------------------------------------------
def run_probe(store_path: str, budget: int, queries: int,
              seed: int) -> dict:
    """Drive one paged config in this process; print a JSON report.

    Invoked via ``--probe`` in a fresh interpreter so ``getrusage``
    max-RSS reflects exactly one pool configuration.
    """
    paged = PagedOracle(store_path, max_resident_bytes=budget)
    sources, targets = pair_workload(paged.num_pois, queries, seed)
    sources = np.asarray(sources, dtype=np.intp)
    targets = np.asarray(targets, dtype=np.intp)
    paged.query_batch(sources, targets)
    paged.query_matrix()
    ledger = paged.page_counters()
    ru = resource.getrusage(resource.RUSAGE_SELF)
    paged.close()
    return {"ledger": ledger, "maxrss_kb": int(ru.ru_maxrss)}


def probe_subprocess(store_path: str, budget: int, queries: int,
                     seed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(
            os.path.abspath(__file__)), "..", "src"),
            env.get("PYTHONPATH")) if p)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--probe",
         store_path, str(budget), str(queries), str(seed)],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(proc.stdout)


# ----------------------------------------------------------------------
# one scale
# ----------------------------------------------------------------------
def measure_scale(scale: str, queries: int, density: int, seed: int,
                  repeats: int) -> dict:
    spec = SCALES[scale]
    mesh = make_terrain(grid_exponent=spec["exponent"],
                        extent=spec["extent"], relief=spec["relief"],
                        seed=seed)
    pois = sample_uniform(mesh, spec["pois"], seed=seed + 1)
    engine = GeodesicEngine(mesh, pois, points_per_edge=density)
    oracle = SEOracle(engine, spec["epsilon"], seed=seed).build()

    sources, targets = pair_workload(len(pois), queries, seed + 2)
    sources = np.asarray(sources, dtype=np.intp)
    targets = np.asarray(targets, dtype=np.intp)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "oracle.store")
        pack_oracle(oracle, store_path)
        store_bytes = os.path.getsize(store_path)
        pageable = paged_section_bytes(store_path)

        unpaged = open_oracle(store_path)
        expected_batch = unpaged.query_batch(sources, targets)
        expected_matrix = unpaged.query_matrix()
        unpaged_qps = timed_qps(unpaged, sources, targets, repeats)

        bounds = {}
        for label, budget in pool_bounds(store_path).items():
            paged = PagedOracle(store_path, max_resident_bytes=budget)
            got_batch = paged.query_batch(sources, targets)
            got_matrix = paged.query_matrix()
            mismatches = int(
                np.sum(got_batch != expected_batch)
                + np.sum(got_matrix != expected_matrix))
            qps = timed_qps(paged, sources, targets, repeats)
            ledger = paged.page_counters()
            paged.close()
            probe = probe_subprocess(store_path, budget, queries,
                                     seed + 2)
            peak_ok = (probe["ledger"]["peak_resident_bytes"]
                       <= budget + ledger["page_bytes"]) and (
                ledger["peak_resident_bytes"]
                <= budget + ledger["page_bytes"])
            bounds[label] = {
                "budget_bytes": budget,
                "page_bytes": ledger["page_bytes"],
                "max_pages": ledger["max_pages"],
                "qps": qps,
                "qps_ratio": qps / unpaged_qps if unpaged_qps else 0.0,
                "loads": ledger["loads"],
                "evictions": ledger["evictions"],
                "hits": ledger["hits"],
                "peak_resident_bytes": ledger["peak_resident_bytes"],
                "fixed_bytes": ledger["fixed_bytes"],
                "probe_maxrss_kb": probe["maxrss_kb"],
                "probe_peak_resident_bytes":
                    probe["ledger"]["peak_resident_bytes"],
                "equivalent": mismatches == 0,
                "mismatches": mismatches,
                "peak_within_budget": bool(peak_ok),
            }

    return {
        "scale": scale,
        "num_pois": len(pois),
        "epsilon": spec["epsilon"],
        "queries": queries,
        "store_bytes": store_bytes,
        "pageable_bytes": pageable,
        "unpaged_qps": unpaged_qps,
        "bounds": bounds,
    }


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "--probe":
        store_path, budget, queries, seed = argv[1:5]
        print(json.dumps(run_probe(store_path, int(budget),
                                   int(queries), int(seed))))
        return 0

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", nargs="+", default=["tiny", "small"],
                        choices=sorted(SCALES),
                        help="workload scales to sweep, smallest first")
    parser.add_argument("--queries", type=int, default=20000,
                        help="random query pairs for the gates")
    parser.add_argument("--density", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5,
                        help="per-leg repetitions (best-of timing)")
    parser.add_argument("--min-qps-ratio", type=float, default=0.3,
                        help="fail if the largest scale's full-pool "
                             "QPS falls below this fraction of the "
                             "unpaged QPS")
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args(argv)

    runs = []
    for scale in args.scales:
        run = measure_scale(scale, args.queries, args.density,
                            args.seed, args.repeats)
        runs.append(run)
        print(f"{scale:7s} n={run['num_pois']:4d} "
              f"pageable {run['pageable_bytes'] / 1024:8.1f}KB  "
              f"unpaged {run['unpaged_qps']:>10,.0f} q/s")
        for label, bound in run["bounds"].items():
            verdict = "ok"
            if not bound["equivalent"]:
                verdict = (f"PAGING BROKEN: {bound['mismatches']} "
                           "mismatches")
            elif not bound["peak_within_budget"]:
                verdict = "BUDGET BROKEN: peak resident over budget"
            print(f"  {label:>6s} budget {bound['budget_bytes'] / 1024:8.1f}KB "
                  f"peak {bound['peak_resident_bytes'] / 1024:8.1f}KB  "
                  f"{bound['qps']:>10,.0f} q/s "
                  f"(x{bound['qps_ratio']:4.2f})  "
                  f"loads {bound['loads']:6d} "
                  f"evict {bound['evictions']:6d} "
                  f"hits {bound['hits']:6d}  "
                  f"rss {bound['probe_maxrss_kb'] / 1024:6.1f}MB  "
                  f"{verdict}")

    healthy = all(
        bound["equivalent"] and bound["peak_within_budget"]
        for run in runs for bound in run["bounds"].values())
    final_ratio = runs[-1]["bounds"]["100pct"]["qps_ratio"]
    report = {
        "benchmark": "bench_paged",
        "queries": args.queries,
        "density": args.density,
        "seed": args.seed,
        "repeats": args.repeats,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "healthy": healthy,
        "min_qps_ratio_required": args.min_qps_ratio,
        "final_qps_ratio": final_ratio,
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"[report written to {args.out}]")

    if not healthy:
        print("FAILED: a page-pool gate broke (see verdicts)")
        return 1
    if final_ratio < args.min_qps_ratio:
        print(f"FAILED: full-pool QPS x{final_ratio:.2f} of unpaged; "
              f"required at least x{args.min_qps_ratio:.2f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
