"""Table 2: dataset statistics of the BH / EP / SF analogues."""

import io
from contextlib import redirect_stdout

from repro.experiments import table2_dataset_statistics


def test_table2_dataset_statistics(benchmark, scale, write_result):
    rows = benchmark.pedantic(
        lambda: table2_dataset_statistics(scale), rounds=1, iterations=1)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        table2_dataset_statistics(scale, render=True)
    write_result("table2_datasets", buffer.getvalue())

    by_name = {row["dataset"]: row for row in rows}
    # Region extents follow Table 2 of the paper.
    assert by_name["bearhead"]["region_km"] == (14.0, 10.0)
    assert by_name["eaglepeak"]["region_km"] == (10.7, 14.0)
    assert by_name["sf"]["region_km"] == (14.0, 11.1)
    # POI/vertex ratio ordering matches the paper: SF is POI-dense.
    sf_ratio = by_name["sf"]["pois"] / by_name["sf"]["vertices"]
    bh_ratio = by_name["bearhead"]["pois"] / by_name["bearhead"]["vertices"]
    assert sf_ratio > bh_ratio
