"""Table 3: query-distance statistics (max/min/avg/std in km)."""

import io
from contextlib import redirect_stdout

from repro.experiments import table3_query_distances


def test_table3_query_distances(benchmark, scale, write_result):
    rows = benchmark.pedantic(
        lambda: table3_query_distances(scale, num_queries=50),
        rounds=1, iterations=1)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        table3_query_distances(scale, num_queries=50, render=True)
    write_result("table3_query_distances", buffer.getvalue())

    for row in rows:
        assert 0 < row["min_km"] <= row["avg_km"] <= row["max_km"]
        assert row["std_km"] >= 0
        # Distances are bounded by the terrain scale (tens of km).
        assert row["max_km"] < 40.0
