"""Appendix A: largest capacity dimension β of the benchmark terrains.

The paper measures β in [1.3, 1.5]; a 2D-manifold terrain should land
near that band (sampling noise widens the acceptance envelope).
"""

from repro.analysis import estimate_capacity_dimension
from repro.experiments import load_dataset
from repro.geodesic import GeodesicEngine


def test_capacity_dimension_per_dataset(benchmark, scale, write_result):
    def run():
        estimates = {}
        for name in ("bearhead", "eaglepeak", "sf"):
            dataset = load_dataset(name, scale)
            engine = GeodesicEngine(dataset.mesh, dataset.pois,
                                    points_per_edge=0)
            estimates[name] = estimate_capacity_dimension(
                engine, num_centers=6, radius_steps=3, seed=1)
        return estimates

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Appendix A: largest capacity dimension =="]
    for name, estimate in estimates.items():
        lines.append(f"{name:<10} {estimate.summary()}")
    write_result("appendixA_capacity_dim", "\n".join(lines) + "\n")

    for name, estimate in estimates.items():
        assert 0.5 <= estimate.beta <= 2.5, (name, estimate.beta)
