"""Benchmark configuration.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md) and prints the paper-shaped series.
Heavy experiment sweeps run exactly once via ``benchmark.pedantic``;
micro-benchmarks (single query operations) use the normal calibrated
loop.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE`` to ``tiny`` / ``small`` / ``bench`` to trade
fidelity for speed (default: ``small``).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def write_result():
    """Persist a rendered table under benchmarks/results/ and print it."""

    def _write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}\n[written to {path}]")

    return _write


def by_method(results):
    """Index a list of MethodResult by method name."""
    return {result.method: result for result in results}
