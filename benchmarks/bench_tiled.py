"""Tiled sharding benchmark: build fan-out, stitching cost, paging.

For each workload scale this script builds the same terrain twice —
one monolithic SE oracle and one ``--tiles N`` sharded oracle — packs
both as v4 stores, and measures what tiling costs and buys:

* build seconds, monolithic vs tiled serial vs tiled ``--jobs 2``
  (per-tile builds fan out across processes);
* query throughput through the packed tiled store at a *bounded*
  tile residency (``--max-resident-tiles``), split into intra-tile
  batches (one compiled table) and cross-tile batches (portal
  stitching through the boundary matrix + LRU paging churn);
* the deterministic paging footprint: peak resident tile bytes under
  the bound vs the whole monolithic store.

It *gates* (non-zero exit) on four invariants, which is what lets CI
run it as a sharding regression smoke test:

1. paged answers are **bit-identical** to the all-resident tiled
   oracle on the full mixed workload;
2. tiled and monolithic answers agree within the shared ``(1 + eps)``
   envelope (both sides hold the SE guarantee against the same exact
   metric, so their ratio is bounded by ``(1+eps)/(1-eps)``);
3. cross-tile QPS stays within ``--max-cross-ratio`` (default 5x) of
   intra-tile QPS at the bounded residency;
4. the paged peak footprint stays below the monolithic store's bytes.

Usage::

    PYTHONPATH=src python benchmarks/bench_tiled.py \
        --scales tiny small --tiles 4 --max-resident-tiles 2 \
        --max-cross-ratio 5 --out BENCH_tiled.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import (  # noqa: E402
    SEOracle,
    build_tiled_oracle,
    open_oracle,
    pack_oracle,
    pack_tiled,
)
from repro.geodesic import GeodesicEngine  # noqa: E402
from repro.terrain import make_terrain, sample_uniform  # noqa: E402

# Workload shapes shared with the other smoke benchmarks.
from bench_query_throughput import SCALES, pair_workload  # noqa: E402


def make_workload(scale: str, density: int, seed: int):
    """The shared mesh shapes, with 3x the POIs.

    Tiling is a trade of per-tile portal overhead against per-tile POI
    savings: each tile's oracle covers its owned POIs *plus* its
    portals, so the footprint win only materialises once POIs dominate
    the cut length.  The shared ``SCALES`` counts are portal-dominated
    at smoke sizes; tripling them benchmarks the regime tiling is for.
    """
    spec = SCALES[scale]
    mesh = make_terrain(
        grid_exponent=spec["exponent"],
        extent=spec["extent"],
        relief=spec["relief"],
        seed=seed,
    )
    pois = sample_uniform(mesh, 3 * spec["pois"], seed=seed + 1)
    return mesh, pois, spec["epsilon"]


def split_pairs(owner: np.ndarray, sources: np.ndarray,
                targets: np.ndarray):
    """Partition a pair workload into intra- and cross-tile halves."""
    same = owner[sources] == owner[targets]
    return ((sources[same], targets[same]),
            (sources[~same], targets[~same]))


def timed_qps(oracle, sources, targets, repeats: int) -> float:
    if sources.size == 0:
        return float("nan")
    best = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        oracle.query_batch(sources, targets)
        best = min(best, time.perf_counter() - tick)
    return sources.size / best if best > 0 else float("inf")


def measure_scale(scale: str, tiles: int, max_resident_tiles: int,
                  queries: int, density: int, seed: int,
                  repeats: int) -> dict:
    mesh, pois, epsilon = make_workload(scale, density, seed)
    engine = GeodesicEngine(mesh, pois, points_per_edge=density)

    tick = time.perf_counter()
    mono = SEOracle(engine, epsilon, seed=seed).build()
    mono_build = time.perf_counter() - tick

    tick = time.perf_counter()
    build = build_tiled_oracle(mesh, pois, epsilon, tiles=tiles,
                               seed=seed, points_per_edge=density,
                               jobs=1)
    tiled_build = time.perf_counter() - tick

    tick = time.perf_counter()
    build_tiled_oracle(mesh, pois, epsilon, tiles=tiles, seed=seed,
                       points_per_edge=density, jobs=2)
    tiled_build_jobs2 = time.perf_counter() - tick

    sources, targets = pair_workload(len(pois), queries, seed + 2)
    sources = np.asarray(sources, dtype=np.intp)
    targets = np.asarray(targets, dtype=np.intp)
    (intra_s, intra_t), (cross_s, cross_t) = split_pairs(
        np.asarray(build.owner), sources, targets)

    with tempfile.TemporaryDirectory() as tmp:
        mono_path = os.path.join(tmp, "mono.store")
        tiled_path = os.path.join(tmp, "tiled.store")
        pack_oracle(mono, mono_path)
        pack_tiled(build, tiled_path)
        mono_bytes = os.path.getsize(mono_path)
        tiled_bytes = os.path.getsize(tiled_path)

        full = open_oracle(tiled_path)
        paged = open_oracle(tiled_path,
                            max_resident_tiles=max_resident_tiles)

        # Gate 1: paging is invisible to answers.
        expected = full.query_batch(sources, targets)
        answered = paged.query_batch(sources, targets)
        mismatches = int(np.sum(answered != expected))

        # Gate 2: tiled and monolithic agree within the shared
        # (1 + eps) envelope around the same exact metric.
        mono_answers = mono.query_batch(sources, targets)
        finite = np.isfinite(mono_answers) & (mono_answers > 0)
        envelope = (1.0 + epsilon) / (1.0 - epsilon)
        ratio = np.ones_like(mono_answers)
        ratio[finite] = answered[finite] / mono_answers[finite]
        worst_ratio = float(np.max(np.maximum(ratio, 1.0 / ratio)))

        # Warm one pass, then best-of timing per leg at the bound.
        intra_qps = timed_qps(paged, intra_s, intra_t, repeats)
        cross_qps = timed_qps(paged, cross_s, cross_t, repeats)
        mono_stored = open_oracle(mono_path)
        mono_qps = timed_qps(mono_stored, sources, targets, repeats)

        ledger = paged.tile_counters()
        peak_paged_bytes = paged.peak_resident_bytes

    cross_ratio = (intra_qps / cross_qps
                   if cross_qps and np.isfinite(cross_qps) else
                   float("inf"))
    return {
        "scale": scale,
        "num_pois": len(pois),
        "tiles": tiles,
        "portals": build.meta["tiles"]["portals"],
        "epsilon": epsilon,
        "max_resident_tiles": max_resident_tiles,
        "queries": queries,
        "intra_pairs": int(intra_s.size),
        "cross_pairs": int(cross_s.size),
        "mono_build_seconds": mono_build,
        "tiled_build_seconds": tiled_build,
        "tiled_build_jobs2_seconds": tiled_build_jobs2,
        "mono_store_bytes": mono_bytes,
        "tiled_store_bytes": tiled_bytes,
        "peak_paged_bytes": int(peak_paged_bytes),
        "mono_qps": mono_qps,
        "intra_qps": intra_qps,
        "cross_qps": cross_qps,
        "cross_ratio": cross_ratio,
        "tile_loads": ledger["loads"],
        "tile_evictions": ledger["evictions"],
        "tile_hits": ledger["hits"],
        "worst_envelope_ratio": worst_ratio,
        "envelope_bound": envelope,
        "equivalent": mismatches == 0,
        "mismatches": mismatches,
        "within_envelope": worst_ratio <= envelope * (1 + 1e-9),
        "paged_under_mono": peak_paged_bytes < mono_bytes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", nargs="+", default=["tiny", "small"],
                        choices=sorted(SCALES),
                        help="workload scales to sweep, smallest first")
    parser.add_argument("--tiles", type=int, default=4)
    parser.add_argument("--max-resident-tiles", type=int, default=2,
                        help="tile LRU bound for the paged QPS legs")
    parser.add_argument("--queries", type=int, default=20000,
                        help="random query pairs for the gates")
    parser.add_argument("--density", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5,
                        help="per-leg repetitions (best-of timing)")
    parser.add_argument("--max-cross-ratio", type=float, default=None,
                        help="fail if the largest scale's intra/cross "
                             "QPS ratio exceeds this")
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args(argv)

    runs = []
    for scale in args.scales:
        run = measure_scale(scale, args.tiles, args.max_resident_tiles,
                            args.queries, args.density, args.seed,
                            args.repeats)
        runs.append(run)
        verdict = "ok"
        if not run["equivalent"]:
            verdict = (f"PAGING BROKEN: {run['mismatches']} "
                       "mismatches")
        elif not run["within_envelope"]:
            worst = run["worst_envelope_ratio"]
            verdict = (f"ENVELOPE BROKEN: x{worst:.3f} > "
                       f"x{run['envelope_bound']:.3f}")
        elif not run["paged_under_mono"]:
            verdict = "FOOTPRINT BROKEN: paged peak >= monolithic"
        print(f"{scale:7s} n={run['num_pois']:4d} tiles={run['tiles']} "
              f"portals={run['portals']:4d}  "
              f"build mono {run['mono_build_seconds']:6.2f}s "
              f"tiled {run['tiled_build_seconds']:6.2f}s "
              f"(x2 {run['tiled_build_jobs2_seconds']:6.2f}s)  "
              f"qps intra {run['intra_qps']:>10,.0f} "
              f"cross {run['cross_qps']:>10,.0f} "
              f"(ratio x{run['cross_ratio']:4.1f})  "
              f"peak {run['peak_paged_bytes'] / 1024:7.1f}KB / "
              f"{run['mono_store_bytes'] / 1024:7.1f}KB  {verdict}")

    healthy = all(run["equivalent"] and run["within_envelope"]
                  and run["paged_under_mono"] for run in runs)
    final_ratio = runs[-1]["cross_ratio"]
    report = {
        "benchmark": "bench_tiled",
        "tiles": args.tiles,
        "max_resident_tiles": args.max_resident_tiles,
        "queries": args.queries,
        "density": args.density,
        "seed": args.seed,
        "repeats": args.repeats,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "healthy": healthy,
        "max_cross_ratio_required": args.max_cross_ratio,
        "final_cross_ratio": final_ratio,
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"[report written to {args.out}]")

    if not healthy:
        print("FAILED: a tiled-sharding gate broke (see verdicts)")
        return 1
    if args.max_cross_ratio is not None and \
            final_ratio > args.max_cross_ratio:
        print(f"FAILED: cross-tile QPS x{final_ratio:.1f} slower than "
              f"intra-tile; required within x{args.max_cross_ratio:.1f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
