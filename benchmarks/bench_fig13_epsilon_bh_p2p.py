"""Figure 13: effect of ε on BearHead, P2P (SE vs K-Algo)."""

from conftest import by_method

from repro.experiments import figure13, format_series_table


def test_figure13_epsilon_sweep(benchmark, scale, write_result):
    series = benchmark.pedantic(
        lambda: figure13(scale, num_queries=50), rounds=1, iterations=1)
    write_result("fig13_epsilon_bh_p2p",
                 format_series_table("Figure 13: effect of eps, BH, P2P",
                                     "eps", series))
    for epsilon_key, results in series.items():
        epsilon = float(epsilon_key)
        methods = by_method(results)
        se = methods["SE(Random)"]
        kalgo = methods["K-Algo"]
        assert se.query_seconds_mean * 10 < kalgo.query_seconds_mean
        assert se.errors.max <= epsilon * (1 + 1e-6)
        assert se.errors.mean <= epsilon / 2  # far below the bound
