"""Figure 11 + Section 5.2.2: V2V distance queries on SF.

All vertices are POIs (n = N).  Sweep the vertex count and check SE's
order-of-magnitude wins over SP-Oracle (build, size, query) and K-Algo
(query); then run the ε sweep variant on the smallest ladder step.
"""

from conftest import by_method

from repro.experiments import figure11, format_series_table


def _targets(scale: str):
    if scale == "tiny":
        return [25, 49, 81]
    if scale == "small":
        return [60, 120, 180, 240]
    return [80, 160, 240, 320, 400]


def test_figure11_v2v_n_sweep(benchmark, scale, write_result):
    series = benchmark.pedantic(
        lambda: figure11(scale, vertex_targets=_targets(scale),
                         num_queries=30),
        rounds=1, iterations=1)
    write_result("fig11_n_sf_v2v",
                 format_series_table("Figure 11: effect of n, SF, V2V",
                                     "n=N", series))
    for key, results in series.items():
        methods = by_method(results)
        se = methods["SE(Random)"]
        sp = methods["SP-Oracle"]
        kalgo = methods["K-Algo"]
        assert se.build_seconds < sp.build_seconds * 1.5
        assert se.size_bytes < sp.size_bytes
        assert se.query_seconds_mean < sp.query_seconds_mean
        assert se.query_seconds_mean * 10 < kalgo.query_seconds_mean
        assert se.errors.max <= 0.1 * (1 + 1e-6)
