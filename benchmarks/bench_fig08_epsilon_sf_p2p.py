"""Figure 8: effect of ε on SF-small, P2P — all five methods.

Regenerates the four panels (building time, oracle size, query time,
error) for ε in {0.05..0.25} and asserts the paper's shape claims:
SE builds faster and smaller than SP-Oracle, queries orders of
magnitude faster than SP-Oracle and K-Algo, and observed error is far
below ε.
"""

from conftest import by_method

from repro.experiments import figure8, format_series_table


def test_figure8_epsilon_sweep(benchmark, scale, write_result):
    series = benchmark.pedantic(
        lambda: figure8(scale, num_queries=50), rounds=1, iterations=1)
    write_result("fig08_epsilon_sf_p2p",
                 format_series_table("Figure 8: effect of eps, SF-small, "
                                     "P2P", "eps", series))
    for epsilon_key, results in series.items():
        epsilon = float(epsilon_key)
        methods = by_method(results)
        se = methods["SE(Random)"]
        greedy = methods["SE(Greedy)"]
        sp = methods["SP-Oracle"]
        kalgo = methods["K-Algo"]
        naive = methods["SE-Naive"]

        # (a) building time: SE below SP-Oracle.
        assert se.build_seconds < sp.build_seconds
        assert greedy.build_seconds < sp.build_seconds
        # (b) size: SE orders of magnitude below SP-Oracle; naive == SE
        # structure size (same tree seed, same pair set).
        assert se.size_bytes * 10 < sp.size_bytes
        assert abs(naive.size_bytes - se.size_bytes) \
            <= 0.5 * se.size_bytes + 4096
        # (c) query time: SE below SP-Oracle and K-Algo; the efficient
        # query beats the naive O(h^2) scan.
        assert se.query_seconds_mean < sp.query_seconds_mean
        assert se.query_seconds_mean < kalgo.query_seconds_mean
        assert se.query_seconds_mean <= naive.query_seconds_mean * 1.5
        # (d) error: every SE variant honours eps, far below the bound.
        for variant in (se, greedy, naive):
            assert variant.errors.max <= epsilon * (1 + 1e-6)
        assert se.errors.mean <= epsilon / 2
