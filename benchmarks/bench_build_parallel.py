"""Build-time scaling benchmark: serial vs multiprocess oracle builds.

Builds the same SE oracle workload once per ``--jobs`` value, reports
build-seconds vs worker count, and *gates on parity*: every parallel
build must be bit-identical to the serial reference (same node pairs,
same float64 distances, same tree, same SSAD effort counters).  The
process exits non-zero when parity breaks, which is what lets CI use
this script as a perf-regression smoke gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_build_parallel.py \
        --scale tiny --jobs 1 2 --out BENCH_build.json

The JSON report records the workload shape, per-jobs timings and
speedups, and the parity verdicts.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SEOracle  # noqa: E402
from repro.geodesic import GeodesicEngine  # noqa: E402
from repro.terrain import make_terrain, sample_uniform  # noqa: E402

# Workload shapes.  "medium" is the scaling target: large enough that
# per-SSAD work dominates pool startup and snapshot pickling.
SCALES = {
    "tiny": {
        "exponent": 3,
        "extent": (100.0, 100.0),
        "relief": 15.0,
        "pois": 16,
        "epsilon": 0.5,
    },
    "small": {
        "exponent": 4,
        "extent": (200.0, 160.0),
        "relief": 30.0,
        "pois": 40,
        "epsilon": 0.25,
    },
    "medium": {
        "exponent": 5,
        "extent": (400.0, 400.0),
        "relief": 60.0,
        "pois": 90,
        "epsilon": 0.25,
    },
    "large": {
        "exponent": 6,
        "extent": (800.0, 800.0),
        "relief": 90.0,
        "pois": 160,
        "epsilon": 0.25,
    },
}


def build_workload(scale: str, density: int, seed: int):
    spec = SCALES[scale]
    mesh = make_terrain(
        grid_exponent=spec["exponent"],
        extent=spec["extent"],
        relief=spec["relief"],
        seed=seed,
    )
    pois = sample_uniform(mesh, spec["pois"], seed=seed + 1)
    engine = GeodesicEngine(mesh, pois, points_per_edge=density)
    return engine, spec["epsilon"]


def build_once(engine, epsilon: float, jobs: int, seed: int):
    started = time.perf_counter()
    oracle = SEOracle(engine, epsilon, seed=seed, jobs=jobs).build()
    return oracle, time.perf_counter() - started


def run_record(jobs: int, seconds: float, speedup: float, problems: list) -> dict:
    return {
        "jobs": jobs,
        "seconds": seconds,
        "speedup": speedup,
        "parity": not problems,
        "mismatches": problems,
    }


def tree_shape(oracle: SEOracle) -> list:
    return [
        (node.node_id, node.center, node.layer, node.radius, node.parent)
        for node in oracle.tree.nodes
    ]


def check_parity(reference: SEOracle, candidate: SEOracle) -> list:
    """Bitwise serial-vs-parallel comparison; returns mismatch notes."""
    problems = []
    ref_pairs = reference.pair_set.pairs
    cand_pairs = candidate.pair_set.pairs
    if set(ref_pairs) != set(cand_pairs):
        problems.append(f"pair keys differ: {len(ref_pairs)} vs {len(cand_pairs)}")
    else:
        drifted = sum(1 for key in ref_pairs if ref_pairs[key] != cand_pairs[key])
        if drifted:
            problems.append(f"{drifted} pair distances differ bitwise")
    if tree_shape(reference) != tree_shape(candidate):
        problems.append("compressed trees differ")
    for counter in ("ssad_calls", "settled_nodes", "heap_pushes"):
        ref_value = getattr(reference.stats, counter)
        cand_value = getattr(candidate.stats, counter)
        if ref_value != cand_value:
            problems.append(f"{counter}: {ref_value} vs {cand_value}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts to sweep; 1 is always prepended as reference",
    )
    parser.add_argument("--density", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args(argv)

    engine, epsilon = build_workload(args.scale, args.density, args.seed)
    print(
        f"workload: scale={args.scale} pois={engine.num_pois} "
        f"nodes={engine.graph.csr.num_static} epsilon={epsilon}"
    )

    reference, serial_seconds = build_once(engine, epsilon, 1, args.seed)
    print(
        f"jobs= 1  {serial_seconds:7.2f}s  (reference: "
        f"{reference.num_pairs} pairs, {reference.stats.ssad_calls} SSADs)"
    )

    runs = [run_record(1, serial_seconds, 1.0, [])]
    parity_ok = True
    for jobs in args.jobs:
        if jobs <= 1:
            continue
        oracle, seconds = build_once(engine, epsilon, jobs, args.seed)
        problems = check_parity(reference, oracle)
        parity_ok = parity_ok and not problems
        speedup = serial_seconds / seconds if seconds > 0 else float("inf")
        verdict = "ok" if not problems else "PARITY BROKEN: " + "; ".join(problems)
        print(f"jobs={jobs:2d}  {seconds:7.2f}s  x{speedup:4.2f}  {verdict}")
        runs.append(run_record(jobs, seconds, speedup, problems))

    report = {
        "benchmark": "bench_build_parallel",
        "scale": args.scale,
        "epsilon": epsilon,
        "num_pois": engine.num_pois,
        "graph_nodes": engine.graph.csr.num_static,
        "density": args.density,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "serial_seconds": serial_seconds,
        "pairs": reference.num_pairs,
        "ssad_calls": reference.stats.ssad_calls,
        "parity": parity_ok,
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"[report written to {args.out}]")

    if not parity_ok:
        print("FAILED: parallel build is not bit-identical to serial")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
