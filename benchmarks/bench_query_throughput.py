"""Query-serving benchmark: scalar vs batched oracle QPS.

For each workload scale this script builds one SE oracle, compiles it,
and measures queries/second of the scalar ``SEOracle.query`` loop
against one ``CompiledOracle.query_batch`` call over the same random
pair workload.  It *gates on equivalence*: every batched distance must
be bit-identical to the scalar answer (the process exits non-zero
otherwise), and optionally on a minimum batched/scalar speedup — which
is what lets CI use it as a serving-regression smoke gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py \
        --scales tiny small medium --out BENCH_query.json

The JSON report records, per scale, the oracle shape (POIs, height,
stored pairs), compile seconds, scalar and batched QPS, and the
speedup; the ``--min-speedup`` gate applies to the largest scale run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SEOracle  # noqa: E402
from repro.geodesic import GeodesicEngine  # noqa: E402
from repro.terrain import make_terrain, sample_uniform  # noqa: E402

# Workload shapes, mirroring bench_build_parallel.py.  "medium" is the
# serving target: ~90 POIs on a 33x33 grid, a tree tall enough that the
# scalar walk costs real Python work per query.
SCALES = {
    "tiny": {
        "exponent": 3,
        "extent": (100.0, 100.0),
        "relief": 15.0,
        "pois": 16,
        "epsilon": 0.5,
    },
    "small": {
        "exponent": 4,
        "extent": (200.0, 160.0),
        "relief": 30.0,
        "pois": 40,
        "epsilon": 0.25,
    },
    "medium": {
        "exponent": 5,
        "extent": (400.0, 400.0),
        "relief": 60.0,
        "pois": 90,
        "epsilon": 0.25,
    },
    "large": {
        "exponent": 6,
        "extent": (800.0, 800.0),
        "relief": 90.0,
        "pois": 160,
        "epsilon": 0.25,
    },
}


def build_oracle(scale: str, density: int, seed: int) -> SEOracle:
    spec = SCALES[scale]
    mesh = make_terrain(
        grid_exponent=spec["exponent"],
        extent=spec["extent"],
        relief=spec["relief"],
        seed=seed,
    )
    pois = sample_uniform(mesh, spec["pois"], seed=seed + 1)
    engine = GeodesicEngine(mesh, pois, points_per_edge=density)
    return SEOracle(engine, spec["epsilon"], seed=seed).build()


def pair_workload(num_pois: int, count: int, seed: int):
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, num_pois, size=count).astype(np.intp)
    targets = rng.integers(0, num_pois, size=count).astype(np.intp)
    return sources, targets


def measure_scale(scale: str, queries: int, density: int, seed: int,
                  repeats: int = 3) -> dict:
    oracle = build_oracle(scale, density, seed)
    num_pois = oracle.engine.num_pois
    sources, targets = pair_workload(num_pois, queries, seed + 2)

    tick = time.perf_counter()
    compiled = oracle.compiled()
    compile_seconds = time.perf_counter() - tick

    # Scalar reference answers double as the equivalence oracle.
    pairs = list(zip(sources.tolist(), targets.tolist()))
    best_scalar = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        reference = [oracle.query(source, target)
                     for source, target in pairs]
        best_scalar = min(best_scalar, time.perf_counter() - tick)

    compiled.query_batch(sources[:16], targets[:16])  # warm the tables
    best_batch = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        batched = compiled.query_batch(sources, targets)
        best_batch = min(best_batch, time.perf_counter() - tick)

    mismatches = int(np.sum(batched != np.array(reference)))
    scalar_qps = queries / best_scalar
    batch_qps = queries / best_batch
    return {
        "scale": scale,
        "num_pois": num_pois,
        "height": oracle.height,
        "pairs_stored": oracle.num_pairs,
        "queries": queries,
        "compile_seconds": compile_seconds,
        "scalar_qps": scalar_qps,
        "batch_qps": batch_qps,
        "speedup": batch_qps / scalar_qps,
        "equivalent": mismatches == 0,
        "mismatches": mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", nargs="+", default=["tiny", "medium"],
                        choices=sorted(SCALES),
                        help="workload scales to sweep, smallest first")
    parser.add_argument("--queries", type=int, default=20000,
                        help="random query pairs per scale")
    parser.add_argument("--density", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the largest scale's batched "
                             "QPS is at least this multiple of scalar")
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args(argv)

    runs = []
    for scale in args.scales:
        run = measure_scale(scale, args.queries, args.density, args.seed)
        runs.append(run)
        verdict = "ok" if run["equivalent"] else (
            f"EQUIVALENCE BROKEN: {run['mismatches']} mismatches")
        print(f"{scale:7s} n={run['num_pois']:4d} h={run['height']} "
              f"pairs={run['pairs_stored']:6d}  "
              f"scalar {run['scalar_qps']:11,.0f} q/s  "
              f"batch {run['batch_qps']:11,.0f} q/s  "
              f"x{run['speedup']:5.1f}  {verdict}")

    equivalent = all(run["equivalent"] for run in runs)
    final_speedup = runs[-1]["speedup"]
    report = {
        "benchmark": "bench_query_throughput",
        "queries": args.queries,
        "density": args.density,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "equivalent": equivalent,
        "min_speedup_required": args.min_speedup,
        "final_speedup": final_speedup,
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"[report written to {args.out}]")

    if not equivalent:
        print("FAILED: batched queries are not bit-identical to scalar")
        return 1
    if args.min_speedup is not None and final_speedup < args.min_speedup:
        print(f"FAILED: speedup x{final_speedup:.1f} below required "
              f"x{args.min_speedup:.1f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
