"""Ablation benches for the design choices DESIGN.md calls out.

* enhanced edges (efficient construction) vs per-pair SSAD (naive);
* greedy vs random point selection;
* Steiner density of the metric graph vs achieved accuracy.
"""

import time

import pytest

from repro.core import SEOracle
from repro.experiments import load_dataset
from repro.geodesic import GeodesicEngine


@pytest.fixture(scope="module")
def workload(scale):
    dataset = load_dataset("sf-small", scale)
    engine = GeodesicEngine(dataset.mesh, dataset.pois, points_per_edge=1)
    return dataset, engine


def test_ablation_construction_method(benchmark, workload, write_result):
    """Efficient (enhanced edges) vs naive construction at eps=0.1."""
    dataset, engine = workload

    def run():
        timings = {}
        for method in ("efficient", "naive"):
            started = time.perf_counter()
            oracle = SEOracle(engine, 0.1, method=method, seed=2).build()
            timings[method] = (time.perf_counter() - started,
                               oracle.num_pairs)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    efficient_seconds, efficient_pairs = timings["efficient"]
    naive_seconds, naive_pairs = timings["naive"]
    write_result("ablation_construction",
                 "== Ablation: construction method (eps=0.1) ==\n"
                 f"efficient: {efficient_seconds:.3f}s "
                 f"({efficient_pairs} pairs)\n"
                 f"naive:     {naive_seconds:.3f}s ({naive_pairs} pairs)\n")
    # Same tree seed -> identical pair sets.
    assert efficient_pairs == naive_pairs


def test_ablation_selection_strategy(benchmark, workload, write_result):
    """Greedy vs random point selection: both valid, similar size."""
    dataset, engine = workload

    def run():
        outcome = {}
        for strategy in ("random", "greedy"):
            started = time.perf_counter()
            oracle = SEOracle(engine, 0.1, strategy=strategy,
                              seed=2).build()
            outcome[strategy] = (time.perf_counter() - started,
                                 oracle.size_bytes(), oracle.height)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Ablation: point-selection strategy (eps=0.1) =="]
    for strategy, (seconds, size, height) in outcome.items():
        lines.append(f"{strategy:<8} build {seconds:.3f}s  "
                     f"size {size / 1024:.1f}KB  h={height}")
    write_result("ablation_strategy", "\n".join(lines) + "\n")
    random_size = outcome["random"][1]
    greedy_size = outcome["greedy"][1]
    assert 0.2 < greedy_size / random_size < 5.0


def test_ablation_steiner_density(benchmark, workload, write_result):
    """Metric-graph density: denser graphs shrink the geodesic error."""
    dataset, _ = workload

    def run():
        # Distance between one fixed POI pair under growing density.
        by_density = {}
        for density in (0, 1, 3):
            engine = GeodesicEngine(dataset.mesh, dataset.pois,
                                    points_per_edge=density)
            by_density[density] = engine.distance(0, len(dataset.pois) - 1)
        return by_density

    by_density = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Ablation: Steiner density vs distance estimate =="]
    for density, distance in by_density.items():
        lines.append(f"points_per_edge={density}: {distance:.2f} m")
    write_result("ablation_steiner_density", "\n".join(lines) + "\n")
    # Graph distances can only shrink (toward the geodesic) as the
    # graph gets denser.
    assert by_density[0] >= by_density[1] >= by_density[3] - 1e-9
