"""Serving benchmark: coalesced batching vs per-request dispatch.

PR 6 put :class:`OracleService` behind an asyncio NDJSON server whose
hot path coalesces concurrent point queries into ``query_batch``
probes of the compiled tables.  This script measures what that buys
under network load, per scale:

1. build and pack an oracle, start a loopback server, and drive a
   seeded (source, target) workload through N **closed-loop** client
   threads twice — once against a server with ``max_batch=1``
   (per-request dispatch: every query is its own ``query_batch`` row)
   and once with coalescing enabled — reporting QPS and p50/p95/p99
   latency for both, plus the server-side mean batch size and
   coalesce ratio the load actually achieved;
2. run an **open-loop** leg at a fixed arrival rate (a fraction of the
   measured coalesced QPS) on a single pipelined connection, which
   shows queueing latency at a controlled offered load instead of
   letting slow responses throttle arrivals;
3. **gate on equivalence**: every distance that came back over the
   wire — both modes, both loops — must be bit-identical to a direct
   ``OracleService.query_batch`` replay of the same workload, and
   optionally on a minimum coalesced/per-request QPS ratio via
   ``--min-speedup`` (applied to the largest scale), which is what
   lets CI use this as a serving-regression gate.  ``--baseline``
   additionally sanity-checks QPS and p95 latency against a committed
   report with generous machine-variance factors.

``--smoke`` shrinks the workload to a start/query/shutdown check with
no speed gate — the no-scipy CI leg uses it to prove the server stack
imports and serves without the optional dependencies.

``--scenario-store`` switches to the scenario-replay mode instead:
seeded :mod:`repro.serving.workloads` scenarios (moving-agent kNN,
range alerts, coverage audits) are generated against the given packed
store (e.g. one built by ``repro ingest`` from a real DEM) and
replayed against a live server, gating replay byte-identity,
wire==direct equivalence, and a per-scenario p95 ceiling.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --scales tiny medium --clients 16 --min-speedup 2 \
        --out BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --scenario-store real.store --out BENCH_serve_scenarios.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SEOracle, pack_oracle  # noqa: E402
from repro.geodesic import GeodesicEngine  # noqa: E402
from repro.core import open_oracle  # noqa: E402
from repro.serving import OracleService, ThreadedServer  # noqa: E402
from repro.serving.loadgen import (  # noqa: E402
    closed_loop,
    open_loop,
    replay_direct,
    replay_workload,
    sample_pairs,
)
from repro.serving.workloads import (  # noqa: E402
    SCENARIOS,
    generate_workload,
)
from repro.terrain import make_terrain, sample_uniform  # noqa: E402

# Workload shapes shared with the query-throughput benchmark.
from bench_query_throughput import SCALES  # noqa: E402


def pack_scale(scale: str, directory: str, density: int, seed: int) -> str:
    """Build one scale's oracle and pack it; returns the store path."""
    spec = SCALES[scale]
    mesh = make_terrain(
        grid_exponent=spec["exponent"],
        extent=spec["extent"],
        relief=spec["relief"],
        seed=seed,
    )
    pois = sample_uniform(mesh, spec["pois"], seed=seed + 1)
    engine = GeodesicEngine(mesh, pois, points_per_edge=density)
    oracle = SEOracle(engine, spec["epsilon"], seed=seed).build()
    path = os.path.join(directory, f"{scale}.store")
    pack_oracle(oracle, path)
    return path


def _summarise_leg(reports: list, stats: dict, max_batch: int,
                   linger_us: float) -> dict:
    ordered = sorted(reports, key=lambda report: report.qps)
    median = ordered[len(ordered) // 2]
    return {
        "max_batch": max_batch,
        "linger_us": linger_us,
        "repeats": len(reports),
        "qps": median.qps,
        "latency_ms": median.latency_ms,
        "errors": sum(report.errors for report in reports),
        "mean_server_batch": round(stats["mean_server_batch"], 3),
        "coalesce_ratio": round(stats["coalesce_ratio"], 4),
        "distances": [report.distances for report in reports],
    }


def closed_loop_legs(
    store_path: str,
    terrain: str,
    pairs: list,
    clients: int,
    max_batch: int,
    linger_us: float,
    warmup: int,
    repeats: int,
) -> tuple:
    """Interleaved closed-loop runs; returns (per_request, coalesced).

    Both servers stay up for the whole sweep and the repeats alternate
    between them (A B A B ...), so an environmental slowdown hits both
    legs instead of silently skewing the ratio.  The reported figure
    per leg is the median repeat by QPS — symmetric across legs,
    unlike best-of, which would reward whichever leg drew the luckiest
    scheduling window.  Every repeat's distances are kept for
    equivalence gating.
    """
    service_single = OracleService(max_resident=2)
    service_single.register(terrain, store_path)
    service_coalesced = OracleService(max_resident=2)
    service_coalesced.register(terrain, store_path)
    single_reports = []
    coalesced_reports = []
    with ThreadedServer(service_single, max_batch=1) as single_server:
        with ThreadedServer(
            service_coalesced, max_batch=max_batch, linger_us=linger_us
        ) as coalesced_server:
            for server in (single_server, coalesced_server):
                if warmup:
                    closed_loop(
                        server.host, server.port, terrain,
                        pairs[:warmup], clients,
                    )
            for _ in range(max(1, repeats)):
                single_reports.append(
                    closed_loop(
                        single_server.host, single_server.port,
                        terrain, pairs, clients,
                    )
                )
                coalesced_reports.append(
                    closed_loop(
                        coalesced_server.host, coalesced_server.port,
                        terrain, pairs, clients,
                    )
                )
            single_stats = service_single.stats()[terrain]
            coalesced_stats = service_coalesced.stats()[terrain]
    return (
        _summarise_leg(single_reports, single_stats, 1, 0.0),
        _summarise_leg(
            coalesced_reports, coalesced_stats, max_batch, linger_us
        ),
    )


def measure_scale(
    scale: str,
    store_path: str,
    queries: int,
    clients: int,
    max_batch: int,
    linger_us: float,
    open_rate_fraction: float,
    seed: int,
    repeats: int,
) -> dict:
    service = OracleService(max_resident=2)
    service.register(scale, store_path)
    num_pois = SCALES[scale]["pois"]
    pairs = sample_pairs(num_pois, queries, seed=seed + 2)
    reference = np.asarray(
        service.query_batch(
            scale,
            [source for source, _ in pairs],
            [target for _, target in pairs],
        ),
        dtype=np.float64,
    )
    warmup = min(queries // 4, 512)

    single, coalesced = closed_loop_legs(
        store_path, scale, pairs, clients, max_batch, linger_us, warmup,
        repeats,
    )

    mismatches = 0
    for leg in (single, coalesced):
        for distances in leg.pop("distances"):
            answers = np.asarray(
                [d if d is not None else np.nan for d in distances],
                dtype=np.float64,
            )
            mismatches += int(np.sum(answers != reference))

    # Open loop: offered load well inside the measured capacity, so the
    # percentiles describe queueing, not saturation collapse.
    open_rate = max(100.0, coalesced["qps"] * open_rate_fraction)
    open_pairs = pairs[: min(queries, 2000)]
    service_open = OracleService(max_resident=2)
    service_open.register(scale, store_path)
    with ThreadedServer(
        service_open, max_batch=max_batch, linger_us=linger_us
    ) as server:
        open_report = open_loop(
            server.host, server.port, scale, open_pairs, open_rate
        )
    answers = np.asarray(
        [d if d is not None else np.nan for d in open_report.distances],
        dtype=np.float64,
    )
    mismatches += int(np.sum(answers != reference[: len(open_pairs)]))

    speedup = (
        coalesced["qps"] / single["qps"] if single["qps"] > 0 else 0.0
    )
    return {
        "scale": scale,
        "num_pois": int(num_pois),
        "queries": queries,
        "clients": clients,
        "per_request": single,
        "coalesced": coalesced,
        "open_loop": {
            "rate": round(open_rate, 1),
            "requests": open_report.requests,
            "qps": round(open_report.qps, 2),
            "latency_ms": open_report.latency_ms,
            "errors": open_report.errors,
        },
        "speedup": speedup,
        "equivalent": mismatches == 0,
        "mismatches": mismatches,
    }


def measure_scenarios(
    store_path: str,
    scenarios: list,
    events: int,
    seed: int,
    p95_ceiling_ms: float,
) -> list:
    """Replay seeded scenario workloads against a live server.

    Per scenario, three gates:

    1. **byte identity** — replaying the same workload twice yields
       byte-identical response streams (the replay path is
       deterministic end to end);
    2. **wire == direct** — every decoded wire result equals a direct
       ``OracleService`` replay of the same events (the network layer
       adds no drift);
    3. **latency** — the replay's p95 stays under ``p95_ceiling_ms``
       (generous: catches a lost fast path, not a few-percent drift).
    """
    stored = open_oracle(store_path)
    num_pois = stored.num_pois
    matrix = stored.query_matrix()
    off_diagonal = matrix[~np.eye(num_pois, dtype=bool)]
    radius = round(float(np.median(off_diagonal)), 3)

    terrain = "real"
    service = OracleService(max_resident=2)
    service.register(terrain, store_path)
    runs = []
    with ThreadedServer(service) as server:
        for scenario in scenarios:
            workload = generate_workload(
                scenario, terrain, num_pois, events, seed=seed,
                radius=radius,
            )
            first = replay_workload(
                server.host, server.port, terrain, workload.events
            )
            second = replay_workload(
                server.host, server.port, terrain, workload.events
            )
            byte_identical = first.response_bytes == second.response_bytes
            reference = replay_direct(service, terrain, workload.events)
            wire_matches_direct = first.results == reference
            p95 = first.latency_ms["p95"]
            runs.append({
                "scenario": scenario,
                "events": len(workload.events),
                "seed": seed,
                "num_pois": int(num_pois),
                "params": workload.params,
                "qps": round(first.qps, 2),
                "latency_ms": first.latency_ms,
                "op_latency_ms": first.op_latency_ms,
                "errors": first.errors,
                "byte_identical_replay": byte_identical,
                "wire_matches_direct": wire_matches_direct,
                "p95_ceiling_ms": p95_ceiling_ms,
                "p95_ok": p95 <= p95_ceiling_ms,
            })
    return runs


def check_baseline(report: dict, baseline_path: str) -> list:
    """Generous sanity gates against a committed baseline report.

    CI machines differ wildly from the machine that committed the
    baseline, so the factors are wide: they catch an order-of-magnitude
    serving regression (a lost fast path, an accidental per-request
    sleep), not a few-percent drift.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    base_runs = {run["scale"]: run for run in baseline["runs"]}
    for run in report["runs"]:
        base = base_runs.get(run["scale"])
        if base is None:
            continue
        floor = base["coalesced"]["qps"] * 0.2
        if run["coalesced"]["qps"] < floor:
            failures.append(
                f"{run['scale']}: coalesced QPS "
                f"{run['coalesced']['qps']:,.0f} below baseline floor "
                f"{floor:,.0f}"
            )
        ceiling = base["coalesced"]["latency_ms"]["p95"] * 8.0
        if run["coalesced"]["latency_ms"]["p95"] > ceiling:
            failures.append(
                f"{run['scale']}: coalesced p95 "
                f"{run['coalesced']['latency_ms']['p95']:.2f} ms above "
                f"baseline ceiling {ceiling:.2f} ms"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales",
        nargs="+",
        default=["tiny", "medium"],
        choices=sorted(SCALES),
        help="workload scales to sweep, smallest first",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=6000,
        help="closed-loop queries per scale",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=16,
        help="concurrent closed-loop client connections",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="coalescing batch cap for the batched leg",
    )
    parser.add_argument(
        "--linger-us",
        type=float,
        default=0.0,
        help="batching linger for the batched leg (microseconds)",
    )
    parser.add_argument(
        "--open-rate-fraction",
        type=float,
        default=0.5,
        help="open-loop offered load as a fraction of coalesced QPS",
    )
    parser.add_argument("--density", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="closed-loop repeats per leg; the best is reported "
        "(tames scheduling noise when clients and server share cores)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the largest scale's coalesced/per-request QPS "
        "ratio is at least this",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_serve.json to sanity-gate QPS and p95 "
        "against",
    )
    parser.add_argument(
        "--scenario-store",
        default=None,
        metavar="STORE",
        help="packed oracle store (e.g. from 'repro ingest'): run the "
        "scenario-replay legs against it instead of the synthetic "
        "scale sweep",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=list(SCENARIOS),
        choices=sorted(SCENARIOS),
        help="scenario workloads to replay (with --scenario-store)",
    )
    parser.add_argument(
        "--scenario-events",
        type=int,
        default=200,
        help="events per scenario workload",
    )
    parser.add_argument(
        "--scenario-p95-ms",
        type=float,
        default=50.0,
        help="per-scenario replay p95 latency ceiling (milliseconds)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal start/query/shutdown run: tiny scale, few "
        "clients, no speed gate",
    )
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scales = ["tiny"]
        args.queries = min(args.queries, 400)
        args.clients = min(args.clients, 4)
        args.repeats = 1
        args.min_speedup = None

    if args.scenario_store:
        return _scenario_main(args)

    runs = []
    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
        for scale in args.scales:
            tick = time.perf_counter()
            store_path = pack_scale(scale, tmp, args.density, args.seed)
            build_seconds = time.perf_counter() - tick
            run = measure_scale(
                scale,
                store_path,
                args.queries,
                args.clients,
                args.max_batch,
                args.linger_us,
                args.open_rate_fraction,
                args.seed,
                args.repeats,
            )
            run["build_seconds"] = build_seconds
            runs.append(run)
            verdict = (
                "ok"
                if run["equivalent"]
                else f"EQUIVALENCE BROKEN: {run['mismatches']} mismatches"
            )
            print(
                f"{scale:7s} n={run['num_pois']:4d} x{args.clients:<3d} "
                f"per-req {run['per_request']['qps']:8,.0f} q/s  "
                f"coalesced {run['coalesced']['qps']:8,.0f} q/s "
                f"(batch {run['coalesced']['mean_server_batch']:5.1f}, "
                f"p95 {run['coalesced']['latency_ms']['p95']:6.2f} ms)  "
                f"x{run['speedup']:4.1f}  {verdict}"
            )

    equivalent = all(run["equivalent"] for run in runs)
    final_speedup = runs[-1]["speedup"]
    report = {
        "benchmark": "bench_serve",
        "queries": args.queries,
        "clients": args.clients,
        "max_batch": args.max_batch,
        "linger_us": args.linger_us,
        "density": args.density,
        "seed": args.seed,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "equivalent": equivalent,
        "min_speedup_required": args.min_speedup,
        "final_speedup": final_speedup,
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"[report written to {args.out}]")

    if not equivalent:
        print(
            "FAILED: networked answers are not bit-identical to the "
            "direct service replay"
        )
        return 1
    if args.min_speedup is not None and final_speedup < args.min_speedup:
        print(
            f"FAILED: coalescing speedup x{final_speedup:.1f} below "
            f"required x{args.min_speedup:.1f}"
        )
        return 1
    if args.baseline:
        failures = check_baseline(report, args.baseline)
        for failure in failures:
            print(f"FAILED baseline gate: {failure}")
        if failures:
            return 1
    return 0


def _scenario_main(args) -> int:
    """``--scenario-store`` mode: replay scenario workloads only."""
    runs = measure_scenarios(
        args.scenario_store,
        args.scenarios,
        args.scenario_events,
        args.seed,
        args.scenario_p95_ms,
    )
    ok = True
    for run in runs:
        checks = []
        if not run["byte_identical_replay"]:
            checks.append("REPLAY BYTES DIFFER")
        if not run["wire_matches_direct"]:
            checks.append("WIRE != DIRECT")
        if not run["p95_ok"]:
            checks.append(
                f"p95 {run['latency_ms']['p95']:.2f} ms over "
                f"{run['p95_ceiling_ms']:.0f} ms ceiling"
            )
        if run["errors"]:
            checks.append(f"{run['errors']} error replies")
        ok = ok and not checks
        verdict = "; ".join(checks) if checks else "ok"
        print(
            f"{run['scenario']:15s} {run['events']:5d} events  "
            f"{run['qps']:8,.0f} q/s  "
            f"p50 {run['latency_ms']['p50']:6.3f} ms  "
            f"p95 {run['latency_ms']['p95']:6.3f} ms  "
            f"p99 {run['latency_ms']['p99']:6.3f} ms  {verdict}"
        )
    report = {
        "benchmark": "bench_serve_scenarios",
        "store": args.scenario_store,
        "events": args.scenario_events,
        "seed": args.seed,
        "p95_ceiling_ms": args.scenario_p95_ms,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "ok": ok,
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"[report written to {args.out}]")
    if not ok:
        print("FAILED: scenario replay gates broken (see above)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
