"""Persistence benchmark: JSON load vs binary store open.

For each workload scale this script builds one SE oracle, saves it
both ways — the v3 JSON document (with compiled section) and the v4
binary store — and measures what a serving process pays to go from a
cold file to answered queries:

* ``json_load_seconds`` — parse + Python reconstruction
  (``load_oracle``, fingerprint check skipped for both sides);
* ``store_open_seconds`` — zero-copy mmap open (``open_oracle``);
* first-query latency after each fresh load (includes the JSON path's
  on-demand compile + hash freeze, and the store path's nothing);
* the on-disk byte sizes of both formats.

It *gates on equivalence*: every store-served distance must be
bit-identical to the in-memory oracle's batched answers (non-zero exit
otherwise), and optionally on a minimum JSON/store load speedup via
``--min-speedup`` — which is what lets CI use it as a persistence
regression smoke gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py \
        --scales tiny medium --min-speedup 5 --out BENCH_store.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SEOracle, load_oracle, save_oracle  # noqa: E402
from repro.core.store import open_oracle, pack_oracle  # noqa: E402
from repro.geodesic import GeodesicEngine  # noqa: E402
from repro.terrain import make_terrain, sample_uniform  # noqa: E402

# Workload shapes shared with bench_query_throughput.py.
from bench_query_throughput import SCALES, pair_workload  # noqa: E402


def build_oracle(scale: str, density: int, seed: int) -> SEOracle:
    spec = SCALES[scale]
    mesh = make_terrain(
        grid_exponent=spec["exponent"],
        extent=spec["extent"],
        relief=spec["relief"],
        seed=seed,
    )
    pois = sample_uniform(mesh, spec["pois"], seed=seed + 1)
    engine = GeodesicEngine(mesh, pois, points_per_edge=density)
    return SEOracle(engine, spec["epsilon"], seed=seed).build()


def measure_scale(scale: str, queries: int, density: int, seed: int,
                  repeats: int = 5) -> dict:
    oracle = build_oracle(scale, density, seed)
    engine = oracle.engine
    num_pois = engine.num_pois
    sources, targets = pair_workload(num_pois, queries, seed + 2)
    reference = oracle.query_batch(sources, targets)

    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "oracle.json")
        store_path = os.path.join(tmp, "oracle.store")
        save_oracle(oracle, json_path, compiled=True)
        pack_oracle(oracle, store_path)
        json_bytes = os.path.getsize(json_path)
        store_bytes = os.path.getsize(store_path)

        # Load timings (fingerprint hashing skipped on both sides: a
        # serving process trusts its terrain registry).
        best_json = best_store = float("inf")
        json_first = store_first = float("inf")
        for _ in range(repeats):
            tick = time.perf_counter()
            loaded = load_oracle(json_path, engine, strict=False)
            best_json = min(best_json, time.perf_counter() - tick)
            tick = time.perf_counter()
            loaded.query_batch(sources[:1], targets[:1])
            json_first = min(json_first, time.perf_counter() - tick)

            tick = time.perf_counter()
            stored = open_oracle(store_path)
            best_store = min(best_store, time.perf_counter() - tick)
            tick = time.perf_counter()
            stored.query_batch(sources[:1], targets[:1])
            store_first = min(store_first, time.perf_counter() - tick)

        # Equivalence gate: the mapped tables answer bit-identically.
        stored = open_oracle(store_path)
        served = stored.query_batch(sources, targets)
        mismatches = int(np.sum(served != reference))

    return {
        "scale": scale,
        "num_pois": num_pois,
        "height": oracle.height,
        "pairs_stored": oracle.num_pairs,
        "queries": queries,
        "json_bytes": json_bytes,
        "store_bytes": store_bytes,
        "json_load_seconds": best_json,
        "store_open_seconds": best_store,
        "json_first_query_seconds": json_first,
        "store_first_query_seconds": store_first,
        "load_speedup": best_json / best_store,
        "equivalent": mismatches == 0,
        "mismatches": mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", nargs="+", default=["tiny", "medium"],
                        choices=sorted(SCALES),
                        help="workload scales to sweep, smallest first")
    parser.add_argument("--queries", type=int, default=20000,
                        help="random query pairs for the equivalence gate")
    parser.add_argument("--density", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5,
                        help="load repetitions (best-of timing)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the largest scale's JSON/store "
                             "load ratio is at least this")
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args(argv)

    runs = []
    for scale in args.scales:
        run = measure_scale(scale, args.queries, args.density, args.seed,
                            repeats=args.repeats)
        runs.append(run)
        verdict = "ok" if run["equivalent"] else (
            f"EQUIVALENCE BROKEN: {run['mismatches']} mismatches")
        print(f"{scale:7s} n={run['num_pois']:4d} "
              f"pairs={run['pairs_stored']:6d}  "
              f"json {run['json_load_seconds'] * 1e3:8.2f} ms "
              f"({run['json_bytes'] / 1024:7.1f}KB)  "
              f"store {run['store_open_seconds'] * 1e3:7.2f} ms "
              f"({run['store_bytes'] / 1024:7.1f}KB)  "
              f"x{run['load_speedup']:5.1f}  {verdict}")

    equivalent = all(run["equivalent"] for run in runs)
    final_speedup = runs[-1]["load_speedup"]
    report = {
        "benchmark": "bench_store",
        "queries": args.queries,
        "density": args.density,
        "seed": args.seed,
        "repeats": args.repeats,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "equivalent": equivalent,
        "min_speedup_required": args.min_speedup,
        "final_speedup": final_speedup,
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"[report written to {args.out}]")

    if not equivalent:
        print("FAILED: store-served queries are not bit-identical")
        return 1
    if args.min_speedup is not None and final_speedup < args.min_speedup:
        print(f"FAILED: load speedup x{final_speedup:.1f} below required "
              f"x{args.min_speedup:.1f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
