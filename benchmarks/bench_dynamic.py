"""Dynamic-oracle benchmark: compiled-overlay batches vs scalar loops.

PR 5 made ``DynamicSEOracle`` compiled-aware: batched queries resolve
base-base rows through the compiled tables and only overlay-touching
rows through the SSAD kernel, with no recompile per update.  This
script measures what that buys under a realistic *interleaved*
workload, per scale:

1. build a dynamic oracle, apply a seeded update mix (inserts into the
   overlay + deletes), keeping the overlay non-empty (no amortised
   rebuild triggers), and record **update latency** (mean seconds per
   insert / delete — graph surgery only, never a recompile);
2. answer the same seeded query workload over the live ids two ways —
   a scalar ``query`` loop and one ``query_batch`` call — on two
   *independently churned* oracle instances, so neither path warms the
   other's delta caches.  Each path first runs the workload once
   unmeasured (reported as its ``warmup_seconds``: the base-table
   compile and the per-overlay-POI delta SSADs are declared one-time
   costs, exactly like ``bench_query_throughput``'s compile), then the
   measured pass gives the steady-state serving QPS;
3. **gate on equivalence**: every batched distance must be
   bit-identical to the scalar answer (non-zero exit otherwise), and
   optionally on a minimum batch/scalar speedup via ``--min-speedup``
   (applied to the largest scale), which is what lets CI use this as
   a serving-regression smoke gate for mutable terrains.

PR 8 adds the **flush-latency-vs-churn curve**: per ``--flush-scales``
scale, per churn mix (pure deletes; deletes+inserts) and per
``--flush-churn`` fraction, two identically-churned oracles fold their
overlay back into the base — one through the incremental flush
(cross-rebuild SSAD memo), one through the from-scratch reference
rebuild — and the sweep records both latencies.  Every point is
equivalence-gated (the spliced tables must match the reference
array-for-array), and ``--min-flush-speedup`` demands that the
incremental path beat the full rebuild on the *delete* mix at every
churn fraction at or below ``--flush-gate-churn`` (default 5%), on
every flush scale — see :func:`measure_flush_curve` for why insert
churn legitimately degrades toward full-rebuild cost.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic.py \
        --scales tiny medium --min-speedup 5 \
        --flush-scales small medium --min-flush-speedup 1.0 \
        --out BENCH_dynamic.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import DynamicSEOracle  # noqa: E402
from repro.terrain import make_terrain, sample_uniform  # noqa: E402

# Workload shapes shared with the query-throughput benchmark.
from bench_query_throughput import SCALES  # noqa: E402


def build_dynamic(scale: str, density: int, seed: int) -> DynamicSEOracle:
    spec = SCALES[scale]
    mesh = make_terrain(
        grid_exponent=spec["exponent"],
        extent=spec["extent"],
        relief=spec["relief"],
        seed=seed,
    )
    pois = sample_uniform(mesh, spec["pois"], seed=seed + 1)
    # A large rebuild factor keeps every update in the overlay: the
    # benchmark measures the delta path, not an amortised rebuild.
    return DynamicSEOracle(
        mesh,
        pois,
        spec["epsilon"],
        rebuild_factor=100.0,
        points_per_edge=density,
        seed=seed,
    ).build()


def apply_updates(
    oracle: DynamicSEOracle, inserts: int, deletes: int, seed: int
) -> dict:
    """The seeded update mix; returns per-kind mean latencies."""
    rng = random.Random(seed)
    mesh = oracle.engine.mesh
    low, high = mesh.bounding_box()
    insert_seconds = 0.0
    applied_inserts = 0
    while applied_inserts < inserts:
        x = rng.uniform(float(low[0]), float(high[0]))
        y = rng.uniform(float(low[1]), float(high[1]))
        if mesh.locate_face(x, y) < 0:
            continue
        tick = time.perf_counter()
        oracle.insert(x, y)
        insert_seconds += time.perf_counter() - tick
        applied_inserts += 1
    delete_seconds = 0.0
    for _ in range(deletes):
        victim = int(rng.choice(oracle.live_ids()[:-1]))
        tick = time.perf_counter()
        oracle.delete(victim)
        delete_seconds += time.perf_counter() - tick
    assert oracle.overlay_size > 0, "updates must leave a live overlay"
    return {
        "insert_seconds_mean": insert_seconds / max(applied_inserts, 1),
        "delete_seconds_mean": delete_seconds / max(deletes, 1),
        "overlay_size": oracle.overlay_size,
        "rebuilds": oracle.rebuild_count - 1,
    }


def query_workload(
    oracle: DynamicSEOracle, queries: int, seed: int
) -> tuple:
    """Seeded random pairs over the live external ids."""
    rng = random.Random(seed)
    live = [int(poi) for poi in oracle.live_ids()]
    sources = [rng.choice(live) for _ in range(queries)]
    targets = [rng.choice(live) for _ in range(queries)]
    return (
        np.array(sources, dtype=np.intp),
        np.array(targets, dtype=np.intp),
    )


def measure_scale(
    scale: str,
    queries: int,
    inserts: int,
    deletes: int,
    density: int,
    seed: int,
) -> dict:
    # Two independently churned instances: the scalar loop must not
    # warm the batch instance's delta rows (or vice versa).
    scalar_oracle = build_dynamic(scale, density, seed)
    batch_oracle = build_dynamic(scale, density, seed)
    updates = apply_updates(scalar_oracle, inserts, deletes, seed + 1)
    updates_b = apply_updates(batch_oracle, inserts, deletes, seed + 1)
    assert updates["overlay_size"] == updates_b["overlay_size"]

    sources, targets = query_workload(scalar_oracle, queries, seed + 2)

    # Warm pass per instance (one-time costs: memo caches and delta
    # rows on the scalar side; base-table compile and delta rows on
    # the batch side), then the measured steady-state pass.
    tick = time.perf_counter()
    for source, target in zip(sources, targets):
        scalar_oracle.query(int(source), int(target))
    scalar_warmup = time.perf_counter() - tick
    tick = time.perf_counter()
    scalar_answers = [
        scalar_oracle.query(int(source), int(target))
        for source, target in zip(sources, targets)
    ]
    scalar_seconds = time.perf_counter() - tick

    tick = time.perf_counter()
    batch_oracle.query_batch(sources, targets)
    batch_warmup = time.perf_counter() - tick
    tick = time.perf_counter()
    batched = batch_oracle.query_batch(sources, targets)
    batch_seconds = time.perf_counter() - tick

    mismatches = int(
        np.sum(batched != np.asarray(scalar_answers, dtype=np.float64))
    )
    scalar_qps = queries / scalar_seconds if scalar_seconds > 0 else 0.0
    batch_qps = (
        queries / batch_seconds if batch_seconds > 0 else float("inf")
    )
    return {
        "scale": scale,
        "num_pois": scalar_oracle.num_pois,
        "overlay_size": scalar_oracle.overlay_size,
        "inserts": inserts,
        "deletes": deletes,
        "queries": queries,
        "insert_seconds_mean": updates["insert_seconds_mean"],
        "delete_seconds_mean": updates["delete_seconds_mean"],
        "scalar_warmup_seconds": scalar_warmup,
        "batch_warmup_seconds": batch_warmup,
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "scalar_qps": scalar_qps,
        "batch_qps": batch_qps,
        "speedup": scalar_seconds / batch_seconds
        if batch_seconds > 0
        else float("inf"),
        "equivalent": mismatches == 0,
        "mismatches": mismatches,
    }


def _sections_identical(left, right) -> bool:
    """Array-for-array equality of two built oracles' section sets."""
    from repro.core.store import oracle_sections

    left_sections = oracle_sections(left)
    right_sections = oracle_sections(right)
    if left_sections.keys() != right_sections.keys():
        return False
    return all(
        left_sections[name].dtype == right_sections[name].dtype
        and np.array_equal(left_sections[name], right_sections[name])
        for name in left_sections
    )


def _apply_churn(
    oracle: DynamicSEOracle, touched: int, mix: str, seed: int
) -> dict:
    """Touch ``touched`` POIs: ``"delete"`` churn removes them,
    ``"mixed"`` churn alternates deletes and inserts."""
    rng = random.Random(seed)
    mesh = oracle.engine.mesh
    low, high = mesh.bounding_box()
    deletes = touched if mix == "delete" else (touched + 1) // 2
    inserts = touched - deletes
    for _ in range(deletes):
        oracle.delete(int(rng.choice(oracle.live_ids()[:-1])))
    applied = 0
    while applied < inserts:
        x = rng.uniform(float(low[0]), float(high[0]))
        y = rng.uniform(float(low[1]), float(high[1]))
        if mesh.locate_face(x, y) < 0:
            continue
        oracle.insert(x, y)
        applied += 1
    return {"inserts": inserts, "deletes": deletes}


def measure_flush_curve(
    scale: str, churn_fractions: list, density: int, seed: int
) -> list:
    """Incremental vs full flush latency per churn fraction and mix.

    Both oracles receive the identical seeded churn; the incremental
    flush replays the memo, the reference does a from-scratch rebuild,
    and the point only counts if the resulting tables are
    array-for-array identical.  Two churn mixes are swept because they
    stress opposite ends of the memo: *deletes* are metrically inert
    (sites detach without moving any surviving distance), so almost
    every row replays; *inserts* land inside the wide ``l * r`` radii
    of the shallow enhanced-edge rows — exactly the expensive SSADs —
    so reuse degrades toward a full rebuild.  The speedup gate is
    applied to the delete mix (the sublinear case the design targets);
    the mixed curve is reported alongside to document the insert cost
    honestly.
    """
    points = []
    for mix in ("delete", "mixed"):
        for fraction in churn_fractions:
            incremental = build_dynamic(scale, density, seed)
            reference = build_dynamic(scale, density, seed)
            touched = max(1, round(fraction * incremental.num_pois))
            churn = _apply_churn(incremental, touched, mix, seed + 3)
            _apply_churn(reference, touched, mix, seed + 3)

            tick = time.perf_counter()
            stats = incremental.flush()
            incremental_seconds = time.perf_counter() - tick
            tick = time.perf_counter()
            reference.flush(incremental=False)
            full_seconds = time.perf_counter() - tick

            points.append({
                "scale": scale,
                "mix": mix,
                "churn_fraction": fraction,
                "touched": touched,
                "inserts": churn["inserts"],
                "deletes": churn["deletes"],
                "incremental_seconds": incremental_seconds,
                "full_seconds": full_seconds,
                "flush_speedup": full_seconds / incremental_seconds
                if incremental_seconds > 0 else float("inf"),
                "reused_rows": stats["reused_rows"],
                "computed_rows": stats["computed_rows"],
                "equivalent": _sections_identical(incremental.oracle,
                                                  reference.oracle),
            })
    return points


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales",
        nargs="+",
        default=["tiny", "medium"],
        choices=sorted(SCALES),
        help="workload scales to sweep, smallest first",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=20000,
        help="interleaved query count per scale",
    )
    parser.add_argument(
        "--inserts", type=int, default=8, help="POI inserts per scale"
    )
    parser.add_argument(
        "--deletes", type=int, default=3, help="POI deletes per scale"
    )
    parser.add_argument("--density", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the largest scale's batch/scalar speedup is "
        "at least this",
    )
    parser.add_argument(
        "--flush-scales",
        nargs="*",
        default=["small", "medium"],
        choices=sorted(SCALES),
        help="scales for the flush-latency-vs-churn curve "
        "(pass no values to skip the sweep)",
    )
    parser.add_argument(
        "--flush-churn",
        nargs="+",
        type=float,
        default=[0.01, 0.05, 0.20],
        help="churn fractions (touched POIs / terrain POIs) to sweep",
    )
    parser.add_argument(
        "--min-flush-speedup",
        type=float,
        default=None,
        help="fail unless incremental flush beats full rebuild by at "
        "least this factor on the delete-churn mix at every fraction "
        "at or below --flush-gate-churn, on every flush scale",
    )
    parser.add_argument(
        "--flush-gate-churn",
        type=float,
        default=0.05,
        help="largest churn fraction the flush-speedup gate applies to",
    )
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args(argv)

    runs = []
    for scale in args.scales:
        run = measure_scale(
            scale,
            args.queries,
            args.inserts,
            args.deletes,
            args.density,
            args.seed,
        )
        runs.append(run)
        verdict = (
            "ok"
            if run["equivalent"]
            else f"EQUIVALENCE BROKEN: {run['mismatches']} mismatches"
        )
        print(
            f"{scale:7s} n={run['num_pois']:4d} "
            f"overlay={run['overlay_size']:2d}  "
            f"insert {run['insert_seconds_mean'] * 1e3:6.2f} ms  "
            f"scalar {run['scalar_qps']:9,.0f} q/s  "
            f"batch {run['batch_qps']:11,.0f} q/s  "
            f"x{run['speedup']:5.1f}  {verdict}"
        )

    flush_curve = []
    for scale in args.flush_scales:
        points = measure_flush_curve(
            scale, args.flush_churn, args.density, args.seed
        )
        flush_curve.extend(points)
        for point in points:
            verdict = (
                "ok" if point["equivalent"]
                else "EQUIVALENCE BROKEN: spliced tables diverge"
            )
            print(
                f"flush {scale:7s} {point['mix']:6s} churn "
                f"{point['churn_fraction']:4.0%} "
                f"({point['touched']:2d} touched)  "
                f"incremental {point['incremental_seconds'] * 1e3:7.1f} ms  "
                f"full {point['full_seconds'] * 1e3:7.1f} ms  "
                f"x{point['flush_speedup']:4.1f}  "
                f"reuse {point['reused_rows']}/"
                f"{point['reused_rows'] + point['computed_rows']}  "
                f"{verdict}"
            )

    equivalent = all(run["equivalent"] for run in runs) and all(
        point["equivalent"] for point in flush_curve
    )
    final_speedup = runs[-1]["speedup"]
    gated_points = [
        point for point in flush_curve
        if point["mix"] == "delete"
        and point["churn_fraction"] <= args.flush_gate_churn
    ]
    report = {
        "benchmark": "bench_dynamic",
        "queries": args.queries,
        "inserts": args.inserts,
        "deletes": args.deletes,
        "density": args.density,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "equivalent": equivalent,
        "min_speedup_required": args.min_speedup,
        "final_speedup": final_speedup,
        "min_flush_speedup_required": args.min_flush_speedup,
        "flush_gate_churn": args.flush_gate_churn,
        "runs": runs,
        "flush_curve": flush_curve,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"[report written to {args.out}]")

    if not equivalent:
        print("FAILED: dynamic batch queries are not bit-identical to "
              "the scalar path")
        return 1
    if args.min_speedup is not None and final_speedup < args.min_speedup:
        print(
            f"FAILED: batch speedup x{final_speedup:.1f} below required "
            f"x{args.min_speedup:.1f}"
        )
        return 1
    if args.min_flush_speedup is not None:
        for point in gated_points:
            if point["flush_speedup"] < args.min_flush_speedup:
                print(
                    f"FAILED: incremental flush x"
                    f"{point['flush_speedup']:.2f} below required x"
                    f"{args.min_flush_speedup:.2f} at "
                    f"{point['churn_fraction']:.0%} churn on "
                    f"{point['scale']}"
                )
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
