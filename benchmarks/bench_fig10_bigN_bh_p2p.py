"""Figure 10: effect of N (terrain resolution) on BH, P2P.

SE vs K-Algo across a 5-step N ladder (SP-Oracle is absent here in the
paper too — it exceeded the memory budget).  SE's oracle size must be
nearly independent of N, K-Algo's query time must grow with N, and
SE's query time must stay orders of magnitude below K-Algo's.
"""

from conftest import by_method

from repro.experiments import figure10, format_series_table


def test_figure10_N_sweep(benchmark, scale, write_result):
    series = benchmark.pedantic(
        lambda: figure10(scale, num_queries=30), rounds=1, iterations=1)
    write_result("fig10_bigN_bh_p2p",
                 format_series_table("Figure 10: effect of N, BH, P2P",
                                     "N", series))
    n_values = sorted(int(k) for k in series)
    se_size, kalgo_query = {}, {}
    for key, results in series.items():
        methods = by_method(results)
        se = methods["SE(Random)"]
        kalgo = methods["K-Algo"]
        se_size[int(key)] = se.size_bytes
        kalgo_query[int(key)] = kalgo.query_seconds_mean
        assert se.query_seconds_mean * 10 < kalgo.query_seconds_mean

    # SE size is ~independent of N (n is fixed): within a 3x band.
    sizes = [se_size[n] for n in n_values]
    assert max(sizes) <= 3.0 * min(sizes)
    # K-Algo query grows with N (largest vs smallest terrain).
    assert kalgo_query[n_values[-1]] > kalgo_query[n_values[0]]
