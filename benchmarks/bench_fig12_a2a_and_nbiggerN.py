"""Figure 12: A2A queries and P2P in the n > N regime (low-res BH).

The POI-independent SE-A2A oracle (Appendix C/D) against SP-Oracle and
K-Algo on arbitrary-point queries, plus P2P queries with twice as many
POIs as vertices routed through the same oracle.
"""

from conftest import by_method

from repro.experiments import format_series_table
from repro.experiments.figures import figure12


def test_figure12_a2a(benchmark, scale, write_result):
    epsilons = (0.05, 0.15, 0.25)
    bundle = benchmark.pedantic(
        lambda: figure12(scale, epsilons=epsilons, num_queries=10),
        rounds=1, iterations=1)
    a2a = bundle["a2a"]
    p2p = bundle["p2p_big_n"]
    write_result("fig12_a2a",
                 format_series_table("Figure 12(a-c): A2A, BH low-res",
                                     "eps", a2a))
    write_result("fig12_p2p_big_n",
                 format_series_table("Figure 12(d): P2P with n > N",
                                     "eps", p2p))
    for key, results in a2a.items():
        methods = by_method(results)
        se = methods["SE"]
        sp = methods["SP-Oracle"]
        kalgo = methods["K-Algo"]
        # SE beats SP-Oracle on size; the query-path separation is
        # structural, not a wall-clock race: both oracles answer from
        # precomputed tables (zero graph searches during the timed
        # loop) while K-Algo runs a Dijkstra per query.  Wall-clock
        # means over 10 queries sit within ~1.2 ms scheduler noise of
        # each other and made this assertion flake on unmodified
        # commits; the settled-node counters cannot.
        assert se.size_bytes < sp.size_bytes
        assert se.extra["query_settled_nodes"] == 0
        assert sp.extra["query_settled_nodes"] == 0
        assert kalgo.extra["query_settled_nodes"] > 0
    for key, results in p2p.items():
        se = results[0]
        # Same oracle answers P2P with n > N; errors stay bounded by
        # the site-grid discretisation envelope.
        assert se.errors.mean < 0.5
