"""Table 1 probes: the measurable complexity claims.

Table 1 itself is analytic; what can be measured is (i) the tree height
h stays well below 30, (ii) SE's node pair count grows ~linearly in n
(Theorem 2), and (iii) SP-Oracle's index is quadratic in its site count
while SE's is not.
"""

import io
from contextlib import redirect_stdout

from repro.baselines import SPOracle
from repro.experiments import load_dataset, table1_complexity_probes


def test_table1_probes(benchmark, scale, write_result):
    probe = benchmark.pedantic(
        lambda: table1_complexity_probes(scale, dataset_name="sf",
                                         epsilon=0.25),
        rounds=1, iterations=1)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        table1_render = table1_complexity_probes(
            "tiny", dataset_name="sf", epsilon=0.25, render=True)
    write_result("table1_complexity", buffer.getvalue())

    assert probe.height_below_30
    assert probe.pairs_within_envelope
    assert 0.5 <= probe.beta <= 2.5  # the paper's [1.3, 1.5] band,
    # widened for small-sample estimation noise.


def test_sp_oracle_size_is_quadratic(scale):
    dataset = load_dataset("sf-small", "tiny")
    sp1 = SPOracle(dataset.mesh, epsilon=0.25, points_per_edge=0).build()
    sp2 = SPOracle(dataset.mesh, epsilon=0.25, points_per_edge=1).build()
    site_ratio = sp2.num_sites / sp1.num_sites
    size_ratio = sp2.size_bytes() / sp1.size_bytes()
    assert size_ratio > site_ratio ** 2 * 0.99
