"""Micro-benchmarks: single-query latency of each method.

These use pytest-benchmark's calibrated loop (unlike the one-shot
figure sweeps) to measure the per-query cost of SE's O(h) lookup, the
O(h²) naive scan, SP-Oracle's neighbourhood minimisation and K-Algo's
on-the-fly search on a shared workload.
"""

import itertools

import pytest

from repro.baselines import KAlgo, SPOracle
from repro.core import SEOracle
from repro.experiments import load_dataset
from repro.geodesic import GeodesicEngine

EPSILON = 0.1


@pytest.fixture(scope="module")
def setup():
    dataset = load_dataset("sf-small", "small")
    engine = GeodesicEngine(dataset.mesh, dataset.pois, points_per_edge=1)
    se = SEOracle(engine, EPSILON, seed=1).build()
    sp = SPOracle(dataset.mesh, EPSILON, points_per_edge=1).build()
    kalgo = KAlgo(dataset.mesh, dataset.pois, EPSILON, points_per_edge=1)
    pairs = list(itertools.islice(
        ((i, j) for i in range(dataset.num_pois)
         for j in range(dataset.num_pois) if i != j), 64))
    return dataset, se, sp, kalgo, pairs


def _drain(query, pairs):
    total = 0.0
    for source, target in pairs:
        total += query(source, target)
    return total


def test_se_efficient_query(benchmark, setup):
    _, se, _, _, pairs = setup
    benchmark(lambda: _drain(se.query, pairs))


def test_se_naive_query(benchmark, setup):
    _, se, _, _, pairs = setup
    benchmark(lambda: _drain(se.query_naive, pairs))


def test_sp_oracle_query(benchmark, setup):
    dataset, _, sp, _, pairs = setup
    benchmark(lambda: _drain(
        lambda s, t: sp.query_p2p(dataset.pois, s, t), pairs))


def test_kalgo_query(benchmark, setup):
    _, _, _, kalgo, pairs = setup
    benchmark(lambda: _drain(kalgo.query, pairs[:8]))
