"""Micro-benchmarks: single-query latency of each method.

These use pytest-benchmark's calibrated loop (unlike the one-shot
figure sweeps) to measure the per-query cost of SE's O(h) lookup, the
O(h²) naive scan, SP-Oracle's neighbourhood minimisation and K-Algo's
on-the-fly search on a shared workload.

The ``test_kernel_*`` benchmarks compare the CSR/array Dijkstra kernel
against the seed dict kernel (kept as ``dijkstra_reference``) on a
grid_exponent=5 terrain, and ``test_kernel_settled_rate`` prints the
settled-nodes/second throughput of both, full-component and
radius-bounded, so the speedup lands in the benchmark trajectories.
"""

import itertools
import time

import pytest

from repro.baselines import KAlgo, SPOracle
from repro.core import SEOracle
from repro.experiments import load_dataset
from repro.geodesic import (
    GeodesicEngine,
    GeodesicGraph,
    dijkstra,
    dijkstra_reference,
)
from repro.terrain import make_terrain

EPSILON = 0.1


@pytest.fixture(scope="module")
def setup():
    dataset = load_dataset("sf-small", "small")
    engine = GeodesicEngine(dataset.mesh, dataset.pois, points_per_edge=1)
    se = SEOracle(engine, EPSILON, seed=1).build()
    sp = SPOracle(dataset.mesh, EPSILON, points_per_edge=1).build()
    kalgo = KAlgo(dataset.mesh, dataset.pois, EPSILON, points_per_edge=1)
    pairs = list(itertools.islice(
        ((i, j) for i in range(dataset.num_pois)
         for j in range(dataset.num_pois) if i != j), 64))
    return dataset, se, sp, kalgo, pairs


def _drain(query, pairs):
    total = 0.0
    for source, target in pairs:
        total += query(source, target)
    return total


def test_se_efficient_query(benchmark, setup):
    _, se, _, _, pairs = setup
    benchmark(lambda: _drain(se.query, pairs))


def test_se_naive_query(benchmark, setup):
    _, se, _, _, pairs = setup
    benchmark(lambda: _drain(se.query_naive, pairs))


def test_sp_oracle_query(benchmark, setup):
    dataset, _, sp, _, pairs = setup
    benchmark(lambda: _drain(
        lambda s, t: sp.query_p2p(dataset.pois, s, t), pairs))


def test_kalgo_query(benchmark, setup):
    _, _, _, kalgo, pairs = setup
    benchmark(lambda: _drain(kalgo.query, pairs[:8]))


# ----------------------------------------------------------------------
# old vs. new Dijkstra kernel (CSR/array vs. seed dict)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def kernel_setup():
    mesh = make_terrain(grid_exponent=5, seed=3)
    graph = GeodesicGraph(mesh, points_per_edge=1)
    n = graph.num_nodes
    sources = list(range(0, n, max(1, n // 12)))[:12]
    full = dijkstra_reference(graph.adjacency, sources[0])
    radius = sorted(full.distances.values())[len(full.distances) // 3]
    return graph, sources, radius


def _settle_sweep(kernel, graph_arg, sources, radius=None):
    settled = 0
    for source in sources:
        if radius is None:
            settled += kernel(graph_arg, source).settled_count
        else:
            settled += kernel(graph_arg, source, radius=radius).settled_count
    return settled


def test_kernel_array_full(benchmark, kernel_setup):
    graph, sources, _ = kernel_setup
    benchmark(lambda: _settle_sweep(dijkstra, graph.csr, sources))


def test_kernel_reference_full(benchmark, kernel_setup):
    graph, sources, _ = kernel_setup
    benchmark(lambda: _settle_sweep(dijkstra_reference, graph.adjacency,
                                    sources))


def test_kernel_array_radius(benchmark, kernel_setup):
    graph, sources, radius = kernel_setup
    benchmark(lambda: _settle_sweep(dijkstra, graph.csr, sources, radius))


def test_kernel_reference_radius(benchmark, kernel_setup):
    graph, sources, radius = kernel_setup
    benchmark(lambda: _settle_sweep(dijkstra_reference, graph.adjacency,
                                    sources, radius))


def test_kernel_settled_rate(kernel_setup):
    """Print settled-nodes/second for both kernels; new must be >= 2x."""
    graph, sources, radius = kernel_setup

    def rate(kernel, graph_arg, bound=None):
        best = 0.0
        for _ in range(3):
            tick = time.perf_counter()
            settled = _settle_sweep(kernel, graph_arg, sources, bound)
            best = max(best, settled / (time.perf_counter() - tick))
        return best

    new_full = rate(dijkstra, graph.csr)
    old_full = rate(dijkstra_reference, graph.adjacency)
    new_radius = rate(dijkstra, graph.csr, radius)
    old_radius = rate(dijkstra_reference, graph.adjacency, radius)
    print(f"\nkernel settled-nodes/second (grid_exponent=5, "
          f"{graph.num_nodes} nodes):")
    print(f"  full component: array {new_full:12,.0f}/s   "
          f"dict {old_full:12,.0f}/s   speedup {new_full / old_full:.2f}x")
    print(f"  radius-bounded: array {new_radius:12,.0f}/s   "
          f"dict {old_radius:12,.0f}/s   speedup "
          f"{new_radius / old_radius:.2f}x")
    if graph.csr.scipy_matrix() is not None:
        # SciPy fast path active: the full-component sweep must hold
        # the >= 2x settled-nodes/second acceptance bar (typically
        # 5-10x, so timing noise has ample headroom).  The pure-Python
        # fallback (~1.3x) is reported above but not asserted on —
        # wall-clock ratios that tight are too noisy for a hard gate.
        assert new_full >= 2.0 * old_full
