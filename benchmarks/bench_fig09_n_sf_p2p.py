"""Figure 9: effect of n (POI count) on SF, P2P.

SE's size must grow with n while SP-Oracle's stays flat (it is
POI-independent) and large; SE must outclass both baselines on query
time at every n.
"""

from conftest import by_method

from repro.experiments import figure9, format_series_table


def test_figure9_n_sweep(benchmark, scale, write_result):
    series = benchmark.pedantic(
        lambda: figure9(scale, num_queries=50), rounds=1, iterations=1)
    write_result("fig09_n_sf_p2p",
                 format_series_table("Figure 9: effect of n, SF, P2P",
                                     "n", series))
    n_values = sorted(int(k) for k in series)
    se_sizes = {}
    for key, results in series.items():
        methods = by_method(results)
        se = methods["SE(Random)"]
        sp = methods["SP-Oracle"]
        kalgo = methods["K-Algo"]
        se_sizes[int(key)] = se.size_bytes

        assert se.build_seconds < sp.build_seconds
        assert se.size_bytes < sp.size_bytes
        assert se.query_seconds_mean < sp.query_seconds_mean
        assert se.query_seconds_mean * 10 < kalgo.query_seconds_mean

    # SE size grows with n.  At laptop-scale n the WSPD resolves many
    # pairs at leaf level so growth sits between linear and quadratic
    # (the paper's n is ~600x larger, deep in the linear regime); the
    # hard cap is the full-materialization n^2 envelope.
    assert se_sizes[n_values[-1]] > se_sizes[n_values[0]]
    growth = se_sizes[n_values[-1]] / se_sizes[n_values[0]]
    n_growth = n_values[-1] / n_values[0]
    assert growth <= n_growth ** 2
