"""Baselines the paper compares SE against (Section 4.2)."""

from .full_apsp import FullAPSPBaseline
from .kalgo import KAlgo
from .sp_oracle import SPOracle, steiner_density_for_epsilon

__all__ = [
    "SPOracle",
    "steiner_density_for_epsilon",
    "KAlgo",
    "FullAPSPBaseline",
]
