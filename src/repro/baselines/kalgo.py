"""K-Algo — Kaul et al.'s on-the-fly approximate algorithm [19].

The best-known non-oracle competitor: no preprocessing beyond the
Steiner graph itself, every query runs a shortest-path search between
the two endpoints on ``G_eps``.  Its query cost is therefore dominated
by a term linear in ``N`` (with ``1/ε`` factors), which is exactly what
the paper's figures show dwarfing both oracles' query times.

Our implementation: attach the POIs to a Steiner graph whose density is
the ε-derived rate (shared with SP-Oracle), and answer each query with
an early-exit (optionally bidirectional) Dijkstra.  ``size_bytes`` is 0
— K-Algo maintains no index; the graph is the input representation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.index import DistanceIndexMixin, aligned_id_arrays
from ..geodesic.dijkstra import bidirectional_distance
from ..geodesic.engine import GeodesicEngine
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POISet
from .sp_oracle import steiner_density_for_epsilon

__all__ = ["KAlgo"]


class KAlgo(DistanceIndexMixin):
    """On-the-fly ε-approximate geodesic distances (no oracle).

    Parameters
    ----------
    mesh:
        Terrain surface.
    pois:
        POI set queries refer to.
    epsilon:
        Error parameter; controls the Steiner density.
    points_per_edge:
        Explicit density override.
    bidirectional:
        Use bidirectional search (halves settled nodes; same answer).
    """

    def __init__(self, mesh: TriangleMesh, pois: POISet, epsilon: float,
                 points_per_edge: Optional[int] = None,
                 bidirectional: bool = False):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        density = (points_per_edge if points_per_edge is not None
                   else steiner_density_for_epsilon(epsilon))
        self._engine = GeodesicEngine(mesh, pois, points_per_edge=density)
        self._bidirectional = bidirectional

    @property
    def engine(self) -> GeodesicEngine:
        return self._engine

    @property
    def num_pois(self) -> int:
        return self._engine.num_pois

    # supports_updates / is_compiled / query_matrix come from
    # DistanceIndexMixin: no index exists to update, and every query
    # is an on-the-fly graph search — never compiled.

    def size_bytes(self) -> int:
        """K-Algo stores no index."""
        return 0

    def build(self) -> "KAlgo":
        """No-op (present for harness symmetry)."""
        return self

    def query(self, source: int, target: int) -> float:
        """ε-approximate geodesic distance between two POIs."""
        if source == target:
            return 0.0
        if self._bidirectional:
            return bidirectional_distance(
                self._engine.graph.csr,
                self._engine.poi_node(source),
                self._engine.poi_node(target),
            )
        return self._engine.distance(source, target)

    def query_many(self, pairs) -> list:
        """Batched P2P queries (grouped multi-target searches)."""
        return self._engine.query_many(pairs)

    def query_batch(self, sources: Sequence[int],
                    targets: Sequence[int]) -> np.ndarray:
        """Batched :meth:`query` over aligned id arrays (float64).

        Same ``DistanceIndex`` surface as the compiled oracles; the
        work is still per-query graph searches, grouped so each
        distinct source runs one multi-target search.  Grouping keeps
        the search *direction* of every pair (no symmetric
        canonicalisation — float path sums accumulate per direction),
        so answers are bit-identical to a scalar :meth:`query` loop.
        """
        source_ids, target_ids = aligned_id_arrays(sources, targets)
        if self._bidirectional:
            # The bidirectional meeting rule is inherently per-pair.
            return np.array([self.query(int(a), int(b))
                             for a, b in zip(source_ids, target_ids)],
                            dtype=np.float64)
        engine = self._engine
        by_source = {}
        for a, b in zip(source_ids.tolist(), target_ids.tolist()):
            if a != b:
                by_source.setdefault(a, set()).add(b)
        answers = {}
        for a, poi_bs in by_source.items():
            node_of = {engine.poi_node(b): b for b in poi_bs}
            result = engine.distances_from_node(engine.poi_node(a),
                                                targets=list(node_of))
            distances = result.distances
            for node, b in node_of.items():
                answers[(a, b)] = distances.get(node, math.inf)
        return np.array([0.0 if a == b else answers[(a, b)]
                         for a, b in zip(source_ids.tolist(),
                                         target_ids.tolist())],
                        dtype=np.float64)

    def query_xy(self, source_xy: Tuple[float, float],
                 target_xy: Tuple[float, float]) -> float:
        """A2A query: attach both points transiently and search."""
        node_s = self._engine.attach_point(*source_xy)
        node_t = self._engine.attach_point(*target_xy)
        try:
            return self._engine.node_distance(node_s, node_t)
        finally:
            self._engine.detach_points(2)
