"""SP-Oracle — the Steiner-point-based baseline of Djidjev & Sommer [12].

The paper's strongest competitor.  It is *POI-independent*: it builds a
Steiner graph ``G_eps`` over the whole terrain and indexes exact
distances between Steiner points, so its size scales with ``N`` (and
``1/ε``) regardless of how few POIs there are — the second drawback
Section 1.3 calls out.

Our implementation follows the adapted oracle described in Section
4.2.1 verbatim:

* ``G_eps``: the :class:`~repro.geodesic.graph.GeodesicGraph` with a
  density derived from ε (``points_per_edge ≈ 1/sqrt(ε)``, the paper's
  ``O(1/(sin θ sqrt(ε)) log 1/ε)`` rate with the constants dropped);
* the index stores exact pairwise distances between all Steiner
  points/vertices of ``G_eps`` (computed by repeated Dijkstra — [12]'s
  internal separator compression is replaced by the plain table, which
  can only *flatter* SP-Oracle's query time, making SE's measured win
  conservative; see DESIGN.md substitution 5);
* a query between two surface points gathers the Steiner sets ``X_s`` /
  ``X_t`` on the containing + adjacent faces and returns
  ``min d(s, p_s) + d_index(p_s, p_t) + d(p_t, t)``.

V2V queries go through the same neighbourhood machinery (not a bare
table lookup), matching the adapted-query cost model of [12].
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..geodesic.dijkstra import dijkstra
from ..geodesic.graph import GeodesicGraph
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POISet

__all__ = ["SPOracle", "steiner_density_for_epsilon"]


def steiner_density_for_epsilon(epsilon: float) -> int:
    """Map ε to a per-edge Steiner density (the ``1/sqrt(ε)`` rate)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return max(1, round(1.0 / math.sqrt(epsilon)))


@dataclass
class SPOracleStats:
    """Build-time breakdown."""

    graph_seconds: float = 0.0
    apsp_seconds: float = 0.0
    total_seconds: float = 0.0
    num_sites: int = 0


class SPOracle:
    """The adapted Steiner-point distance oracle of [12].

    Parameters
    ----------
    mesh:
        Terrain surface.
    epsilon:
        Error parameter; controls the Steiner density.
    points_per_edge:
        Explicit density override (defaults to the ε-derived value).

    Warning
    -------
    The index is Θ(S²) in the number of Steiner sites — this is the
    scalability wall the paper demonstrates.  Keep meshes small.
    """

    def __init__(self, mesh: TriangleMesh, epsilon: float,
                 points_per_edge: Optional[int] = None):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self._mesh = mesh
        self.epsilon = epsilon
        self._density = (points_per_edge if points_per_edge is not None
                         else steiner_density_for_epsilon(epsilon))
        self._graph: Optional[GeodesicGraph] = None
        self._matrix: Optional[np.ndarray] = None
        self.stats = SPOracleStats()
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "SPOracle":
        started = time.perf_counter()
        tick = time.perf_counter()
        self._graph = GeodesicGraph(self._mesh, self._density)
        self.stats.graph_seconds = time.perf_counter() - tick

        sites = self._graph.num_nodes
        tick = time.perf_counter()
        matrix = np.full((sites, sites), np.inf, dtype=np.float32)
        csr = self._graph.csr
        for source in range(sites):
            result = dijkstra(csr, source)
            # Settled ids/dists are parallel arrays: one fancy-indexed
            # row assignment replaces the per-node dict walk.
            matrix[source, result.settled_ids] = result.settled_dists
        self._matrix = matrix
        self.stats.apsp_seconds = time.perf_counter() - tick
        self.stats.total_seconds = time.perf_counter() - started
        self.stats.num_sites = sites
        self._built = True
        return self

    @property
    def is_built(self) -> bool:
        return self._built

    @property
    def num_sites(self) -> int:
        self._require_built()
        return self._graph.num_nodes

    def size_bytes(self) -> int:
        """Index size under the 8-bytes-per-stored-distance model."""
        self._require_built()
        return 8 * self._matrix.shape[0] * self._matrix.shape[1]

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("oracle not built; call build() first")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _neighborhood(self, x: float, y: float
                      ) -> Tuple[np.ndarray, List[int]]:
        face_id = self._mesh.locate_face(x, y)
        if face_id < 0:
            raise ValueError(f"({x}, {y}) is outside the terrain")
        point = self._mesh.project_onto_surface(x, y)
        sites: List[int] = []
        seen = set()
        for adjacent in self._mesh.faces_adjacent_to(face_id):
            for node in self._graph.face_boundary_nodes(adjacent):
                if node not in seen:
                    seen.add(node)
                    sites.append(node)
        return point, sites

    def query_xy(self, source_xy: Tuple[float, float],
                 target_xy: Tuple[float, float]) -> float:
        """ε-approximate distance between two surface points (A2A)."""
        self._require_built()
        source, sites_s = self._neighborhood(*source_xy)
        target, sites_t = self._neighborhood(*target_xy)
        matrix = self._matrix
        best = math.inf
        hops_s = [(float(np.linalg.norm(source - self._graph.position(p))), p)
                  for p in sites_s]
        hops_t = [(float(np.linalg.norm(target - self._graph.position(p))), p)
                  for p in sites_t]
        for hop_s, site_s in hops_s:
            if hop_s >= best:
                continue
            row = matrix[site_s]
            for hop_t, site_t in hops_t:
                total = hop_s + float(row[site_t]) + hop_t
                if total < best:
                    best = total
        return best

    def query_p2p(self, pois: POISet, source: int, target: int) -> float:
        """P2P query (the Section 4.2.1 adaptation)."""
        source_poi = pois[source]
        target_poi = pois[target]
        if source == target:
            return 0.0
        return self.query_xy((source_poi.x, source_poi.y),
                             (target_poi.x, target_poi.y))

    def p2p_index(self, pois: POISet):
        """This oracle bound to a POI set as a ``DistanceIndex``.

        See :class:`~repro.core.index.P2PIndexAdapter`: the adapter
        serves the id-based query/query_batch/query_matrix surface over
        :meth:`query_p2p`, so SP-Oracle slots into protocol consumers
        (harness, proximity queries) without per-family dispatch.
        """
        from ..core.index import P2PIndexAdapter
        self._require_built()
        return P2PIndexAdapter(self, pois)

    def query_vertex(self, vertex_a: int, vertex_b: int) -> float:
        """V2V query through the same neighbourhood machinery."""
        if vertex_a == vertex_b:
            return 0.0
        a = self._mesh.vertices[vertex_a]
        b = self._mesh.vertices[vertex_b]
        return self.query_xy((float(a[0]), float(a[1])),
                             (float(b[0]), float(b[1])))
