"""Full materialization baseline — the strawman of Section 2.

"A full materialization of geodesic distances for all possible pairs of
points in P is not feasible since the complexity of the oracle size and
the oracle building time are O(n²) and O(n N log² N)."  We implement it
anyway: it is the exactness/throughput reference for small ``n`` and
the ablation endpoint the other oracles are judged against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geodesic.engine import GeodesicEngine

__all__ = ["FullAPSPBaseline"]


@dataclass
class FullAPSPStats:
    total_seconds: float = 0.0
    ssad_calls: int = 0


class FullAPSPBaseline:
    """Exact n x n POI distance matrix via one SSAD per POI."""

    def __init__(self, engine: GeodesicEngine):
        self._engine = engine
        self._matrix: Optional[np.ndarray] = None
        self.stats = FullAPSPStats()

    def build(self) -> "FullAPSPBaseline":
        engine = self._engine
        n = engine.num_pois
        started = time.perf_counter()
        calls_before = engine.ssad_calls
        matrix = np.full((n, n), np.inf)
        rows = engine.distances_many(range(n))
        for source, row in enumerate(rows):
            matrix[source, list(row)] = list(row.values())
        self._matrix = matrix
        self.stats.total_seconds = time.perf_counter() - started
        self.stats.ssad_calls = engine.ssad_calls - calls_before
        return self

    @property
    def is_built(self) -> bool:
        return self._matrix is not None

    @property
    def num_pois(self) -> int:
        return self._engine.num_pois

    @property
    def supports_updates(self) -> bool:
        """``DistanceIndex`` flag: the matrix is rebuilt, not patched."""
        return False

    @property
    def is_compiled(self) -> bool:
        """Batches are fancy-indexed gathers — a compiled table."""
        return True

    def size_bytes(self) -> int:
        if self._matrix is None:
            raise RuntimeError("baseline not built; call build() first")
        return 8 * self._matrix.size

    def query(self, source: int, target: int) -> float:
        """Exact geodesic distance (O(1) table lookup)."""
        if self._matrix is None:
            raise RuntimeError("baseline not built; call build() first")
        return float(self._matrix[source, target])

    def query_batch(self, sources, targets) -> np.ndarray:
        """Batched :meth:`query`: one fancy-indexed gather (float64).

        Same protocol as the compiled SE oracle's ``query_batch``, so
        the baseline slots into vectorized proximity queries and the
        equivalence harness as the ground-truth comparator.
        """
        if self._matrix is None:
            raise RuntimeError("baseline not built; call build() first")
        source_ids = np.asarray(sources, dtype=np.intp)
        target_ids = np.asarray(targets, dtype=np.intp)
        return self._matrix[source_ids, target_ids].astype(np.float64,
                                                           copy=True)

    def query_matrix(self, pois=None) -> np.ndarray:
        """All-pairs submatrix over ``pois`` (default: all, a copy)."""
        if self._matrix is None:
            raise RuntimeError("baseline not built; call build() first")
        if pois is None:
            return self._matrix.copy()
        ids = np.asarray(pois, dtype=np.intp)
        return self._matrix[np.ix_(ids, ids)].astype(np.float64,
                                                     copy=True)

    def matrix(self) -> np.ndarray:
        """The full distance matrix (read-only view)."""
        if self._matrix is None:
            raise RuntimeError("baseline not built; call build() first")
        view = self._matrix.view()
        view.setflags(write=False)
        return view
