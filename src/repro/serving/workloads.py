"""Seeded, versioned, replayable scenario workloads.

PR 6's serve benchmark drives the server with uniform random query
pairs — fine for throughput curves, useless as *product traffic*.
This module defines a JSON-lines workload format plus generators for
three product-shaped scenarios:

``moving-agents``
    Agents wandering the terrain (the game-portals / wildlife-tracking
    examples), each step asking for its k nearest POIs.
``range-alerts``
    Sentinel POIs repeatedly sweeping a geofence radius around
    themselves (avalanche / wildlife-proximity alerting).
``coverage-audit``
    A reverse-nearest-neighbour sweep over every POI, auditing which
    facilities "own" which demand (the RNN coverage question).

File format (one JSON object per line, compact, keys sorted — so the
same seed regenerates the same *bytes*)::

    {"events":N,"format":"repro-workload","num_pois":...,"params":{...},
     "scenario":"moving-agents","seed":7,"terrain":"alps","version":1}
    {"k":3,"op":"knn","source":12}
    {"op":"range","radius":850.0,"source":4}
    ...

The header pins scenario, seed and parameters; events carry exactly
the fields the server op of the same name takes (minus ``terrain``,
which the header pins once).  Replays are sequential on one
connection, so a workload file replayed twice against the same server
yields byte-identical response streams — that equivalence is gated in
CI by ``benchmarks/bench_serve.py --scenario-store``.

Version 2 adds an optional **open-loop arrival-time field**: generated
with ``rate=R`` (mean events/second), each event carries
``"arrival_s"`` — a cumulative Poisson-process timestamp drawn from a
*separate* seeded stream, so the event sequence itself is bit-for-bit
what the same seed generated under version 1.
:func:`~repro.serving.loadgen.replay_workload` uses the field (with
``pace=True``) to drive fixed-rate open-loop replay; readers accept
both versions and unpaced files simply omit the field.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "WORKLOAD_FORMAT",
    "WORKLOAD_VERSION",
    "SUPPORTED_VERSIONS",
    "SCENARIOS",
    "WorkloadError",
    "Workload",
    "generate_workload",
    "dumps_workload",
    "loads_workload",
    "write_workload",
    "read_workload",
    "check_events",
]

WORKLOAD_FORMAT = "repro-workload"
WORKLOAD_VERSION = 2
#: versions this reader still speaks (1 = no arrival times)
SUPPORTED_VERSIONS = (1, 2)
SCENARIOS = ("moving-agents", "range-alerts", "coverage-audit")

#: seed offset for the arrival-time RNG stream.  Arrival timestamps
#: draw from their own ``random.Random`` so adding (or changing) a
#: rate never perturbs the event draws the same seed produced before.
_ARRIVAL_STREAM = 0x9E3779B1

#: ops an event line may carry, with their required fields
_EVENT_FIELDS = {
    "query": ("source", "target"),
    "knn": ("source", "k"),
    "range": ("source", "radius"),
    "rnn": ("source",),
}


class WorkloadError(ValueError):
    """Malformed workload file or unusable generation parameters."""


def _dump(obj: Dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Workload:
    """A parsed (or freshly generated) workload: header + events."""

    scenario: str
    terrain: str
    seed: int
    num_pois: int
    params: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def header(self) -> Dict[str, Any]:
        return {
            "format": WORKLOAD_FORMAT,
            "version": WORKLOAD_VERSION,
            "scenario": self.scenario,
            "terrain": self.terrain,
            "seed": self.seed,
            "num_pois": self.num_pois,
            "params": self.params,
            "events": len(self.events),
        }

    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event["op"]] = counts.get(event["op"], 0) + 1
        return counts


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def _moving_agents(
    rng: random.Random,
    num_pois: int,
    events: int,
    agents: int,
    k: int,
    respawn: float,
) -> List[Dict[str, Any]]:
    """Agents random-walking over POI sites, streaming kNN queries.

    Each agent sits at a POI and drifts to a nearby one per step (with
    an occasional respawn — a player teleporting, a collared animal
    released elsewhere), asking for its ``k`` nearest POIs from the new
    position.
    """
    positions = [rng.randrange(num_pois) for _ in range(agents)]
    k = max(1, min(k, num_pois - 1))
    out = []
    for _ in range(events):
        agent = rng.randrange(agents)
        if rng.random() < respawn:
            positions[agent] = rng.randrange(num_pois)
        else:
            step = rng.choice((-2, -1, 1, 2))
            positions[agent] = (positions[agent] + step) % num_pois
        out.append({"op": "knn", "source": positions[agent], "k": k})
    return out


def _range_alerts(
    rng: random.Random,
    num_pois: int,
    events: int,
    radius: float,
    sentinels: int,
) -> List[Dict[str, Any]]:
    """Sentinel POIs sweeping geofence radii around themselves."""
    if radius <= 0:
        raise WorkloadError(f"range-alerts needs a positive radius, got {radius}")
    chosen = rng.sample(range(num_pois), min(sentinels, num_pois))
    out = []
    for _ in range(events):
        source = rng.choice(chosen)
        swept = round(radius * (0.5 + rng.random()), 3)
        out.append({"op": "range", "source": source, "radius": swept})
    return out


def _coverage_audit(
    rng: random.Random, num_pois: int, events: int
) -> List[Dict[str, Any]]:
    """RNN sweep over every POI in a seeded shuffled order, cycling."""
    order = list(range(num_pois))
    rng.shuffle(order)
    return [{"op": "rnn", "source": order[i % num_pois]} for i in range(events)]


def generate_workload(
    scenario: str,
    terrain: str,
    num_pois: int,
    events: int,
    seed: int = 0,
    agents: int = 4,
    k: int = 3,
    radius: float = 1000.0,
    sentinels: int = 3,
    respawn: float = 0.05,
    rate: Optional[float] = None,
) -> Workload:
    """Generate a seeded scenario workload (byte-reproducible).

    ``rate`` (mean events/second), when given, stamps each event with
    an open-loop Poisson ``arrival_s`` timestamp from a dedicated RNG
    stream; the event draws themselves are unchanged.
    """
    if num_pois < 2:
        raise WorkloadError(f"need at least 2 POIs, got {num_pois}")
    if events < 1:
        raise WorkloadError(f"need at least 1 event, got {events}")
    if rate is not None and rate <= 0:
        raise WorkloadError(f"rate must be positive, got {rate}")
    rng = random.Random(seed)
    if scenario == "moving-agents":
        params: Dict[str, Any] = {"agents": agents, "k": k, "respawn": respawn}
        generated = _moving_agents(rng, num_pois, events, agents, k, respawn)
    elif scenario == "range-alerts":
        params = {"radius": radius, "sentinels": sentinels}
        generated = _range_alerts(rng, num_pois, events, radius, sentinels)
    elif scenario == "coverage-audit":
        params = {}
        generated = _coverage_audit(rng, num_pois, events)
    else:
        raise WorkloadError(
            f"unknown scenario {scenario!r}; choose from {', '.join(SCENARIOS)}"
        )
    if rate is not None:
        params["rate"] = rate
        arrivals = random.Random(seed ^ _ARRIVAL_STREAM)
        clock = 0.0
        for event in generated:
            clock += arrivals.expovariate(rate)
            event["arrival_s"] = round(clock, 6)
    return Workload(
        scenario=scenario,
        terrain=terrain,
        seed=seed,
        num_pois=num_pois,
        params=params,
        events=generated,
    )


# ----------------------------------------------------------------------
# (de)serialisation
# ----------------------------------------------------------------------
def dumps_workload(workload: Workload) -> str:
    """Serialise to the canonical byte-stable JSONL text."""
    lines = [_dump(workload.header)]
    lines.extend(_dump(event) for event in workload.events)
    return "\n".join(lines) + "\n"


def write_workload(workload: Workload, path) -> None:
    with open(path, "w", newline="\n") as handle:
        handle.write(dumps_workload(workload))


def _validate_event(event: Dict[str, Any], line_no: int) -> Dict[str, Any]:
    op = event.get("op")
    if op not in _EVENT_FIELDS:
        raise WorkloadError(
            f"line {line_no}: unknown op {op!r}; "
            f"expected one of {', '.join(sorted(_EVENT_FIELDS))}"
        )
    for required in _EVENT_FIELDS[op]:
        if required not in event:
            raise WorkloadError(
                f"line {line_no}: op {op!r} is missing field {required!r}"
            )
    arrival = event.get("arrival_s")
    if arrival is not None and (
        not isinstance(arrival, (int, float)) or arrival < 0
    ):
        raise WorkloadError(
            f"line {line_no}: arrival_s must be a non-negative number, "
            f"got {arrival!r}"
        )
    return event


def loads_workload(text: str) -> Workload:
    """Parse and validate workload JSONL text."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise WorkloadError("empty workload file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise WorkloadError(f"line 1: not JSON ({error})") from None
    if not isinstance(header, dict) or header.get("format") != WORKLOAD_FORMAT:
        raise WorkloadError(
            f"line 1: not a {WORKLOAD_FORMAT} header (missing format marker)"
        )
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise WorkloadError(
            f"unsupported workload version {version!r} (this reader "
            f"speaks versions {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    for key in ("scenario", "terrain", "seed", "num_pois", "events"):
        if key not in header:
            raise WorkloadError(f"line 1: header is missing {key!r}")
    events = []
    for line_no, line in enumerate(lines[1:], start=2):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise WorkloadError(f"line {line_no}: not JSON ({error})") from None
        events.append(_validate_event(event, line_no))
    if len(events) != header["events"]:
        raise WorkloadError(
            f"header promises {header['events']} events, file has "
            f"{len(events)} (truncated or over-full workload)"
        )
    return Workload(
        scenario=header["scenario"],
        terrain=header["terrain"],
        seed=header["seed"],
        num_pois=header["num_pois"],
        params=header.get("params", {}),
        events=events,
    )


def read_workload(path) -> Workload:
    with open(path) as handle:
        return loads_workload(handle.read())


def check_events(
    events: Sequence[Dict[str, Any]], num_pois: Optional[int]
) -> None:
    """Pre-flight id bounds check before replaying against a server."""
    if num_pois is None:
        return
    last_arrival = 0.0
    for index, event in enumerate(events):
        for key in ("source", "target"):
            value = event.get(key)
            if value is not None and not (0 <= value < num_pois):
                raise WorkloadError(
                    f"event {index}: {key}={value} outside the terrain's "
                    f"0..{num_pois - 1} POI range"
                )
        arrival = event.get("arrival_s")
        if arrival is not None:
            if arrival < last_arrival:
                raise WorkloadError(
                    f"event {index}: arrival_s={arrival} runs backwards "
                    f"(previous event arrived at {last_arrival})"
                )
            last_arrival = arrival
