"""Client and load generators for the NDJSON oracle server.

Three layers, all speaking :mod:`~repro.serving.protocol`:

:class:`OracleClient`
    A plain blocking socket client — one request, one reply.  This is
    what tests, the benchmark harness, and third-party scripts use to
    talk to a server; typed error replies surface as
    :class:`ServerError` carrying the protocol error type.

:func:`closed_loop`
    N client threads, each with its own connection, each issuing its
    share of a seeded workload as fast as responses come back.
    Closed-loop concurrency is what makes the server's coalescing
    visible: while one batch computes, the other N-1 clients' requests
    pile into the next batch.

:func:`open_loop`
    A single pipelined asyncio connection issuing requests at a fixed
    arrival rate regardless of completions (ids match responses to
    requests).  Open-loop latency shows what queueing does at a given
    offered load instead of letting slow responses throttle arrivals.

Both generators return a :class:`LoadReport` with QPS, p50/p95/p99
latency, and the per-pair distances aligned with the input workload —
so callers can equivalence-gate every networked answer against a
direct :class:`~repro.serving.service.OracleService` replay.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import protocol

__all__ = [
    "ServerError",
    "OracleClient",
    "LoadReport",
    "ReplayReport",
    "sample_pairs",
    "closed_loop",
    "open_loop",
    "replay_workload",
    "replay_direct",
]


class ServerError(Exception):
    """A typed error reply from the server."""

    def __init__(
        self, error_type: str, message: str, extra: Optional[Dict] = None
    ):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.extra = extra or {}


def _raise_from_reply(reply: Dict[str, Any]) -> None:
    error = reply.get("error") or {}
    extra = {
        key: value
        for key, value in reply.items()
        if key not in ("ok", "id", "error")
    }
    raise ServerError(
        error.get("type", "internal"),
        error.get("message", "unspecified server error"),
        extra,
    )


class OracleClient:
    """Blocking request/response client for one server connection."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------
    @property
    def stream(self):
        """The buffered socket stream, for raw pre-encoded traffic."""
        return self._file

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, block for its reply, return ``result``."""
        self._file.write(protocol.encode(protocol.request(op, **fields)))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = protocol.decode_line(line)
        if not reply.get("ok"):
            _raise_from_reply(reply)
        return reply["result"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "OracleClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- verbs ---------------------------------------------------------
    def hello(self) -> Dict[str, Any]:
        return self.call("hello")

    def terrains(self) -> List[str]:
        return self.call("terrains")["terrains"]

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def describe(self, terrain: str) -> Dict[str, Any]:
        return self.call("describe", terrain=terrain)["meta"]

    def query(self, terrain: str, source: int, target: int) -> float:
        return self.call(
            "query", terrain=terrain, source=source, target=target
        )["distance"]

    def batch(
        self,
        terrain: str,
        sources: Sequence[int],
        targets: Sequence[int],
    ) -> List[float]:
        return self.call(
            "batch",
            terrain=terrain,
            sources=list(sources),
            targets=list(targets),
        )["distances"]

    def k_nearest(
        self, terrain: str, source: int, k: int
    ) -> List[Tuple[int, float]]:
        hits = self.call("knn", terrain=terrain, source=source, k=k)
        return [(poi, distance) for poi, distance in hits["neighbors"]]

    def range_query(
        self, terrain: str, source: int, radius: float
    ) -> List[Tuple[int, float]]:
        hits = self.call("range", terrain=terrain, source=source, radius=radius)
        return [(poi, distance) for poi, distance in hits["hits"]]

    def reverse_nearest(self, terrain: str, source: int) -> List[int]:
        return self.call("rnn", terrain=terrain, source=source)["pois"]

    def insert(self, terrain: str, x: float, y: float) -> int:
        return self.call("insert", terrain=terrain, x=x, y=y)["poi"]

    def delete(self, terrain: str, poi: int) -> None:
        self.call("delete", terrain=terrain, poi=poi)

    def flush(self, terrain: str) -> Dict[str, Any]:
        return self.call("flush", terrain=terrain)["meta"]


# ----------------------------------------------------------------------
# workloads and reports
# ----------------------------------------------------------------------
def sample_pairs(
    poi_count: int, count: int, seed: int = 0
) -> List[Tuple[int, int]]:
    """A seeded (source, target) workload over ``poi_count`` POIs."""
    rng = random.Random(seed)
    last = poi_count - 1
    return [
        (rng.randint(0, last), rng.randint(0, last)) for _ in range(count)
    ]


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    mode: str
    requests: int
    errors: int
    elapsed_s: float
    qps: float
    latency_ms: Dict[str, float]
    #: per-pair distances aligned with the input workload (None on error)
    distances: List[Optional[float]] = field(repr=False, default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed_s, 6),
            "qps": round(self.qps, 2),
            "latency_ms": self.latency_ms,
        }


def percentiles_ms(latencies: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/max of a latency sample, in milliseconds."""
    if not latencies:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(latencies)
    last = len(ordered) - 1

    def at(fraction: float) -> float:
        return ordered[min(last, int(round(fraction * last)))] * 1e3

    return {
        "p50": round(at(0.50), 4),
        "p95": round(at(0.95), 4),
        "p99": round(at(0.99), 4),
        "max": round(ordered[-1] * 1e3, 4),
    }


# ----------------------------------------------------------------------
# scenario replay: sequential, raw-byte-capturing
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """What one workload-file replay measured and received.

    ``response_bytes`` is the raw concatenated reply stream — the
    byte-identity acceptance check ("replaying the same seeded workload
    twice yields byte-identical response streams") compares these
    directly, so no decode/re-encode step can mask a drift.
    """

    terrain: str
    requests: int
    errors: int
    elapsed_s: float
    qps: float
    latency_ms: Dict[str, float]
    #: per-op latency percentiles, e.g. {"knn": {"p50": ...}, ...}
    op_latency_ms: Dict[str, Dict[str, float]]
    response_bytes: bytes = field(repr=False, default=b"")
    #: decoded ``result`` payloads aligned with events (None on error)
    results: List[Optional[Dict[str, Any]]] = field(
        repr=False, default_factory=list
    )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "terrain": self.terrain,
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed_s, 6),
            "qps": round(self.qps, 2),
            "latency_ms": self.latency_ms,
            "op_latency_ms": self.op_latency_ms,
        }


def replay_workload(
    host: str,
    port: int,
    terrain: str,
    events: Sequence[Dict[str, Any]],
    timeout: float = 60.0,
    pace: bool = False,
) -> ReplayReport:
    """Replay workload events sequentially over one connection.

    Event order is the workload file's order and ``request_id`` is the
    event index, so the reply stream is a pure function of (server
    state, workload file) — replaying twice must produce identical
    bytes.  Typed error replies are counted, not raised: a scenario
    file probing error paths is still a valid workload.

    With ``pace=True``, events carrying the version-2 ``arrival_s``
    field are held until their Poisson arrival time (open-loop offered
    load on a single connection); events without the field send
    immediately.  Pacing changes *when* requests leave, never their
    order or content, so the byte-identity property is unaffected.
    """
    latencies: List[float] = []
    by_op: Dict[str, List[float]] = {}
    results: List[Optional[Dict[str, Any]]] = []
    raw = bytearray()
    errors = 0
    with OracleClient(host, port, timeout=timeout) as client:
        stream = client.stream
        began = time.perf_counter()
        for index, event in enumerate(events):
            fields = {
                key: value
                for key, value in event.items()
                if key not in ("op", "arrival_s")
            }
            line = protocol.encode(
                protocol.request(
                    event["op"], request_id=index, terrain=terrain, **fields
                )
            )
            if pace and event.get("arrival_s") is not None:
                wait = began + event["arrival_s"] - time.perf_counter()
                if wait > 0:
                    time.sleep(wait)
            tick = time.perf_counter()
            stream.write(line)
            stream.flush()
            reply_line = stream.readline()
            took = time.perf_counter() - tick
            if not reply_line:
                raise ConnectionError("server closed the connection mid-replay")
            latencies.append(took)
            by_op.setdefault(event["op"], []).append(took)
            raw += reply_line
            reply = json.loads(reply_line)
            if reply.get("ok"):
                results.append(reply["result"])
            else:
                results.append(None)
                errors += 1
        elapsed = time.perf_counter() - began
    return ReplayReport(
        terrain=terrain,
        requests=len(events),
        errors=errors,
        elapsed_s=elapsed,
        qps=len(events) / elapsed if elapsed > 0 else 0.0,
        latency_ms=percentiles_ms(latencies),
        op_latency_ms={
            op: percentiles_ms(samples) for op, samples in sorted(by_op.items())
        },
        response_bytes=bytes(raw),
        results=results,
    )


def replay_direct(
    service: Any, terrain: str, events: Sequence[Dict[str, Any]]
) -> List[Optional[Dict[str, Any]]]:
    """Answer workload events directly on an ``OracleService``.

    Returns result payloads shaped exactly like the server's wire
    results (same keys, same int/float coercions), so a networked
    replay can be equivalence-gated with ``==`` against this reference.
    Events the service rejects yield ``None``, mirroring the error
    slots of :func:`replay_workload`.
    """
    reference: List[Optional[Dict[str, Any]]] = []
    for event in events:
        op = event["op"]
        try:
            if op == "query":
                distance = service.query(
                    terrain, event["source"], event["target"]
                )
                reference.append({"distance": float(distance)})
            elif op == "batch":
                distances = service.query_batch(
                    terrain, event["sources"], event["targets"]
                )
                reference.append(
                    {"distances": [float(value) for value in distances]}
                )
            elif op == "knn":
                hits = service.k_nearest(terrain, event["source"], event["k"])
                reference.append(
                    {"neighbors": [[int(poi), float(d)] for poi, d in hits]}
                )
            elif op == "range":
                hits = service.range_query(
                    terrain, event["source"], event["radius"]
                )
                reference.append(
                    {"hits": [[int(poi), float(d)] for poi, d in hits]}
                )
            elif op == "rnn":
                pois = service.reverse_nearest(terrain, event["source"])
                reference.append({"pois": [int(poi) for poi in pois]})
            else:
                reference.append(None)
        except (KeyError, IndexError, ValueError):
            reference.append(None)
    return reference


# ----------------------------------------------------------------------
# closed loop: N threads, request -> wait -> next request
# ----------------------------------------------------------------------
def closed_loop(
    host: str,
    port: int,
    terrain: str,
    pairs: Sequence[Tuple[int, int]],
    clients: int = 16,
) -> LoadReport:
    """Drive ``pairs`` through ``clients`` synchronous connections.

    Client ``i`` owns pairs ``i, i+clients, i+2*clients, ...``; each
    issues its next query the moment the previous answer arrives.
    """
    clients = max(1, min(clients, len(pairs) or 1))
    distances: List[Optional[float]] = [None] * len(pairs)
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    failures: List[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def worker(slot: int) -> None:
        try:
            # Request lines are pre-encoded before the barrier: the
            # measured loop is write -> readline -> json.loads and
            # nothing else, so client-side CPU (shared with the server
            # when cores are scarce) stays out of the comparison as
            # much as possible.
            indices = range(slot, len(pairs), clients)
            encoded = [
                protocol.encode(
                    protocol.request(
                        "query",
                        terrain=terrain,
                        source=pairs[index][0],
                        target=pairs[index][1],
                    )
                )
                for index in indices
            ]
            with OracleClient(host, port) as client:
                stream = client.stream
                loads = json.loads
                clock = time.perf_counter
                lane = latencies[slot]
                barrier.wait()
                for index, line in zip(indices, encoded):
                    began = clock()
                    stream.write(line)
                    stream.flush()
                    reply = loads(stream.readline())
                    lane.append(clock() - began)
                    if reply.get("ok"):
                        distances[index] = reply["result"]["distance"]
                    else:
                        errors[slot] += 1
        except BaseException as error:  # noqa: BLE001 - reported to caller
            failures.append(error)
            with contextlib.suppress(threading.BrokenBarrierError):
                barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    with contextlib.suppress(threading.BrokenBarrierError):
        barrier.wait()
    began = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - began
    if failures:
        raise failures[0]
    flat = [sample for slot in latencies for sample in slot]
    return LoadReport(
        mode=f"closed-loop x{clients}",
        requests=len(flat),
        errors=sum(errors),
        elapsed_s=elapsed,
        qps=len(flat) / elapsed if elapsed > 0 else 0.0,
        latency_ms=percentiles_ms(flat),
        distances=distances,
    )


# ----------------------------------------------------------------------
# open loop: one pipelined connection, fixed arrival rate
# ----------------------------------------------------------------------
def open_loop(
    host: str,
    port: int,
    terrain: str,
    pairs: Sequence[Tuple[int, int]],
    rate: float,
) -> LoadReport:
    """Issue ``pairs`` at ``rate`` requests/s on one pipelined stream.

    Arrivals are scheduled on a fixed clock — a slow response does not
    delay the next send — and responses are matched by request id, so
    the measured latency includes any server-side queueing the offered
    load causes.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    return asyncio.run(_open_loop(host, port, terrain, pairs, rate))


async def _open_loop(
    host: str,
    port: int,
    terrain: str,
    pairs: Sequence[Tuple[int, int]],
    rate: float,
) -> LoadReport:
    reader, writer = await asyncio.open_connection(host, port)
    total = len(pairs)
    distances: List[Optional[float]] = [None] * total
    latencies: List[float] = []
    sent_at: Dict[int, float] = {}
    errors = 0

    async def receive() -> int:
        failures = 0
        for _ in range(total):
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            reply = json.loads(line)
            index = reply["id"]
            latencies.append(time.perf_counter() - sent_at[index])
            if reply.get("ok"):
                distances[index] = reply["result"]["distance"]
            else:
                failures += 1
        return failures

    receiver = asyncio.create_task(receive())
    interval = 1.0 / rate
    began = time.perf_counter()
    for index, (source, target) in enumerate(pairs):
        delay = began + index * interval - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        sent_at[index] = time.perf_counter()
        writer.write(
            protocol.encode(
                protocol.request(
                    "query",
                    request_id=index,
                    terrain=terrain,
                    source=source,
                    target=target,
                )
            )
        )
        await writer.drain()
    errors = await receiver
    elapsed = time.perf_counter() - began
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return LoadReport(
        mode=f"open-loop @{rate:g}/s",
        requests=total,
        errors=errors,
        elapsed_s=elapsed,
        qps=total / elapsed if elapsed > 0 else 0.0,
        latency_ms=percentiles_ms(latencies),
        distances=distances,
    )
