"""Asyncio TCP front-end for :class:`~repro.serving.service.OracleService`.

This is the network half of the serving story: the service object
stays transport-agnostic, and this module gives it a concurrent
newline-delimited-JSON front door (:mod:`~repro.serving.protocol`)
whose hot path is built around the one thing the compiled tables are
best at — *batched* probes.

Batching / coalescing
---------------------
Concurrent in-flight ``query`` requests against the same terrain are
not dispatched one by one.  Each lands in a per-terrain
:class:`_TerrainBatcher`; a drainer task cuts the pending queue into
``query_batch`` calls of up to ``max_batch`` rows.  With
``linger_us == 0`` the batcher is *work-conserving*: it never delays a
lone request, but while one batch computes, new arrivals pile up and
ride the next cut — under concurrency, batches form naturally and the
per-probe fixed cost (argument marshalling, plane selection, hash
probe setup) is amortised across every rider.  A non-zero
``linger_us`` additionally holds the first request back to let a
larger batch form — a latency-for-throughput knob for open-loop
traffic.  Per-terrain coalescing statistics (``server_batches``,
``server_batched_queries``, mean batch size, coalesce ratio) fold into
the service's existing counters.

A coalesced batch that fails as a whole (one bad POI id poisons the
vectorised probe) is re-run item by item, so each request gets its own
typed answer and innocent riders still resolve.

Workers
-------
``run_workers`` (the ``serve --workers N`` path) starts N processes
that each mmap the same read-only ``.store`` files — the OS page
cache shares one physical copy — behind ``SO_REUSEPORT``, so the
kernel spreads connections across workers.  Mutable terrains are
pinned to the *writer* (worker 0): it alone holds the dynamic
overlay, and it additionally listens on a dedicated writer port.
Update verbs on any other worker answer ``not-writer`` with the
writer's address.  ``flush`` publishes a new store generation through
the existing atomic temp+rename repack; reader workers register the
store with ``track_generation=True`` and re-mmap on the next access
after the signature changes — in-flight queries keep the old maps
(the renamed-over inode stays alive) and are never dropped.

Everything here runs the service calls inline on the event loop: the
query kernels are single-digit-microsecond NumPy probes and the GIL
would serialise a thread pool anyway — process-level parallelism is
what ``--workers`` is for.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from . import protocol
from .protocol import ProtocolError
from .service import OracleService, TerrainSpec

__all__ = [
    "OracleServer",
    "ThreadedServer",
    "ServerConfig",
    "MutableSpec",
    "WorkerFleet",
    "build_service",
    "run_workers",
]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MutableSpec:
    """How the writer worker rebuilds a mutable terrain's workload."""

    mesh_path: str
    pois: int = 50
    poi_seed: int = 1
    density: int = 1
    rebuild_factor: float = 0.25


@dataclass(frozen=True)
class ServerConfig:
    """Everything a worker process needs to build and serve a service."""

    registrations: Tuple[Tuple[str, str], ...]
    mutable: Dict[str, MutableSpec] = field(default_factory=dict)
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    max_batch: int = 64
    linger_us: float = 0.0
    max_resident: int = 4
    max_resident_tiles: Optional[int] = None
    max_resident_bytes: Optional[int] = None


def _mutable_engine(spec: MutableSpec):
    from ..geodesic import GeodesicEngine
    from ..terrain import read_mesh, sample_uniform

    mesh = read_mesh(spec.mesh_path)
    pois = sample_uniform(mesh, spec.pois, seed=spec.poi_seed)
    return GeodesicEngine(mesh, pois, points_per_edge=spec.density)


def build_service(config: ServerConfig, worker_id: int = 0) -> OracleService:
    """One worker's service: same stores, role-dependent registration.

    The writer (worker 0) registers mutable terrains with their engine
    and owns the overlay; every other worker registers the same store
    read-only with generation tracking, so a flush on the writer is
    observed on the next access as a re-mmap.
    """
    service = OracleService(max_resident=config.max_resident)
    for name, path in config.registrations:
        spec = config.mutable.get(name)
        if spec is None:
            service.register(name, TerrainSpec(
                path,
                max_resident_tiles=config.max_resident_tiles,
                max_resident_bytes=config.max_resident_bytes,
            ))
        elif worker_id == 0:
            service.register(name, TerrainSpec(
                path,
                mutable=True,
                engine=_mutable_engine(spec),
                rebuild_factor=spec.rebuild_factor,
            ))
        else:
            service.register(
                name, TerrainSpec(path, track_generation=True)
            )
    return service


# ----------------------------------------------------------------------
# batching / coalescing
# ----------------------------------------------------------------------
class _TerrainBatcher:
    """Coalesce concurrent point queries into ``query_batch`` probes."""

    def __init__(
        self,
        service: OracleService,
        terrain_id: str,
        max_batch: int,
        linger_s: float,
    ):
        self._service = service
        self._terrain_id = terrain_id
        self._max_batch = max(1, int(max_batch))
        self._linger_s = max(0.0, float(linger_s))
        self._pending: List[Tuple[int, int, asyncio.Future]] = []
        self._drainer: Optional[asyncio.Task] = None

    def submit(self, source: int, target: int) -> "asyncio.Future[float]":
        """Enqueue one point query; resolves with its distance."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((source, target, future))
        if self._drainer is None or self._drainer.done():
            self._drainer = loop.create_task(self._drain())
        return future

    async def _drain(self) -> None:
        while self._pending:
            if self._linger_s > 0 and len(self._pending) < self._max_batch:
                await asyncio.sleep(self._linger_s)
            else:
                # One cooperative yield: requests that are already
                # parsed and sitting in the loop's ready queue get to
                # join before the batch cuts.
                await asyncio.sleep(0)
            batch = self._pending[: self._max_batch]
            del self._pending[: len(batch)]
            if batch:
                self._execute(batch)

    def _execute(self, batch: List[Tuple[int, int, asyncio.Future]]) -> None:
        sources = [source for source, _, _ in batch]
        targets = [target for _, target, _ in batch]
        try:
            distances = self._service.query_batch(
                self._terrain_id, sources, targets
            )
        except Exception:
            # The vectorised probe failed as a whole (e.g. one unknown
            # POI id in a coalesced batch).  Isolate per item so every
            # requester gets its own typed answer.
            for source, target, future in batch:
                if future.done():
                    continue
                try:
                    value = self._service.query(
                        self._terrain_id, source, target
                    )
                except Exception as error:
                    future.set_exception(error)
                else:
                    future.set_result(value)
        else:
            for (_, _, future), distance in zip(batch, distances):
                if not future.done():
                    future.set_result(float(distance))
        try:
            counters = self._service.counters(self._terrain_id)
        except KeyError:
            return
        counters.server_batches += 1
        counters.server_batched_queries += len(batch)

    def cancel(self) -> None:
        if self._drainer is not None:
            self._drainer.cancel()
        for _, _, future in self._pending:
            if not future.done():
                future.cancelled() or future.cancel()
        self._pending.clear()


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
class OracleServer:
    """One worker's asyncio TCP server over one :class:`OracleService`.

    Connections speak the newline-delimited JSON protocol.  Requests on
    a connection may be pipelined: every line is handled inline in the
    reader loop (no per-request task — point queries resolve to batcher
    futures) and responses are written strictly in request order
    (clients that tag requests with ``id`` get the echo back
    regardless).
    """

    _LINE_LIMIT = 1 << 20  # 1 MiB: huge batch requests, not huge abuse

    def __init__(
        self,
        service: OracleService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        linger_us: float = 0.0,
        worker_id: int = 0,
        workers: int = 1,
        writer_host: Optional[str] = None,
        writer_port: Optional[int] = None,
        sock: Optional[socket.socket] = None,
        writer_sock: Optional[socket.socket] = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.max_batch = int(max_batch)
        self.linger_us = float(linger_us)
        self.worker_id = int(worker_id)
        self.workers = int(workers)
        self.is_writer = self.worker_id == 0
        self.writer_host = writer_host if writer_host is not None else host
        self.writer_port = writer_port
        self._sock = sock
        self._writer_sock = writer_sock
        self._servers: List[asyncio.base_events.Server] = []
        self._batchers: Dict[str, _TerrainBatcher] = {}
        self._connections: set = set()
        self._handlers = {
            "hello": self._op_hello,
            "terrains": self._op_terrains,
            "stats": self._op_stats,
            "describe": self._op_describe,
            "query": self._op_query,
            "batch": self._op_batch,
            "knn": self._op_knn,
            "range": self._op_range,
            "rnn": self._op_rnn,
            "insert": self._op_insert,
            "delete": self._op_delete,
            "flush": self._op_flush,
        }

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._sock is not None:
            server = await asyncio.start_server(
                self._serve_connection,
                sock=self._sock,
                limit=self._LINE_LIMIT,
            )
        else:
            server = await asyncio.start_server(
                self._serve_connection,
                host=self.host,
                port=self.port,
                limit=self._LINE_LIMIT,
            )
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        if self._writer_sock is not None:
            writer_server = await asyncio.start_server(
                self._serve_connection,
                sock=self._writer_sock,
                limit=self._LINE_LIMIT,
            )
            self._servers.append(writer_server)
            self.writer_port = writer_server.sockets[0].getsockname()[1]
        elif self.is_writer and self.writer_port is None:
            self.writer_port = self.port
        return self.host, self.port

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        for batcher in self._batchers.values():
            batcher.cancel()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    # -- connection handling -------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        responses: asyncio.Queue = asyncio.Queue()
        sender = asyncio.create_task(self._send_responses(responses, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit.
                    await responses.put(
                        protocol.error_response(
                            None, "bad-request", "request line too long"
                        )
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Handled inline, no task per request: sync verbs
                # resolve to a response dict right here, and `query`
                # resolves to a (request_id, future) pair the sender
                # awaits in order.  A burst of pipelined lines is
                # processed back-to-back without yielding, which is
                # exactly what feeds the batcher whole batches.
                await responses.put(self._handle_line(line))
        except asyncio.CancelledError:
            pass
        finally:
            # Drain gracefully; a shutdown cancel landing mid-drain must
            # end this task *normally* (stop() has already collected it)
            # instead of letting CancelledError leak into asyncio's
            # connection-made callback as log noise.
            try:
                await responses.put(None)
                await sender
            except (Exception, asyncio.CancelledError):
                sender.cancel()
                with contextlib.suppress(BaseException):
                    await sender
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()
            if task is not None:
                self._connections.discard(task)

    async def _send_responses(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            if isinstance(item, tuple):
                request_id, future = item
                try:
                    distance = await future
                    item = protocol.ok_response(
                        request_id, {"distance": float(distance)}
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as error:
                    error_type, message = protocol.classify_exception(error)
                    item = protocol.error_response(
                        request_id, error_type, message
                    )
            writer.write(protocol.encode(item))
            if queue.empty():
                try:
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    return

    def _handle_line(self, line: bytes) -> Any:
        """One request line -> a response dict, or (id, future) for
        a coalesced query the sender resolves in order."""
        request_id = None
        try:
            message = protocol.decode_line(line)
            request_id = message.get("id")
            request = protocol.validate_request(message)
            result = self._handlers[request["op"]](request)
            if isinstance(result, asyncio.Future):
                return (request_id, result)
            return protocol.ok_response(request_id, result)
        except ProtocolError as error:
            return protocol.error_response(
                request_id,
                error.error_type,
                error.message,
                **getattr(error, "extra", {}),
            )
        except Exception as error:
            error_type, message = protocol.classify_exception(error)
            return protocol.error_response(request_id, error_type, message)

    # -- op handlers ---------------------------------------------------
    def _batcher(self, terrain_id: str) -> _TerrainBatcher:
        batcher = self._batchers.get(terrain_id)
        if batcher is None:
            batcher = _TerrainBatcher(
                self.service,
                terrain_id,
                self.max_batch,
                self.linger_us * 1e-6,
            )
            self._batchers[terrain_id] = batcher
        return batcher

    def _op_hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "worker": self.worker_id,
            "workers": self.workers,
            "writer": self.is_writer,
            "writer_host": self.writer_host,
            "writer_port": self.writer_port,
            "max_batch": self.max_batch,
            "linger_us": self.linger_us,
            "terrains": self.service.terrains(),
        }

    def _op_terrains(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"terrains": self.service.terrains()}

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"worker": self.worker_id, "terrains": self.service.stats()}

    def _op_describe(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"meta": self.service.describe(request["terrain"])}

    def _op_query(self, request: Dict[str, Any]) -> "asyncio.Future[float]":
        return self._batcher(request["terrain"]).submit(
            request["source"], request["target"]
        )

    def _op_batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        distances = self.service.query_batch(
            request["terrain"], request["sources"], request["targets"]
        )
        return {"distances": [float(value) for value in distances]}

    def _op_knn(self, request: Dict[str, Any]) -> Dict[str, Any]:
        hits = self.service.k_nearest(
            request["terrain"], request["source"], request["k"]
        )
        return {"neighbors": [[int(poi), float(d)] for poi, d in hits]}

    def _op_range(self, request: Dict[str, Any]) -> Dict[str, Any]:
        hits = self.service.range_query(
            request["terrain"], request["source"], request["radius"]
        )
        return {"hits": [[int(poi), float(d)] for poi, d in hits]}

    def _op_rnn(self, request: Dict[str, Any]) -> Dict[str, Any]:
        pois = self.service.reverse_nearest(
            request["terrain"], request["source"]
        )
        return {"pois": [int(poi) for poi in pois]}

    def _require_writer(self, op: str) -> None:
        if not self.is_writer:
            error = ProtocolError(
                "not-writer",
                f"op {op!r} is pinned to the writer worker "
                f"(worker 0 at {self.writer_host}:{self.writer_port})",
            )
            error.extra = {
                "writer_host": self.writer_host,
                "writer_port": self.writer_port,
            }
            raise error

    def _op_insert(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._require_writer("insert")
        poi = self.service.insert_poi(
            request["terrain"], request["x"], request["y"]
        )
        return {"poi": int(poi)}

    def _op_delete(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._require_writer("delete")
        self.service.delete_poi(request["terrain"], request["poi"])
        return {"poi": request["poi"]}

    def _op_flush(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._require_writer("flush")
        meta = self.service.flush(request["terrain"])
        return {"meta": meta}


# ----------------------------------------------------------------------
# threaded harness (tests / benchmarks / single-process embedding)
# ----------------------------------------------------------------------
class ThreadedServer:
    """Run one :class:`OracleServer` on a private event-loop thread.

    The foreground thread gets a plain blocking interface: ``start()``
    returns once the port is bound, ``stop()`` once the loop is down.
    Used by the test suite and the load benchmark; the CLI uses the
    process-blocking :func:`run_workers` instead.
    """

    def __init__(self, service: OracleService, **server_kwargs: Any):
        self._service = service
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self.server: Optional[OracleServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def start(self) -> "ThreadedServer":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="oracle-server",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("server thread failed to start in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = OracleServer(self._service, **self._server_kwargs)
        try:
            await server.start()
        except BaseException as error:
            self._error = error
            self._ready.set()
            return
        self.server = server
        self.host, self.port = server.host, server.port
        self._ready.set()
        await self._stop_event.wait()
        await server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# ----------------------------------------------------------------------
# multi-worker mode
# ----------------------------------------------------------------------
def _reuseport_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
            raise RuntimeError(
                "multi-worker mode needs SO_REUSEPORT "
                "(unavailable on this platform)"
            )
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(
    config: ServerConfig,
    worker_id: int,
    port: int,
    writer_port: int,
    ready: Any = None,
) -> None:
    """Entry point of one worker process."""
    service = build_service(config, worker_id)
    asyncio.run(
        _worker_serve(service, config, worker_id, port, writer_port, ready)
    )


async def _worker_serve(
    service: OracleService,
    config: ServerConfig,
    worker_id: int,
    port: int,
    writer_port: int,
    ready: Any,
) -> None:
    sock = _reuseport_socket(config.host, port)
    writer_sock = None
    if worker_id == 0 and config.workers > 1:
        writer_sock = _reuseport_socket(config.host, writer_port)
    server = OracleServer(
        service,
        host=config.host,
        port=port,
        max_batch=config.max_batch,
        linger_us=config.linger_us,
        worker_id=worker_id,
        workers=config.workers,
        writer_host=config.host,
        writer_port=writer_port,
        sock=sock,
        writer_sock=writer_sock,
    )
    await server.start()
    role = "writer" if worker_id == 0 else "reader"
    print(
        f"[worker {worker_id}] {role} listening on "
        f"{server.host}:{server.port}"
        + (f" (writer port {server.writer_port})" if writer_sock else ""),
        flush=True,
    )
    if ready is not None:
        ready.release()
    try:
        await asyncio.Event().wait()  # serve until the process is stopped
    finally:
        await server.stop()


class WorkerFleet:
    """N worker processes behind one ``SO_REUSEPORT`` address.

    The parent reserves the data port (and the writer port) with
    bound-but-never-listening placeholder sockets, so ephemeral-port
    runs are race-free: workers bind the same numbers with
    ``SO_REUSEPORT`` and only *their* listening sockets receive
    connections.
    """

    def __init__(self, config: ServerConfig):
        if config.workers < 1:
            raise ValueError("workers must be at least 1")
        self.config = config
        self.host = config.host
        self.port: Optional[int] = None
        self.writer_port: Optional[int] = None
        self._placeholders: List[socket.socket] = []
        self._processes: List[multiprocessing.Process] = []

    def start(self, timeout: float = 120.0) -> Tuple[str, int]:
        data_sock = _reuseport_socket(self.config.host, self.config.port)
        self._placeholders.append(data_sock)
        self.port = data_sock.getsockname()[1]
        writer_sock = _reuseport_socket(self.config.host, 0)
        self._placeholders.append(writer_sock)
        self.writer_port = writer_sock.getsockname()[1]

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ready = context.Semaphore(0)
        for worker_id in range(self.config.workers):
            process = context.Process(
                target=_worker_main,
                args=(
                    self.config,
                    worker_id,
                    self.port,
                    self.writer_port,
                    ready,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        deadline_step = max(timeout / self.config.workers, 1.0)
        for _ in range(self.config.workers):
            if not ready.acquire(timeout=deadline_step):
                self.stop()
                raise RuntimeError(
                    "worker fleet failed to come up in time"
                )
        return self.host, self.port

    def alive(self) -> List[bool]:
        return [process.is_alive() for process in self._processes]

    def join(self) -> None:
        """Block until every worker exits (CLI foreground mode)."""
        for process in self._processes:
            process.join()

    def stop(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=30)
        self._processes.clear()
        for sock in self._placeholders:
            with contextlib.suppress(OSError):
                sock.close()
        self._placeholders.clear()

    def __enter__(self) -> "WorkerFleet":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_workers(
    config: ServerConfig, service: Optional[OracleService] = None
) -> int:
    """Foreground entry point for ``serve --port ... [--workers N]``.

    Single-worker mode serves in-process (no fork) and can reuse an
    already-built ``service`` (the CLI registers terrains before
    dispatching here); multi-worker mode spawns the fleet — each
    worker builds its own service so every process gets its own mmap —
    and blocks until interrupted.  Returns a process exit code.
    """
    if config.workers == 1:
        if service is None:
            service = build_service(config, worker_id=0)

        async def _serve() -> None:
            server = OracleServer(
                service,
                host=config.host,
                port=config.port,
                max_batch=config.max_batch,
                linger_us=config.linger_us,
            )
            await server.start()
            print(
                f"listening on {server.host}:{server.port} "
                f"(1 worker, max_batch={config.max_batch}, "
                f"linger_us={config.linger_us:g})",
                flush=True,
            )
            try:
                await asyncio.Event().wait()
            finally:
                await server.stop()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("shutting down")
        return 0

    fleet = WorkerFleet(config)
    try:
        host, port = fleet.start()
        print(
            f"{config.workers} workers listening on {host}:{port} "
            f"(writer port {fleet.writer_port})",
            flush=True,
        )
        fleet.join()
    except KeyboardInterrupt:
        print("shutting down workers")
    finally:
        fleet.stop()
    return 0
