"""Multi-terrain oracle service over packed binary stores.

The store (:mod:`~repro.core.store`) makes one oracle's load cost
near-zero; this module turns that into a *serving* abstraction: a
single :class:`OracleService` fronts any number of terrains, each
registered as a packed store file, and dispatches batched distance /
proximity queries to the right compiled tables.

Design
------
* **One registration entry point.**  ``register`` takes a
  :class:`TerrainSpec` — a frozen declarative description (``path``,
  ``mutable=``, ``engine=``, ``track_generation=``, ``pin=``,
  ``max_resident_tiles=``) that the CLI and
  :class:`~repro.serving.server.ServerConfig` both construct.  The old
  ``register(id, path, track_generation)`` / ``register_mutable``
  signatures survive as thin deprecated shims (``DeprecationWarning``;
  removal planned for the next API-cleanup PR).
* **Registration is free.**  ``register`` reads only the store's
  ``meta.json`` member (a few hundred bytes) — no array section is
  touched, so a service can register thousands of terrains at startup.
* **Residency is LRU-bounded.**  Compiled tables materialise on first
  query and at most ``max_resident`` terrains stay mapped; the least
  recently used is evicted when the bound would be exceeded.  Because
  sections are ``mmap``-ed read-only, eviction just drops references —
  the OS page cache decides what actually leaves memory, and a re-load
  of a warm store is microseconds.  ``pin=True`` keeps a terrain out
  of the eviction order entirely.
* **Tiled terrains page at tile granularity.**  A store packed by
  ``build --tiles`` opens as a
  :class:`~repro.core.tiled.TiledOracle`: the service-level LRU holds
  the (small) routing arrays while the oracle's internal LRU pages
  individual tile tables under ``TerrainSpec.max_resident_tiles``;
  per-tile load/evict/hit counters surface in :meth:`stats` and
  :meth:`describe`, so a terrain larger than RAM serves with bounded
  residency.
* **Mutable terrains.**  ``TerrainSpec(mutable=True, engine=...)``
  pairs a store with its terrain workload and wraps it in a
  :class:`~repro.core.dynamic.DynamicSEOracle` overlay
  (:class:`MutableRegistration`): the mmap sections stay read-only and
  shared while inserts/deletes accrue copy-on-write delta state on
  top.  ``insert_poi`` / ``delete_poi`` mutate the overlay;
  ``flush`` rebuilds over the active POI set and atomically repacks
  the store file through :mod:`~repro.core.store`, then re-adopts the
  fresh maps.  Queries route through the same
  :class:`~repro.core.index.DistanceIndex` protocol as static
  terrains — proximity scans derive the live external ids from the
  index itself (:mod:`~repro.queries.proximity`).
* **Counters per terrain.**  Every terrain tracks queries, batches,
  resident-table hits, loads, evictions, updates, flushes, and
  cumulative load/query seconds (:class:`TerrainCounters`), so an
  operator can see which terrains are hot and what the residency
  bound costs in re-loads.

The service is deliberately transport-agnostic: the CLI wraps it in a
line-oriented REPL (``python -m repro serve --repl``), and an HTTP or
RPC front-end would wrap the same object the same way.
"""

from __future__ import annotations

import functools
import os
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.dynamic import DynamicSEOracle
from ..core.index import DistanceIndex, ensure_index
from ..core.store import (
    StoredOracle,
    open_oracle,
    pack_oracle,
    read_store_meta,
)
from ..geodesic.engine import GeodesicEngine
from ..queries import (
    k_nearest_neighbors,
    range_query,
    reverse_nearest_neighbors,
)

__all__ = ["OracleService", "TerrainSpec", "TerrainCounters",
           "MutableRegistration"]


@dataclass(frozen=True)
class TerrainSpec:
    """Declarative terrain registration: everything
    :meth:`OracleService.register` needs to know, in one immutable
    value the CLI, :class:`~repro.serving.server.ServerConfig` and
    tests all construct the same way.

    Parameters
    ----------
    path:
        The packed store file (monolithic or tiled).
    mutable:
        Wrap the store in a :class:`~repro.core.dynamic.
        DynamicSEOracle` overlay; requires ``engine``.  Mutable
        terrains are implicitly pinned.  Tiled stores cannot be
        mutable (each tile's tables are immutable shards).
    engine:
        The workload the store was packed for — the surface update
        SSADs run on.  Mutable registrations only.
    track_generation:
        Follow the store file across atomic repacks: accesses
        re-check the file signature and re-mmap new generations
        (the reader half of the multi-worker story).
    pin:
        Exclude the terrain from LRU eviction once resident.
    rebuild_factor / jobs:
        Overlay rebuild knobs (mutable only), as in
        :meth:`~repro.core.dynamic.DynamicSEOracle.from_store`.
    max_resident_tiles:
        Tiled stores: bound on concurrently resident tile tables
        (``None``: all tiles may stay resident).
    max_resident_bytes:
        Monolithic stores: serve through a
        :class:`~repro.core.paged.PagedOracle` whose pair/hash-column
        page pool is capped at this many bytes (``None``: unbounded
        whole-section mmaps).  Queries are bit-identical at any
        bound; the paging ledger surfaces in :meth:`OracleService.
        stats` / :meth:`OracleService.describe`.
    """

    path: str
    mutable: bool = False
    engine: Optional[GeodesicEngine] = None
    track_generation: bool = False
    pin: bool = False
    rebuild_factor: float = 0.25
    jobs: int = 1
    max_resident_tiles: Optional[int] = None
    max_resident_bytes: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "path", os.fspath(self.path))
        if self.mutable and self.engine is None:
            raise ValueError(
                "TerrainSpec(mutable=True) requires engine= — updates "
                "need a terrain workload to run SSADs on")
        if self.mutable and self.track_generation:
            raise ValueError(
                "mutable terrains are the writer side; "
                "track_generation is for reader registrations")
        if self.mutable and self.max_resident_bytes is not None:
            raise ValueError(
                "mutable terrains serve through an in-memory overlay; "
                "max_resident_bytes applies to static registrations")
        if (self.max_resident_bytes is not None
                and self.max_resident_tiles is not None):
            raise ValueError(
                "max_resident_tiles pages tiled stores, "
                "max_resident_bytes pages monolithic ones — a store "
                "is one or the other")


@dataclass
class TerrainCounters:
    """Per-terrain serving statistics."""

    queries: int = 0          # individual distances answered
    batches: int = 0          # query_batch / proximity dispatches
    hits: int = 0             # dispatches served by resident tables
    loads: int = 0            # store opens (cold + post-eviction)
    evictions: int = 0        # times this terrain lost residency
    refreshes: int = 0        # generation re-mmaps (tracked terrains)
    updates: int = 0          # POI inserts + deletes (mutable only)
    flushes: int = 0          # rebuild + repack cycles (mutable only)
    flush_slices: int = 0     # background-flush work slices (mutable)
    server_batches: int = 0   # coalesced dispatches (network server)
    server_batched_queries: int = 0  # point queries they carried
    load_seconds: float = 0.0
    query_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        mean_query = (self.query_seconds / self.batches
                      if self.batches else 0.0)
        mean_batch = (self.server_batched_queries / self.server_batches
                      if self.server_batches else 0.0)
        # Fraction of coalesced point queries that rode along in an
        # already-dispatched batch instead of paying their own probe.
        coalesce = (1.0 - self.server_batches / self.server_batched_queries
                    if self.server_batched_queries else 0.0)
        return {
            "queries": self.queries,
            "batches": self.batches,
            "hits": self.hits,
            "loads": self.loads,
            "evictions": self.evictions,
            "refreshes": self.refreshes,
            "updates": self.updates,
            "flushes": self.flushes,
            "flush_slices": self.flush_slices,
            "server_batches": self.server_batches,
            "server_batched_queries": self.server_batched_queries,
            "mean_server_batch": mean_batch,
            "coalesce_ratio": coalesce,
            "load_seconds": self.load_seconds,
            "query_seconds": self.query_seconds,
            "mean_batch_seconds": mean_query,
        }


@dataclass
class _Registration:
    path: str
    meta: Dict[str, Any]
    counters: TerrainCounters = field(default_factory=TerrainCounters)
    #: re-open the store when its on-disk generation changes (used by
    #: reader workers following a writer's atomic repacks)
    track_generation: bool = False
    #: never evict this terrain once resident
    pin: bool = False
    #: tiled stores: residency bound passed through to the tile LRU
    max_resident_tiles: Optional[int] = None
    #: monolithic stores: page-pool byte budget for the paged backend
    max_resident_bytes: Optional[int] = None

    @property
    def mutable(self) -> bool:
        return False


@dataclass
class MutableRegistration(_Registration):
    """A mutable terrain: mmap'd store base + copy-on-write overlay.

    The overlay (a :class:`~repro.core.dynamic.DynamicSEOracle` built
    via :meth:`~repro.core.dynamic.DynamicSEOracle.from_store`) serves
    every query; its base tables are the store's read-only maps, so
    the store file keeps being shared across processes while updates
    accrue only private delta state.  ``dirty`` tracks divergence
    between the in-memory overlay and the on-disk store — ``flush``
    clears it by rebuilding and repacking.
    """

    overlay: Optional[DynamicSEOracle] = None
    dirty: bool = False
    #: a background flush is in flight: updates and further flushes
    #: must wait for it (queries keep flowing between its slices)
    flushing: bool = False

    @property
    def mutable(self) -> bool:
        return True


def _locked(method):
    """Serialise a public entry point on the service's re-entrant lock.

    The service is shared between transports (the asyncio server's
    loop thread, the CLI REPL, test harnesses) and its registry /
    LRU / counters are plain Python structures — one coarse lock keeps
    every interleaving equivalent to *some* serial order, which is the
    contract the concurrency tests pin down.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class OracleService:
    """Batched query dispatch across many registered terrain oracles.

    Parameters
    ----------
    max_resident:
        Upper bound on simultaneously resident (mapped + compiled)
        terrains.  Must be >= 1; the least recently *used* terrain is
        evicted first.

    Example
    -------
    >>> service = OracleService(max_resident=2)
    >>> service.register("alps", "alps.store")     # doctest: +SKIP
    >>> service.query_batch("alps", [0, 3], [7, 9])  # doctest: +SKIP
    """

    def __init__(self, max_resident: int = 4):
        if max_resident < 1:
            raise ValueError("max_resident must be at least 1")
        self.max_resident = max_resident
        self._registry: Dict[str, _Registration] = {}
        self._resident: "OrderedDict[str, StoredOracle]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    @_locked
    def register(self, terrain_id: str,
                 spec: Union[TerrainSpec, str, os.PathLike],
                 track_generation: Optional[bool] = None
                 ) -> Dict[str, Any]:
        """Register a terrain from a :class:`TerrainSpec`; returns its
        store meta.

        Only the store's metadata member is read for static terrains —
        the tables become resident lazily, on first query (mutable
        specs map their base immediately; that *is* the overlay's
        base).  Re-registering an id replaces the spec and drops any
        resident tables for it; a mutable registration with unflushed
        updates refuses to be replaced (flush or unregister it first).

        ``TerrainSpec.track_generation`` makes the registration follow
        the file across atomic repacks: every access re-checks the
        store's :func:`~repro.core.store.file_signature` and re-mmaps
        when a writer has published a new generation (counted as a
        ``refresh``).  This is the reader half of the multi-worker
        single-writer story.

        .. deprecated:: PR 7
            ``register(terrain_id, path, track_generation=...)`` with
            a bare path still works but warns; it will be removed in
            the next API-cleanup PR.
        """
        if not isinstance(spec, TerrainSpec):
            warnings.warn(
                "register(terrain_id, path, track_generation=...) is "
                "deprecated; pass register(terrain_id, "
                "TerrainSpec(path, ...)) — the path form will be "
                "removed in the next API-cleanup PR",
                DeprecationWarning, stacklevel=2)
            spec = TerrainSpec(path=os.fspath(spec),
                               track_generation=bool(track_generation))
        elif track_generation is not None:
            raise TypeError(
                "track_generation rides inside TerrainSpec; do not "
                "pass it alongside a spec")
        self._refuse_dirty_replacement(terrain_id)
        if spec.mutable:
            return self._register_mutable(terrain_id, spec)
        meta = read_store_meta(spec.path)
        if spec.max_resident_bytes is not None and "tiles" in meta:
            raise ValueError(
                f"{spec.path}: tiled stores page at tile granularity; "
                "use max_resident_tiles instead of max_resident_bytes")
        previous = self._registry.get(terrain_id)
        if terrain_id in self._resident:
            del self._resident[terrain_id]
            if previous is not None:
                # The terrain lost residency: account it like any
                # other eviction so loads/evictions reconcile.
                previous.counters.evictions += 1
        registration = _Registration(
            path=spec.path, meta=meta,
            track_generation=spec.track_generation, pin=spec.pin,
            max_resident_tiles=spec.max_resident_tiles,
            max_resident_bytes=spec.max_resident_bytes)
        if previous is not None:
            registration.counters = previous.counters
        self._registry[terrain_id] = registration
        return meta

    def _register_mutable(self, terrain_id: str,
                          spec: TerrainSpec) -> Dict[str, Any]:
        """The mutable half of :meth:`register`.

        ``spec.engine`` is the workload the store was packed for
        (checked via the fingerprint) — it is what gives update
        operations a surface to run SSADs on, which a bare store
        cannot provide.  The store's sections are mapped read-only
        immediately and become the overlay's base tables; the terrain
        is pinned (it never participates in the LRU — evicting it
        would discard unflushed updates).
        """
        meta = read_store_meta(spec.path)
        if "tiles" in meta:
            raise ValueError(
                f"{spec.path}: tiled stores cannot be registered "
                "mutable — tile shards are immutable; rebuild with "
                "--tiles after editing the POI set")
        stored = open_oracle(spec.path, engine=spec.engine, strict=True)
        overlay = DynamicSEOracle.from_store(
            stored, spec.engine, rebuild_factor=spec.rebuild_factor,
            jobs=spec.jobs)
        ensure_index(overlay)
        previous = self._registry.get(terrain_id)
        self._resident.pop(terrain_id, None)
        registration = MutableRegistration(
            path=spec.path, meta=meta, overlay=overlay, pin=True)
        if previous is not None:
            registration.counters = previous.counters
        self._registry[terrain_id] = registration
        return registration.meta

    def register_mutable(self, terrain_id: str, path: str,
                         engine: GeodesicEngine,
                         rebuild_factor: float = 0.25,
                         jobs: int = 1) -> Dict[str, Any]:
        """Deprecated shim for the pre-:class:`TerrainSpec` signature.

        .. deprecated:: PR 7
            Use ``register(terrain_id, TerrainSpec(path, mutable=True,
            engine=engine, ...))``; this shim will be removed in the
            next API-cleanup PR.
        """
        warnings.warn(
            "register_mutable is deprecated; use register(terrain_id, "
            "TerrainSpec(path, mutable=True, engine=engine, ...)) — "
            "removal planned for the next API-cleanup PR",
            DeprecationWarning, stacklevel=2)
        return self.register(terrain_id, TerrainSpec(
            path=os.fspath(path), mutable=True, engine=engine,
            rebuild_factor=rebuild_factor, jobs=jobs))

    def _refuse_dirty_replacement(self, terrain_id: str) -> None:
        """Re-registration must not silently drop unflushed updates."""
        previous = self._registry.get(terrain_id)
        if previous is not None and previous.mutable and previous.dirty:
            raise ValueError(
                f"terrain {terrain_id!r} has unflushed updates; "
                "flush or unregister it before re-registering"
            )

    @_locked
    def unregister(self, terrain_id: str) -> None:
        """Drop a registration (unflushed overlay updates are lost)."""
        self._registration(terrain_id)
        self._resident.pop(terrain_id, None)
        del self._registry[terrain_id]

    @_locked
    def terrains(self) -> List[str]:
        """Registered terrain ids, registration order."""
        return list(self._registry)

    @_locked
    def describe(self, terrain_id: str) -> Dict[str, Any]:
        """Store metadata of one terrain (no arrays touched)."""
        registration = self._registration(terrain_id)
        meta = dict(registration.meta)
        meta["path"] = registration.path
        meta["mutable"] = registration.mutable
        if registration.mutable:
            meta["resident"] = True  # pinned: the overlay holds the maps
            meta["overlay_size"] = registration.overlay.overlay_size
            meta["num_pois"] = registration.overlay.num_pois
            meta["dirty"] = registration.dirty
        else:
            meta["resident"] = terrain_id in self._resident
            stored = self._resident.get(terrain_id)
            if stored is not None and hasattr(stored, "tile_counters"):
                meta["tile_paging"] = stored.tile_counters()
            if stored is not None and hasattr(stored, "page_counters"):
                meta["paging"] = stored.page_counters()
        return meta

    def _registration(self, terrain_id: str) -> _Registration:
        try:
            return self._registry[terrain_id]
        except KeyError:
            raise KeyError(
                f"unknown terrain id {terrain_id!r}; registered: "
                f"{sorted(self._registry)}"
            ) from None

    # ------------------------------------------------------------------
    # residency
    # ------------------------------------------------------------------
    @_locked
    def oracle(self, terrain_id: str) -> StoredOracle:
        """The resident :class:`StoredOracle`, loading (and possibly
        evicting another terrain) as needed.  Mutable terrains serve
        through their overlay instead — see :meth:`_index`."""
        registration = self._registration(terrain_id)
        if registration.mutable:
            raise ValueError(
                f"terrain {terrain_id!r} is mutable; it serves through "
                "its overlay, not a bare StoredOracle"
            )
        stored = self._resident.get(terrain_id)
        if (stored is not None and registration.track_generation
                and stored.is_stale()):
            # A writer published a new store generation (atomic
            # rename): drop the old maps and fall through to a fresh
            # open.  In-flight queries on the old maps stay valid —
            # the mapped inode outlives the rename.
            del self._resident[terrain_id]
            registration.meta = read_store_meta(registration.path)
            registration.counters.refreshes += 1
            stored = None
        if stored is not None:
            self._resident.move_to_end(terrain_id)
            registration.counters.hits += 1
            return stored
        stored = open_oracle(
            registration.path,
            max_resident_tiles=registration.max_resident_tiles,
            max_resident_bytes=registration.max_resident_bytes)
        registration.counters.loads += 1
        registration.counters.load_seconds += stored.load_seconds
        while len(self._resident) >= self.max_resident:
            # Oldest unpinned resident goes first; when everything
            # resident is pinned the bound is allowed to overshoot
            # (pins are an operator promise, not a suggestion).
            victim = next(
                (resident_id for resident_id in self._resident
                 if not self._registry[resident_id].pin), None)
            if victim is None:
                break
            del self._resident[victim]
            self._registry[victim].counters.evictions += 1
        self._resident[terrain_id] = stored
        return stored

    @_locked
    def resident_terrains(self) -> List[str]:
        """Terrain ids currently resident, least recently used first.

        Mutable terrains are pinned outside the LRU and not listed.
        """
        return list(self._resident)

    @_locked
    def evict(self, terrain_id: str) -> bool:
        """Drop a terrain's resident tables; True if it was resident.

        Mutable terrains cannot be evicted (their overlay would lose
        unflushed updates) and pinned terrains refuse too; evicting
        either returns False.
        """
        if self._registration(terrain_id).pin:
            return False
        if self._resident.pop(terrain_id, None) is None:
            return False
        self._registry[terrain_id].counters.evictions += 1
        return True

    # ------------------------------------------------------------------
    # protocol routing
    # ------------------------------------------------------------------
    def _index(self, terrain_id: str) -> DistanceIndex:
        """The terrain's :class:`DistanceIndex` — the one routing
        point.  Static terrains serve their (possibly freshly loaded)
        stored oracle, mutable terrains their overlay; consumers never
        branch on the family again — the proximity functions derive
        the candidate universe from the index itself."""
        registration = self._registration(terrain_id)
        if registration.mutable:
            return registration.overlay
        return self.oracle(terrain_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, terrain_id: str, source: int, target: int) -> float:
        """One ε-approximate distance on one terrain."""
        return float(self.query_batch(terrain_id, [source], [target])[0])

    @_locked
    def query_batch(self, terrain_id: str, sources: Sequence[int],
                    targets: Sequence[int]) -> np.ndarray:
        """Aligned batched distances on one terrain (float64 array)."""
        index = self._index(terrain_id)
        counters = self._registry[terrain_id].counters
        started = time.perf_counter()
        result = index.query_batch(sources, targets)
        counters.query_seconds += time.perf_counter() - started
        counters.batches += 1
        counters.queries += int(result.shape[0])
        return result

    @_locked
    def query_matrix(self, terrain_id: str,
                     pois: Optional[Sequence[int]] = None) -> np.ndarray:
        """All-pairs matrix on one terrain (default: every POI; on a
        mutable terrain the default id set is the live ids)."""
        index = self._index(terrain_id)
        counters = self._registry[terrain_id].counters
        started = time.perf_counter()
        result = index.query_matrix(pois)
        counters.query_seconds += time.perf_counter() - started
        counters.batches += 1
        counters.queries += int(result.size)
        return result

    # ------------------------------------------------------------------
    # proximity queries
    # ------------------------------------------------------------------
    @_locked
    def k_nearest(self, terrain_id: str, source: int, k: int
                  ) -> List[Tuple[int, float]]:
        """kNN by geodesic distance on one terrain."""
        index = self._index(terrain_id)
        return self._timed_proximity(
            terrain_id, index.num_pois,
            lambda: k_nearest_neighbors(index, source, k))

    @_locked
    def range_query(self, terrain_id: str, source: int, radius: float
                    ) -> List[Tuple[int, float]]:
        """All POIs within a geodesic radius on one terrain."""
        index = self._index(terrain_id)
        return self._timed_proximity(
            terrain_id, index.num_pois,
            lambda: range_query(index, source, radius))

    @_locked
    def reverse_nearest(self, terrain_id: str, source: int) -> List[int]:
        """Monochromatic RNN on one terrain."""
        index = self._index(terrain_id)
        return self._timed_proximity(
            terrain_id, index.num_pois * index.num_pois,
            lambda: reverse_nearest_neighbors(index, source))

    def _timed_proximity(self, terrain_id: str, probes: int, run):
        counters = self._registry[terrain_id].counters
        started = time.perf_counter()
        result = run()
        counters.query_seconds += time.perf_counter() - started
        counters.batches += 1
        counters.queries += probes
        return result

    # ------------------------------------------------------------------
    # updates (mutable terrains)
    # ------------------------------------------------------------------
    def _mutable(self, terrain_id: str) -> MutableRegistration:
        registration = self._registration(terrain_id)
        if not registration.mutable:
            raise ValueError(
                f"terrain {terrain_id!r} is not mutable; register it "
                "with register_mutable to accept updates"
            )
        return registration

    @_locked
    def insert_poi(self, terrain_id: str, x: float, y: float) -> int:
        """Insert the surface POI above planar ``(x, y)``; returns its
        stable external id.  The insert lands in the terrain's overlay
        — the on-disk store is untouched until :meth:`flush`."""
        registration = self._mutable(terrain_id)
        self._refuse_mid_flush(terrain_id, registration, "insert_poi")
        new_id = registration.overlay.insert(x, y)
        registration.counters.updates += 1
        registration.dirty = True
        return new_id

    @_locked
    def delete_poi(self, terrain_id: str, poi_id: int) -> None:
        """Tombstone a POI; subsequent queries on it raise
        ``KeyError``.  On-disk state is untouched until
        :meth:`flush`."""
        registration = self._mutable(terrain_id)
        self._refuse_mid_flush(terrain_id, registration, "delete_poi")
        registration.overlay.delete(poi_id)
        registration.counters.updates += 1
        registration.dirty = True

    @_locked
    def flush(self, terrain_id: str,
              mode: str = "incremental") -> Dict[str, Any]:
        """Persist a mutable terrain: rebuild + repack + re-adopt.

        Rebuilds the base oracle over the active POI set (compacting
        tombstones and folding the overlay in), repacks the store file
        *atomically* (temp file + rename, so concurrent readers of the
        old maps stay valid), re-opens it and re-adopts the fresh
        read-only maps as the overlay's base.  No-op when the overlay
        matches the on-disk store already.  Returns the (possibly
        refreshed) store meta.

        ``mode`` selects the rebuild path: ``"incremental"`` (default)
        replays the overlay's cross-rebuild SSAD memo so only
        churn-damaged rows recompute, ``"full"`` is the from-scratch
        reference rebuild.  Both produce bit-identical stores; the
        repack itself splices unchanged section bytes from the
        previous generation either way.  For a flush that never stalls
        readers, see :meth:`flush_background`.
        """
        if mode not in ("incremental", "full"):
            raise ValueError(
                f"unknown flush mode {mode!r}; expected 'incremental' "
                "or 'full' (background flushes go through "
                "flush_background)")
        registration = self._mutable(terrain_id)
        self._refuse_mid_flush(terrain_id, registration, "flush")
        overlay = registration.overlay
        if not registration.dirty:
            return registration.meta
        if overlay.has_pending_updates:
            overlay.flush(incremental=(mode == "incremental"))
        return self._publish_flush(registration)

    def _publish_flush(self, registration: MutableRegistration
                       ) -> Dict[str, Any]:
        """Pack + atomic-replace + re-adopt one flushed generation.

        The pack is canonical (wall-clock meta pinned) and splices
        unchanged section bytes from the outgoing generation — the
        incremental-repack half of the sublinear flush.
        """
        overlay = registration.overlay
        temp_path = registration.path + ".flush.tmp"
        try:
            pack_oracle(overlay.oracle, temp_path, canonical=True,
                        previous=registration.path)
            os.replace(temp_path, registration.path)
        except BaseException:
            # A failed pack/replace must not leave a stale temp file
            # next to the store; the registration stays dirty and the
            # (already rebuilt) overlay keeps serving.
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        stored = open_oracle(registration.path,
                             engine=overlay.engine, strict=True)
        overlay.adopt_store(stored)
        registration.meta = read_store_meta(registration.path)
        registration.counters.flushes += 1
        registration.dirty = False
        return registration.meta

    def flush_background(self, terrain_id: str, incremental: bool = True,
                         slice_ssads: int = 8) -> threading.Thread:
        """Flush in bounded slices on a worker thread; returns it.

        The rebuild proceeds as :meth:`~repro.core.dynamic.
        DynamicSEOracle.flush_steps` slices: each slice takes the
        service lock, performs at most ``slice_ssads`` SSAD
        computations, and releases it — so reader queries interleave
        between slices instead of stalling for the whole rebuild.  One
        generation is published at the end (atomic repack + re-adopt,
        under the lock), exactly as a synchronous flush would.
        Updates and other flushes on the terrain are refused while the
        flush is in flight; join the returned thread to wait for
        completion.  Errors are recorded on the thread's
        ``flush_outcome`` dict under ``"error"``.
        """
        with self._lock:
            registration = self._mutable(terrain_id)
            self._refuse_mid_flush(terrain_id, registration,
                                   "flush_background")
            registration.flushing = True
        outcome: Dict[str, Any] = {}

        def runner() -> None:
            try:
                overlay = registration.overlay
                if registration.dirty and overlay.has_pending_updates:
                    steps = overlay.flush_steps(
                        incremental=incremental, slice_ssads=slice_ssads)
                    try:
                        while True:
                            with self._lock:
                                try:
                                    next(steps)
                                except StopIteration:
                                    break
                                registration.counters.flush_slices += 1
                    finally:
                        steps.close()
                with self._lock:
                    if registration.dirty:
                        outcome["meta"] = self._publish_flush(
                            registration)
            except BaseException as error:
                outcome["error"] = error
            finally:
                with self._lock:
                    registration.flushing = False

        thread = threading.Thread(
            target=runner, name=f"flush-{terrain_id}", daemon=True)
        thread.flush_outcome = outcome  # type: ignore[attr-defined]
        thread.start()
        return thread

    def _refuse_mid_flush(self, terrain_id: str,
                          registration: MutableRegistration,
                          operation: str) -> None:
        if registration.flushing:
            raise RuntimeError(
                f"terrain {terrain_id!r} has a background flush in "
                f"flight; {operation} must wait for it to finish")

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @_locked
    def counters(self, terrain_id: str) -> TerrainCounters:
        return self._registration(terrain_id).counters

    @_locked
    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-terrain serving statistics, keyed by terrain id."""
        report = {}
        for terrain_id, registration in self._registry.items():
            entry = registration.counters.as_dict()
            entry["path"] = registration.path
            entry["mutable"] = registration.mutable
            entry["num_pois"] = None
            if registration.mutable:
                entry["resident"] = True  # pinned
                entry["num_pois"] = registration.overlay.num_pois
                entry["overlay_size"] = registration.overlay.overlay_size
                entry["dirty"] = registration.dirty
            else:
                entry["resident"] = terrain_id in self._resident
                stored = self._resident.get(terrain_id)
                if stored is not None:
                    entry["num_pois"] = stored.num_pois
                    if hasattr(stored, "tile_counters"):
                        # Tiled terrain: the tile-granular ledger the
                        # oracle's internal LRU keeps.
                        entry["tiles"] = stored.tile_counters()
                    if hasattr(stored, "page_counters"):
                        # Paged terrain: the page-pool ledger
                        # (loads/evictions/hits, resident/peak bytes).
                        entry["paging"] = stored.page_counters()
            report[terrain_id] = entry
        return report
