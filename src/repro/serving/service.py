"""Multi-terrain oracle service over packed binary stores.

The store (:mod:`~repro.core.store`) makes one oracle's load cost
near-zero; this module turns that into a *serving* abstraction: a
single :class:`OracleService` fronts any number of terrains, each
registered as a packed store file, and dispatches batched distance /
proximity queries to the right compiled tables.

Design
------
* **Registration is free.**  ``register`` reads only the store's
  ``meta.json`` member (a few hundred bytes) — no array section is
  touched, so a service can register thousands of terrains at startup.
* **Residency is LRU-bounded.**  Compiled tables materialise on first
  query and at most ``max_resident`` terrains stay mapped; the least
  recently used is evicted when the bound would be exceeded.  Because
  sections are ``mmap``-ed read-only, eviction just drops references —
  the OS page cache decides what actually leaves memory, and a re-load
  of a warm store is microseconds.
* **Counters per terrain.**  Every terrain tracks queries, batches,
  resident-table hits, loads, evictions, and cumulative load/query
  seconds (:class:`TerrainCounters`), so an operator can see which
  terrains are hot and what the residency bound costs in re-loads.

The service is deliberately transport-agnostic: the CLI wraps it in a
line-oriented REPL (``python -m repro serve --repl``), and an HTTP or
RPC front-end would wrap the same object the same way.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.store import StoredOracle, open_oracle, read_store_meta
from ..queries import (
    k_nearest_neighbors,
    range_query,
    reverse_nearest_neighbors,
)

__all__ = ["OracleService", "TerrainCounters"]


@dataclass
class TerrainCounters:
    """Per-terrain serving statistics."""

    queries: int = 0          # individual distances answered
    batches: int = 0          # query_batch / proximity dispatches
    hits: int = 0             # dispatches served by resident tables
    loads: int = 0            # store opens (cold + post-eviction)
    evictions: int = 0        # times this terrain lost residency
    load_seconds: float = 0.0
    query_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        mean_query = (self.query_seconds / self.batches
                      if self.batches else 0.0)
        return {
            "queries": self.queries,
            "batches": self.batches,
            "hits": self.hits,
            "loads": self.loads,
            "evictions": self.evictions,
            "load_seconds": self.load_seconds,
            "query_seconds": self.query_seconds,
            "mean_batch_seconds": mean_query,
        }


@dataclass
class _Registration:
    path: str
    meta: Dict[str, Any]
    counters: TerrainCounters = field(default_factory=TerrainCounters)


class OracleService:
    """Batched query dispatch across many registered terrain oracles.

    Parameters
    ----------
    max_resident:
        Upper bound on simultaneously resident (mapped + compiled)
        terrains.  Must be >= 1; the least recently *used* terrain is
        evicted first.

    Example
    -------
    >>> service = OracleService(max_resident=2)
    >>> service.register("alps", "alps.store")     # doctest: +SKIP
    >>> service.query_batch("alps", [0, 3], [7, 9])  # doctest: +SKIP
    """

    def __init__(self, max_resident: int = 4):
        if max_resident < 1:
            raise ValueError("max_resident must be at least 1")
        self.max_resident = max_resident
        self._registry: Dict[str, _Registration] = {}
        self._resident: "OrderedDict[str, StoredOracle]" = OrderedDict()

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def register(self, terrain_id: str, path: str) -> Dict[str, Any]:
        """Register a packed store under ``terrain_id``; returns its meta.

        Only the store's metadata member is read — the terrain becomes
        resident lazily, on its first query.  Re-registering an id
        replaces the path and drops any resident tables for it.
        """
        meta = read_store_meta(path)
        previous = self._registry.get(terrain_id)
        if terrain_id in self._resident:
            del self._resident[terrain_id]
            if previous is not None:
                # The terrain lost residency: account it like any
                # other eviction so loads/evictions reconcile.
                previous.counters.evictions += 1
        registration = _Registration(path=str(path), meta=meta)
        if previous is not None:
            registration.counters = previous.counters
        self._registry[terrain_id] = registration
        return meta

    def unregister(self, terrain_id: str) -> None:
        self._registration(terrain_id)
        self._resident.pop(terrain_id, None)
        del self._registry[terrain_id]

    def terrains(self) -> List[str]:
        """Registered terrain ids, registration order."""
        return list(self._registry)

    def describe(self, terrain_id: str) -> Dict[str, Any]:
        """Store metadata of one terrain (no arrays touched)."""
        registration = self._registration(terrain_id)
        meta = dict(registration.meta)
        meta["path"] = registration.path
        meta["resident"] = terrain_id in self._resident
        return meta

    def _registration(self, terrain_id: str) -> _Registration:
        try:
            return self._registry[terrain_id]
        except KeyError:
            raise KeyError(
                f"unknown terrain id {terrain_id!r}; registered: "
                f"{sorted(self._registry)}"
            ) from None

    # ------------------------------------------------------------------
    # residency
    # ------------------------------------------------------------------
    def oracle(self, terrain_id: str) -> StoredOracle:
        """The resident :class:`StoredOracle`, loading (and possibly
        evicting another terrain) as needed."""
        registration = self._registration(terrain_id)
        stored = self._resident.get(terrain_id)
        if stored is not None:
            self._resident.move_to_end(terrain_id)
            registration.counters.hits += 1
            return stored
        stored = open_oracle(registration.path)
        registration.counters.loads += 1
        registration.counters.load_seconds += stored.load_seconds
        while len(self._resident) >= self.max_resident:
            evicted_id, _ = self._resident.popitem(last=False)
            evicted = self._registry.get(evicted_id)
            if evicted is not None:
                evicted.counters.evictions += 1
        self._resident[terrain_id] = stored
        return stored

    def resident_terrains(self) -> List[str]:
        """Terrain ids currently resident, least recently used first."""
        return list(self._resident)

    def evict(self, terrain_id: str) -> bool:
        """Drop a terrain's resident tables; True if it was resident."""
        self._registration(terrain_id)
        if self._resident.pop(terrain_id, None) is None:
            return False
        self._registry[terrain_id].counters.evictions += 1
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, terrain_id: str, source: int, target: int) -> float:
        """One ε-approximate distance on one terrain."""
        return float(self.query_batch(terrain_id, [source], [target])[0])

    def query_batch(self, terrain_id: str, sources: Sequence[int],
                    targets: Sequence[int]) -> np.ndarray:
        """Aligned batched distances on one terrain (float64 array)."""
        stored = self.oracle(terrain_id)
        counters = self._registry[terrain_id].counters
        started = time.perf_counter()
        result = stored.query_batch(sources, targets)
        counters.query_seconds += time.perf_counter() - started
        counters.batches += 1
        counters.queries += int(result.shape[0])
        return result

    def query_matrix(self, terrain_id: str,
                     pois: Optional[Sequence[int]] = None) -> np.ndarray:
        """All-pairs matrix on one terrain (default: every POI)."""
        stored = self.oracle(terrain_id)
        counters = self._registry[terrain_id].counters
        started = time.perf_counter()
        result = stored.query_matrix(pois)
        counters.query_seconds += time.perf_counter() - started
        counters.batches += 1
        counters.queries += int(result.size)
        return result

    # ------------------------------------------------------------------
    # proximity queries
    # ------------------------------------------------------------------
    def k_nearest(self, terrain_id: str, source: int, k: int
                  ) -> List[Tuple[int, float]]:
        """kNN by geodesic distance on one terrain."""
        stored = self.oracle(terrain_id)
        return self._timed_proximity(
            terrain_id, stored.num_pois,
            lambda: k_nearest_neighbors(stored.compiled, source, k,
                                        stored.num_pois))

    def range_query(self, terrain_id: str, source: int, radius: float
                    ) -> List[Tuple[int, float]]:
        """All POIs within a geodesic radius on one terrain."""
        stored = self.oracle(terrain_id)
        return self._timed_proximity(
            terrain_id, stored.num_pois,
            lambda: range_query(stored.compiled, source, radius,
                                stored.num_pois))

    def reverse_nearest(self, terrain_id: str, source: int) -> List[int]:
        """Monochromatic RNN on one terrain."""
        stored = self.oracle(terrain_id)
        return self._timed_proximity(
            terrain_id, stored.num_pois * stored.num_pois,
            lambda: reverse_nearest_neighbors(stored.compiled, source,
                                              stored.num_pois))

    def _timed_proximity(self, terrain_id: str, probes: int, run):
        counters = self._registry[terrain_id].counters
        started = time.perf_counter()
        result = run()
        counters.query_seconds += time.perf_counter() - started
        counters.batches += 1
        counters.queries += probes
        return result

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def counters(self, terrain_id: str) -> TerrainCounters:
        return self._registration(terrain_id).counters

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-terrain serving statistics, keyed by terrain id."""
        report = {}
        for terrain_id, registration in self._registry.items():
            entry = registration.counters.as_dict()
            entry["resident"] = terrain_id in self._resident
            entry["path"] = registration.path
            entry["num_pois"] = None
            stored = self._resident.get(terrain_id)
            if stored is not None:
                entry["num_pois"] = stored.num_pois
            report[terrain_id] = entry
        return report
