"""Newline-delimited JSON serving protocol, shared by server and client.

One request per line, one response per line, every line a single JSON
object.  The protocol is deliberately boring: it has to be trivially
speakable from ``nc``, any language's socket + JSON library, and the
load generator — and cheap enough to parse that the compiled query
tables (microseconds per probe) stay the hot path.

Requests
--------
``{"op": <verb>, "id": <tag?>, "v": <version?>, ...fields}``

``op``
    One of :data:`OPS`.  Query verbs (``query``, ``batch``, ``knn``,
    ``range``, ``rnn``) and update verbs (``insert``, ``delete``,
    ``flush``) take a ``terrain``; introspection verbs (``hello``,
    ``terrains``, ``stats``, ``describe``) mostly don't.
``id``
    Optional client tag (any JSON scalar), echoed verbatim in the
    response — pipelined clients use it to match responses to
    requests.
``v``
    Optional protocol version; omitting it means
    :data:`PROTOCOL_VERSION`.  A mismatch is answered with an
    ``unsupported-version`` error instead of a guess.

Responses
---------
``{"ok": true, "id": <tag>, "result": {...}}`` on success, or
``{"ok": false, "id": <tag>, "error": {"type": <type>,
"message": <text>}, ...extra}`` on failure.  ``error.type`` is one of
:data:`ERROR_TYPES` — typed so clients can dispatch without parsing
prose (``unknown-terrain`` vs ``unknown-poi`` vs ``bad-request`` ...).
A ``not-writer`` error additionally carries ``writer_host`` /
``writer_port``: in multi-worker mode update verbs are pinned to the
single writer worker, and the error tells the client where to retry.

Wire framing
------------
UTF-8, one ``\\n``-terminated line per message, no length prefix.
:func:`encode` appends the newline; :func:`decode_line` tolerates a
trailing ``\\r`` (telnet-friendly).  Blank lines are ignored by the
server.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ERROR_TYPES",
    "ProtocolError",
    "encode",
    "decode_line",
    "request",
    "ok_response",
    "error_response",
    "validate_request",
    "classify_exception",
    "describe_error",
]

PROTOCOL_VERSION = 1

#: error taxonomy; every error response's ``error.type`` is one of these
ERROR_TYPES = (
    "bad-request",          # malformed JSON / missing or mistyped field
    "unsupported-version",  # request "v" != PROTOCOL_VERSION
    "unknown-op",           # verb not in OPS
    "unknown-terrain",      # terrain id not registered
    "unknown-poi",          # POI id out of range / deleted
    "bad-value",            # well-formed but unusable value (k < 1, ...)
    "not-mutable",          # update verb on a static terrain
    "not-writer",           # update verb on a reader worker
    "internal",             # store I/O or unexpected server failure
)

# Per-op field specs: name -> (converter, required).  Converters both
# validate and normalise (e.g. bool is not an int here, and POI ids
# must be non-negative — negative ints would silently alias from the
# end of the table).
_INT = ("integer", int)
_ID = ("non-negative integer", "id")
_FLOAT = ("number", float)
_STR = ("string", str)
_ID_LIST = ("list of non-negative integers", None)

_SPECS: Dict[str, Dict[str, Tuple[Tuple[str, Any], bool]]] = {
    "hello": {},
    "terrains": {},
    "stats": {},
    "describe": {"terrain": (_STR, True)},
    "query": {
        "terrain": (_STR, True),
        "source": (_ID, True),
        "target": (_ID, True),
    },
    "batch": {
        "terrain": (_STR, True),
        "sources": (_ID_LIST, True),
        "targets": (_ID_LIST, True),
    },
    "knn": {
        "terrain": (_STR, True),
        "source": (_ID, True),
        "k": (_INT, True),
    },
    "range": {
        "terrain": (_STR, True),
        "source": (_ID, True),
        "radius": (_FLOAT, True),
    },
    "rnn": {"terrain": (_STR, True), "source": (_ID, True)},
    "insert": {
        "terrain": (_STR, True),
        "x": (_FLOAT, True),
        "y": (_FLOAT, True),
    },
    "delete": {"terrain": (_STR, True), "poi": (_ID, True)},
    "flush": {"terrain": (_STR, True)},
}

#: the protocol's verbs
OPS = tuple(_SPECS)


class ProtocolError(Exception):
    """A typed protocol-level failure, mapping 1:1 to an error reply."""

    def __init__(self, error_type: str, message: str):
        if error_type not in ERROR_TYPES:
            raise ValueError(f"unknown error type {error_type!r}")
        super().__init__(message)
        self.error_type = error_type
        self.message = message


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode(message: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON + newline, UTF-8."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message object.

    Raises :class:`ProtocolError` (``bad-request``) when the line is
    not JSON or not a JSON object — never a bare ``json`` exception,
    so servers can answer with a typed error instead of dying.
    """
    try:
        message = json.loads(line.decode("utf-8", errors="replace"))
    except json.JSONDecodeError as error:
        raise ProtocolError("bad-request", f"invalid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad-request",
            f"expected a JSON object, got {type(message).__name__}",
        )
    return message


def request(op: str, request_id: Any = None, **fields: Any) -> Dict[str, Any]:
    """Build a request message (client-side convenience)."""
    message: Dict[str, Any] = {"op": op, "v": PROTOCOL_VERSION}
    if request_id is not None:
        message["id"] = request_id
    message.update(fields)
    return message


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"ok": True, "id": request_id, "result": result}


def error_response(
    request_id: Any, error_type: str, message: str, **extra: Any
) -> Dict[str, Any]:
    if error_type not in ERROR_TYPES:
        raise ValueError(f"unknown error type {error_type!r}")
    response: Dict[str, Any] = {
        "ok": False,
        "id": request_id,
        "error": {"type": error_type, "message": message},
    }
    response.update(extra)
    return response


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _is_id(value: Any) -> bool:
    return (
        not isinstance(value, bool) and isinstance(value, int) and value >= 0
    )


def _convert(name: str, value: Any, kind: Tuple[str, Any]) -> Any:
    label, caster = kind
    if caster is int:
        # bool is an int subclass but "true" is not a POI id.
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "bad-request", f"field {name!r} must be an {label}"
            )
        return value
    if caster == "id":
        if not _is_id(value):
            raise ProtocolError(
                "bad-request", f"field {name!r} must be a {label}"
            )
        return value
    if caster is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                "bad-request", f"field {name!r} must be a {label}"
            )
        return float(value)
    if caster is str:
        if not isinstance(value, str):
            raise ProtocolError(
                "bad-request", f"field {name!r} must be a {label}"
            )
        return value
    # id list
    if not isinstance(value, list) or any(
        not _is_id(item) for item in value
    ):
        raise ProtocolError(
            "bad-request", f"field {name!r} must be a {label}"
        )
    return value


def validate_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Check version, op and fields; returns the normalised request.

    Raises :class:`ProtocolError` with the precise typed failure —
    ``unsupported-version`` before ``unknown-op`` before
    ``bad-request`` — so one malformed aspect yields one stable error.
    """
    version = message.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported-version",
            f"protocol version {version!r} not supported "
            f"(this server speaks {PROTOCOL_VERSION})",
        )
    op = message.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("bad-request", "missing or invalid 'op' field")
    spec = _SPECS.get(op)
    if spec is None:
        raise ProtocolError(
            "unknown-op", f"unknown op {op!r}; known ops: {', '.join(OPS)}"
        )
    normalised: Dict[str, Any] = {"op": op, "id": message.get("id")}
    for name, (kind, required) in spec.items():
        if name not in message:
            if required:
                raise ProtocolError(
                    "bad-request", f"op {op!r} requires field {name!r}"
                )
            continue
        normalised[name] = _convert(name, message[name], kind)
    if op == "batch" and len(normalised["sources"]) != len(
        normalised["targets"]
    ):
        raise ProtocolError(
            "bad-request", "'sources' and 'targets' must be aligned"
        )
    return normalised


# ----------------------------------------------------------------------
# exception -> typed error mapping
# ----------------------------------------------------------------------
def _message_of(error: BaseException) -> str:
    # KeyError stringifies with quotes around its argument; unwrap.
    if isinstance(error, KeyError) and error.args:
        return str(error.args[0])
    return str(error)


def classify_exception(error: BaseException) -> Tuple[str, str]:
    """Map a service-layer exception to ``(error_type, message)``.

    The mapping is what lets the server (and the CLI REPL) answer any
    service failure with a typed line instead of a traceback:
    ``KeyError`` is an unknown terrain or POI, ``ValueError`` a bad
    value (or an update verb on a static terrain), anything touching
    the filesystem an ``internal`` store failure.
    """
    import zipfile

    message = _message_of(error)
    if isinstance(error, ProtocolError):
        return error.error_type, error.message
    if isinstance(error, KeyError):
        if "terrain id" in message:
            return "unknown-terrain", message
        return "unknown-poi", message
    if isinstance(error, IndexError):
        return "unknown-poi", message
    if isinstance(error, ValueError):
        if "not mutable" in message:
            return "not-mutable", message
        return "bad-value", message
    if isinstance(error, (OSError, zipfile.BadZipFile)):
        return "internal", f"store error: {message}"
    return "internal", f"{type(error).__name__}: {message}"


def describe_error(error: BaseException) -> str:
    """One-line typed rendering, e.g. ``error[bad-value]: k must be...``.

    Shared by the CLI REPL so its stderr lines carry the same taxonomy
    as network error replies.
    """
    error_type, message = classify_exception(error)
    return f"error[{error_type}]: {message}"
