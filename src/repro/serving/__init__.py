"""Serving layer: one process, many terrains, batched queries.

:class:`OracleService` registers packed oracle stores by terrain id,
keeps an LRU-bounded set of compiled tables resident, routes batched
distance and proximity queries per terrain, and exposes per-terrain
hit/load/latency counters.
"""

from .service import MutableRegistration, OracleService, TerrainCounters

__all__ = ["MutableRegistration", "OracleService", "TerrainCounters"]
