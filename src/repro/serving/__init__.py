"""Serving layer: one process, many terrains, batched queries — and a wire.

:class:`OracleService` registers packed oracle stores by terrain id —
every registration is a declarative :class:`TerrainSpec` — keeps an
LRU-bounded set of compiled tables resident, routes batched distance
and proximity queries per terrain, and exposes per-terrain
hit/load/latency counters.  Tiled stores additionally page individual
tile shards through their own LRU (``TerrainSpec.max_resident_tiles``).

:mod:`~repro.serving.protocol` defines the newline-delimited-JSON wire
protocol, :mod:`~repro.serving.server` the asyncio TCP front-end with
per-terrain query coalescing and the ``SO_REUSEPORT`` multi-worker
fleet, and :mod:`~repro.serving.loadgen` the client plus open-/closed-
loop load generators used by tests and ``benchmarks/bench_serve.py``.
"""

from .server import (
    MutableSpec,
    OracleServer,
    ServerConfig,
    ThreadedServer,
    WorkerFleet,
    build_service,
    run_workers,
)
from .service import (
    MutableRegistration,
    OracleService,
    TerrainCounters,
    TerrainSpec,
)
from .workloads import (
    SCENARIOS,
    Workload,
    WorkloadError,
    generate_workload,
    read_workload,
    write_workload,
)

__all__ = [
    "MutableRegistration",
    "MutableSpec",
    "OracleServer",
    "OracleService",
    "ServerConfig",
    "TerrainCounters",
    "TerrainSpec",
    "ThreadedServer",
    "WorkerFleet",
    "build_service",
    "run_workers",
    "SCENARIOS",
    "Workload",
    "WorkloadError",
    "generate_workload",
    "read_workload",
    "write_workload",
]
