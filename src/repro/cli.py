"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate
    Create a synthetic terrain and write it as OFF/OBJ.
stats
    Print Table 2-style statistics for a mesh file.
build
    Build an SE oracle over a mesh + sampled POIs and save it.
query
    Load a saved oracle and answer POI-to-POI distance queries.
bench
    Run one of the paper's experiments (fig8..fig14, table1..table3).

Examples
--------
::

    python -m repro generate --exponent 5 --out terrain.off
    python -m repro stats terrain.off
    python -m repro build terrain.off --pois 50 --epsilon 0.1 \
        --out oracle.json
    python -m repro query terrain.off oracle.json --pois 50 3 41
    python -m repro bench fig8 --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SE distance oracle on terrain surfaces "
                    "(SIGMOD 2017 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic terrain mesh")
    generate.add_argument("--exponent", type=int, default=5,
                          help="grid exponent; side = 2**e + 1 vertices")
    generate.add_argument("--extent", type=float, nargs=2,
                          default=(4000.0, 4000.0), metavar=("X", "Y"))
    generate.add_argument("--relief", type=float, default=400.0)
    generate.add_argument("--roughness", type=float, default=0.55)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True,
                          help="output path (.off or .obj)")

    stats = commands.add_parser("stats", help="terrain statistics")
    stats.add_argument("mesh", help="mesh file (.off or .obj)")

    build = commands.add_parser("build", help="build and save an SE oracle")
    build.add_argument("mesh", help="mesh file (.off or .obj)")
    build.add_argument("--pois", type=int, default=50,
                       help="number of POIs to sample (seeded)")
    build.add_argument("--poi-seed", type=int, default=1)
    build.add_argument("--epsilon", type=float, default=0.1)
    build.add_argument("--strategy", choices=("random", "greedy"),
                       default="random")
    build.add_argument("--density", type=int, default=1,
                       help="Steiner points per edge of the metric graph")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the build fan-out "
                            "(1 = serial, -1 = one per CPU); parallel "
                            "builds are bit-identical to serial")
    build.add_argument("--out", required=True, help="oracle output (.json)")

    query = commands.add_parser("query", help="query a saved oracle")
    query.add_argument("mesh", help="mesh file the oracle was built on")
    query.add_argument("oracle", help="oracle file from 'build'")
    query.add_argument("source", type=int, nargs="?", default=None)
    query.add_argument("target", type=int, nargs="?", default=None)
    query.add_argument("--pois", type=int, default=50,
                       help="POI count used at build time")
    query.add_argument("--poi-seed", type=int, default=1)
    query.add_argument("--density", type=int, default=1)
    query.add_argument("--exact", action="store_true",
                       help="also compute the exact distance")
    query.add_argument("--batch", nargs="*", metavar="S:T", default=None,
                       help="batched mode: answer the given S:T pairs "
                            "through the compiled tables and report QPS "
                            "(combine with --random)")
    query.add_argument("--random", type=int, default=0, metavar="N",
                       dest="random_pairs",
                       help="with --batch: append N random seeded "
                            "query pairs to the batch")
    query.add_argument("--pair-seed", type=int, default=0,
                       help="seed of the --random pair workload")

    bench = commands.add_parser("bench", help="run a paper experiment")
    bench.add_argument("experiment",
                       choices=["fig8", "fig9", "fig10", "fig11", "fig12",
                                "fig13", "fig14", "table1", "table2",
                                "table3"])
    bench.add_argument("--scale", default="tiny",
                       choices=("tiny", "small", "bench", "large"))
    return parser


def _cmd_generate(args) -> int:
    from .terrain import make_terrain, write_mesh
    mesh = make_terrain(grid_exponent=args.exponent,
                        extent=tuple(args.extent), relief=args.relief,
                        roughness=args.roughness, seed=args.seed)
    write_mesh(mesh, args.out)
    print(f"wrote {mesh.num_vertices} vertices / {mesh.num_faces} faces "
          f"to {args.out}")
    return 0


def _cmd_stats(args) -> int:
    from .terrain import read_mesh, terrain_statistics, validate_mesh
    mesh = read_mesh(args.mesh)
    stats = terrain_statistics(mesh)
    report = validate_mesh(mesh)
    print(stats.describe())
    print(f"edges={stats.num_edges} faces={stats.num_faces} "
          f"min_angle={stats.min_inner_angle_deg:.1f}deg "
          f"ruggedness={stats.ruggedness:.3f}")
    print(f"valid={report.ok} "
          f"(manifold={report.is_manifold}, connected={report.is_connected},"
          f" boundary_edges={report.boundary_edges})")
    return 0


def _workload(mesh_path: str, poi_count: int, poi_seed: int, density: int):
    from .geodesic import GeodesicEngine
    from .terrain import read_mesh, sample_uniform
    mesh = read_mesh(mesh_path)
    pois = sample_uniform(mesh, poi_count, seed=poi_seed)
    return GeodesicEngine(mesh, pois, points_per_edge=density)


def _cmd_build(args) -> int:
    from .core import SEOracle, save_oracle
    engine = _workload(args.mesh, args.pois, args.poi_seed, args.density)
    started = time.perf_counter()
    oracle = SEOracle(engine, args.epsilon, strategy=args.strategy,
                      seed=args.seed, jobs=args.jobs).build()
    elapsed = time.perf_counter() - started
    save_oracle(oracle, args.out)
    print(f"built in {elapsed:.2f}s "
          f"[{oracle.stats.executor} x{oracle.stats.jobs}]: "
          f"n={engine.num_pois} "
          f"h={oracle.height} pairs={oracle.num_pairs} "
          f"size={oracle.size_bytes() / 1024:.1f}KB -> {args.out}")
    return 0


def _cmd_query(args) -> int:
    from .core import load_oracle
    engine = _workload(args.mesh, args.pois, args.poi_seed, args.density)
    oracle = load_oracle(args.oracle, engine)
    if args.batch is not None:
        return _run_query_batch(args, oracle)
    if args.source is None or args.target is None:
        print("error: source and target are required without --batch",
              file=sys.stderr)
        return 2
    started = time.perf_counter()
    distance = oracle.query(args.source, args.target)
    micros = (time.perf_counter() - started) * 1e6
    print(f"d({args.source}, {args.target}) = {distance:.3f} "
          f"[{micros:.1f} us]")
    if args.exact:
        exact = engine.distance(args.source, args.target)
        error = abs(distance - exact) / exact if exact else 0.0
        print(f"exact = {exact:.3f}  error = {error:.4f}")
    return 0


def _run_query_batch(args, oracle) -> int:
    """The ``query --batch`` verb: compiled tables, one batched call."""
    import numpy as np

    pairs = []
    for token in args.batch:
        try:
            source_text, target_text = token.split(":", 1)
            pairs.append((int(source_text), int(target_text)))
        except ValueError:
            print(f"error: malformed pair {token!r}; expected S:T",
                  file=sys.stderr)
            return 2
    if args.source is not None and args.target is not None:
        pairs.insert(0, (args.source, args.target))
    if args.random_pairs:
        from .experiments.harness import generate_query_pairs
        pairs.extend(generate_query_pairs(
            oracle.engine.num_pois, args.random_pairs,
            seed=args.pair_seed))
    if not pairs:
        print("error: --batch needs S:T pairs and/or --random N",
              file=sys.stderr)
        return 2

    tick = time.perf_counter()
    compiled = oracle.compiled()
    sources = np.array([source for source, _ in pairs], dtype=np.intp)
    targets = np.array([target for _, target in pairs], dtype=np.intp)
    compiled.query_batch(sources[:1], targets[:1])  # freeze the tables
    compile_ms = (time.perf_counter() - tick) * 1e3
    tick = time.perf_counter()
    distances = compiled.query_batch(sources, targets)
    elapsed = time.perf_counter() - tick
    shown = min(len(pairs), 20)
    for index in range(shown):
        print(f"d({sources[index]}, {targets[index]}) = "
              f"{distances[index]:.3f}")
    if shown < len(pairs):
        print(f"... ({len(pairs) - shown} more)")
    qps = len(pairs) / elapsed if elapsed > 0 else float("inf")
    print(f"{len(pairs)} queries in {elapsed * 1e3:.2f} ms "
          f"-> {qps:,.0f} q/s  [compile {compile_ms:.1f} ms, "
          f"h={compiled.height}]")
    return 0


def _cmd_bench(args) -> int:
    from . import experiments
    runners = {
        "fig8": lambda: experiments.figure8(args.scale, render=True),
        "fig9": lambda: experiments.figure9(args.scale, render=True),
        "fig10": lambda: experiments.figure10(args.scale, render=True),
        "fig11": lambda: experiments.figure11(args.scale, render=True),
        "fig12": lambda: experiments.figure12(args.scale, render=True),
        "fig13": lambda: experiments.figure13(args.scale, render=True),
        "fig14": lambda: experiments.figure14(args.scale, render=True),
        "table1": lambda: experiments.table1_complexity_probes(
            args.scale, render=True),
        "table2": lambda: experiments.table2_dataset_statistics(
            args.scale, render=True),
        "table3": lambda: experiments.table3_query_distances(
            args.scale, render=True),
    }
    runners[args.experiment]()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "build": _cmd_build,
    "query": _cmd_query,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args, extras = parser.parse_known_args(argv)
    if extras and args.command == "query" and args.target is None:
        # `query mesh oracle --pois 40 3 17` (or `... 3 --pois 40 17`):
        # argparse matches the optional source/target positionals
        # greedily in the first positional chunk and cannot backtrack,
        # so trailing ids land in `extras`.  Fold them back in.
        try:
            ids = [int(token) for token in extras]
        except ValueError:
            ids = None
        if ids is not None and args.source is None and len(ids) == 2:
            args.source, args.target = ids
            extras = []
        elif ids is not None and args.source is not None and len(ids) == 1:
            args.target = ids[0]
            extras = []
    if extras:
        parser.error(f"unrecognized arguments: {' '.join(extras)}")
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
