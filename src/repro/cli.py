"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate
    Create a synthetic terrain and write it as OFF/OBJ.
stats
    Print Table 2-style statistics for a mesh file.
build
    Build an SE oracle over a mesh + sampled POIs and save it.
query
    Load a saved oracle and answer POI-to-POI distance queries.
pack
    Convert a JSON oracle (v1-v3) to the v4 binary store.
serve
    Register packed stores as terrains and serve queries (REPL).
ingest
    Ingest a real DEM raster (.asc / .tif) into a servable oracle.
workload
    Generate / replay seeded scenario workload files (JSONL).
analyze
    Mirror a packed store into a sqlite3 analytics database.
bench
    Run one of the paper's experiments (fig8..fig14, table1..table3).

Examples
--------
::

    python -m repro generate --exponent 5 --out terrain.off
    python -m repro stats terrain.off
    python -m repro build terrain.off --pois 50 --epsilon 0.1 \
        --out oracle.json
    python -m repro query terrain.off oracle.json --pois 50 3 41
    python -m repro pack oracle.json --out oracle.store
    python -m repro query terrain.off oracle.store --pois 50 --store \
        --batch --random 1000
    python -m repro build terrain.off --pois 50 --tiles 4 \
        --out tiled.store
    python -m repro serve alps=oracle.store --repl
    python -m repro serve alps=tiled.store --max-resident-tiles 2 --repl
    python -m repro serve alps=oracle.store --max-resident-bytes 262144 \
        --repl
    python -m repro analyze oracle.store --db oracle.db \
        --view pair_count_by_layer
    python -m repro ingest dem.asc --poi-file pois.csv --out real.store
    python -m repro workload gen moving-agents --store real.store \
        --terrain alps --out agents.jsonl
    python -m repro workload replay agents.jsonl --port 4170
    python -m repro bench fig8 --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SE distance oracle on terrain surfaces "
                    "(SIGMOD 2017 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic terrain mesh")
    generate.add_argument("--exponent", type=int, default=5,
                          help="grid exponent; side = 2**e + 1 vertices")
    generate.add_argument("--extent", type=float, nargs=2,
                          default=(4000.0, 4000.0), metavar=("X", "Y"))
    generate.add_argument("--relief", type=float, default=400.0)
    generate.add_argument("--roughness", type=float, default=0.55)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True,
                          help="output path (.off or .obj)")

    stats = commands.add_parser("stats", help="terrain statistics")
    stats.add_argument("mesh", help="mesh file (.off or .obj)")

    build = commands.add_parser("build", help="build and save an SE oracle")
    build.add_argument("mesh", help="mesh file (.off or .obj)")
    build.add_argument("--pois", type=int, default=50,
                       help="number of POIs to sample (seeded)")
    build.add_argument("--poi-seed", type=int, default=1)
    build.add_argument("--epsilon", type=float, default=0.1)
    build.add_argument("--strategy", choices=("random", "greedy"),
                       default="random")
    build.add_argument("--density", type=int, default=1,
                       help="Steiner points per edge of the metric graph")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the build fan-out "
                            "(1 = serial, -1 = one per CPU); parallel "
                            "builds are bit-identical to serial; with "
                            "--tiles, parallelism is across tiles")
    build.add_argument("--tiles", type=int, default=0, metavar="N",
                       help="shard the terrain into N tiles with "
                            "per-tile oracles and a packed boundary "
                            "matrix (writes a v4 tiled .store; queries "
                            "stay within the oracle's (1+epsilon))")
    build.add_argument("--out", required=True,
                       help="oracle output (.json, or .store with "
                            "--tiles)")

    query = commands.add_parser("query", help="query a saved oracle")
    query.add_argument("mesh", help="mesh file the oracle was built on")
    query.add_argument("oracle", help="oracle file from 'build'")
    query.add_argument("source", type=int, nargs="?", default=None)
    query.add_argument("target", type=int, nargs="?", default=None)
    query.add_argument("--pois", type=int, default=50,
                       help="POI count used at build time")
    query.add_argument("--poi-seed", type=int, default=1)
    query.add_argument("--density", type=int, default=1)
    query.add_argument("--exact", action="store_true",
                       help="also compute the exact distance")
    query.add_argument("--batch", nargs="*", metavar="S:T", default=None,
                       help="batched mode: answer the given S:T pairs "
                            "through the compiled tables and report QPS "
                            "(combine with --random)")
    query.add_argument("--random", type=int, default=0, metavar="N",
                       dest="random_pairs",
                       help="with --batch: append N random seeded "
                            "query pairs to the batch")
    query.add_argument("--pair-seed", type=int, default=0,
                       help="seed of the --random pair workload")
    query.add_argument("--store", action="store_true",
                       help="the oracle file is a v4 binary store: open "
                            "it zero-copy (mmap) and report the load "
                            "time alongside the answers")
    query.add_argument("--max-resident-bytes", type=int, default=None,
                       metavar="N",
                       help="with --store: serve through the paged "
                            "backend with the pair/hash page pool "
                            "capped at N bytes (bit-identical answers; "
                            "prints the paging ledger)")

    pack = commands.add_parser(
        "pack", help="convert a JSON oracle to the v4 binary store")
    pack.add_argument("oracle", help="JSON oracle file (format v1-v3)")
    pack.add_argument("--out", required=True,
                      help="binary store output (.store)")

    serve = commands.add_parser(
        "serve", help="serve packed oracle stores for many terrains")
    serve.add_argument("terrains", nargs="+", metavar="NAME=STORE",
                       help="terrain registrations, e.g. alps=alps.store")
    serve.add_argument("--max-resident", type=int, default=4,
                       help="LRU bound on simultaneously resident "
                            "compiled tables")
    serve.add_argument("--max-resident-tiles", type=int, default=None,
                       metavar="N",
                       help="tiled stores: LRU bound on simultaneously "
                            "resident tile shards per terrain (default: "
                            "all tiles stay resident)")
    serve.add_argument("--max-resident-bytes", type=int, default=None,
                       metavar="N",
                       help="monolithic stores: serve each static "
                            "terrain through the paged backend with "
                            "its pair/hash page pool capped at N bytes "
                            "(bit-identical; ledger in stats)")
    serve.add_argument("--mutable", action="append", default=[],
                       metavar="NAME=MESH",
                       help="register NAME (also given as NAME=STORE) as "
                            "a *mutable* terrain backed by this mesh "
                            "file; its POI workload is resampled with "
                            "--pois/--poi-seed/--density and must match "
                            "the store's fingerprint.  Mutable terrains "
                            "accept insert/delete/flush")
    serve.add_argument("--pois", type=int, default=50,
                       help="POI count of mutable terrains' workloads")
    serve.add_argument("--poi-seed", type=int, default=1)
    serve.add_argument("--density", type=int, default=1)
    serve.add_argument("--rebuild-factor", type=float, default=0.25,
                       help="mutable terrains: amortised-rebuild "
                            "threshold of the dynamic overlay")
    serve.add_argument("--repl", action="store_true",
                       help="read query/batch/knn/range/rnn/insert/"
                            "delete/flush/stats commands from stdin "
                            "(one per line)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for network serving")
    serve.add_argument("--port", type=int, default=None, metavar="PORT",
                       help="serve the newline-delimited-JSON protocol "
                            "on this TCP port (0 = ephemeral); without "
                            "--port or --repl, registrations are only "
                            "validated")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes sharing the port via "
                            "SO_REUSEPORT; each mmaps the same stores "
                            "(page-cache shared) and mutable terrains "
                            "are pinned to worker 0, the writer, which "
                            "also listens on a dedicated writer port")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="coalescing cap: concurrent point queries "
                            "drained into one query_batch probe")
    serve.add_argument("--linger-us", type=float, default=0.0,
                       help="batching linger in microseconds (0 = "
                            "work-conserving natural batching)")

    ingest = commands.add_parser(
        "ingest", help="ingest a real DEM (.asc / .tif) into a "
                       "servable oracle store")
    ingest.add_argument("dem", help="DEM raster: ESRI ASCII grid "
                                    "(.asc) or uncompressed GeoTIFF "
                                    "(.tif/.tiff)")
    ingest.add_argument("--out", required=True,
                        help="oracle output (.store, or .json)")
    ingest.add_argument("--poi-file", default=None, metavar="CSV",
                        help="POIs as 'name,lat,lon' lines; without "
                             "it, --pois surface points are sampled")
    ingest.add_argument("--pois", type=int, default=20,
                        help="sampled POI count when no --poi-file")
    ingest.add_argument("--poi-seed", type=int, default=1)
    ingest.add_argument("--decimate", type=int, default=1, metavar="K",
                        help="keep every K-th row/column of the grid")
    ingest.add_argument("--z-scale", type=float, default=1.0,
                        help="multiply elevations (vertical "
                             "exaggeration)")
    ingest.add_argument("--epsilon", type=float, default=0.1)
    ingest.add_argument("--density", type=int, default=1)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--jobs", type=int, default=1)
    ingest.add_argument("--slack", type=float, default=0.05,
                        help="haversine-gate tolerance on top of "
                             "epsilon (projection distortion budget)")
    ingest.add_argument("--mesh-out", default=None, metavar="MESH",
                        help="also write the triangulated terrain "
                             "(.off or .obj)")

    workload = commands.add_parser(
        "workload", help="generate or replay scenario workload files")
    actions = workload.add_subparsers(dest="action", required=True)
    gen = actions.add_parser(
        "gen", help="generate a seeded scenario workload (JSONL)")
    gen.add_argument("scenario", choices=("moving-agents",
                                          "range-alerts",
                                          "coverage-audit"))
    gen.add_argument("--out", required=True,
                     help="workload output (.jsonl)")
    gen.add_argument("--terrain", default="terrain",
                     help="terrain id the events address")
    gen.add_argument("--store", default=None, metavar="STORE",
                     help="packed oracle store; pins num-pois and "
                          "derives the default alert radius")
    gen.add_argument("--num-pois", type=int, default=None,
                     help="POI count (required without --store)")
    gen.add_argument("--events", type=int, default=200)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--agents", type=int, default=4,
                     help="moving-agents: concurrent agents")
    gen.add_argument("--k", type=int, default=3,
                     help="moving-agents: neighbours per query")
    gen.add_argument("--radius", type=float, default=None,
                     help="range-alerts: base geofence radius "
                          "(default: median store distance)")
    gen.add_argument("--sentinels", type=int, default=3,
                     help="range-alerts: sentinel POI count")
    gen.add_argument("--rate", type=float, default=None,
                     help="stamp Poisson arrival_s timestamps at this "
                          "mean events/second (open-loop replay)")
    replay = actions.add_parser(
        "replay", help="replay a workload file against a live server")
    replay.add_argument("workload", help="workload file from 'gen'")
    replay.add_argument("--host", default="127.0.0.1")
    replay.add_argument("--port", type=int, required=True)
    replay.add_argument("--terrain", default=None,
                        help="override the file's terrain id")
    replay.add_argument("--pace", action="store_true",
                        help="honour the file's arrival_s timestamps "
                             "(fixed-rate open-loop replay)")

    analyze = commands.add_parser(
        "analyze", help="mirror a packed store into a sqlite3 "
                        "analytics database and run canned views")
    analyze.add_argument("store", help="monolithic v4 .store file")
    analyze.add_argument("--db", required=True,
                         help="sqlite3 output path (replaced)")
    analyze.add_argument("--view", action="append", default=[],
                         metavar="NAME",
                         help="print a canned view after mirroring "
                              "(error_stats, pair_count_by_layer, "
                              "poi_coverage; repeatable)")
    analyze.add_argument("--sql", default=None, metavar="QUERY",
                         help="run one ad-hoc read-only SQL statement "
                              "against the mirror and print its rows")
    analyze.add_argument("--chunk-rows", type=int, default=8192,
                         help="streaming chunk size (rows) — bounds "
                              "the mirror's resident memory")

    bench = commands.add_parser("bench", help="run a paper experiment")
    bench.add_argument("experiment",
                       choices=["fig8", "fig9", "fig10", "fig11", "fig12",
                                "fig13", "fig14", "table1", "table2",
                                "table3"])
    bench.add_argument("--scale", default="tiny",
                       choices=("tiny", "small", "bench", "large"))
    return parser


def _cmd_generate(args) -> int:
    from .terrain import make_terrain, write_mesh
    mesh = make_terrain(grid_exponent=args.exponent,
                        extent=tuple(args.extent), relief=args.relief,
                        roughness=args.roughness, seed=args.seed)
    write_mesh(mesh, args.out)
    print(f"wrote {mesh.num_vertices} vertices / {mesh.num_faces} faces "
          f"to {args.out}")
    return 0


def _cmd_stats(args) -> int:
    from .terrain import read_mesh, terrain_statistics, validate_mesh
    mesh = read_mesh(args.mesh)
    stats = terrain_statistics(mesh)
    report = validate_mesh(mesh)
    print(stats.describe())
    print(f"edges={stats.num_edges} faces={stats.num_faces} "
          f"min_angle={stats.min_inner_angle_deg:.1f}deg "
          f"ruggedness={stats.ruggedness:.3f}")
    print(f"valid={report.ok} "
          f"(manifold={report.is_manifold}, connected={report.is_connected},"
          f" boundary_edges={report.boundary_edges})")
    return 0


def _workload(mesh_path: str, poi_count: int, poi_seed: int, density: int):
    from .geodesic import GeodesicEngine
    from .terrain import read_mesh, sample_uniform
    mesh = read_mesh(mesh_path)
    pois = sample_uniform(mesh, poi_count, seed=poi_seed)
    return GeodesicEngine(mesh, pois, points_per_edge=density)


def _cmd_build(args) -> int:
    from .core import SEOracle, save_oracle
    if args.tiles:
        return _cmd_build_tiled(args)
    engine = _workload(args.mesh, args.pois, args.poi_seed, args.density)
    started = time.perf_counter()
    oracle = SEOracle(engine, args.epsilon, strategy=args.strategy,
                      seed=args.seed, jobs=args.jobs).build()
    elapsed = time.perf_counter() - started
    save_oracle(oracle, args.out)
    print(f"built in {elapsed:.2f}s "
          f"[{oracle.stats.executor} x{oracle.stats.jobs}]: "
          f"n={engine.num_pois} "
          f"h={oracle.height} pairs={oracle.num_pairs} "
          f"size={oracle.size_bytes() / 1024:.1f}KB -> {args.out}")
    return 0


def _cmd_build_tiled(args) -> int:
    """``build --tiles N``: shard, build per tile, pack a tiled store."""
    import os

    from .core import build_tiled_oracle, pack_tiled
    from .terrain import read_mesh, sample_uniform
    if args.tiles < 1:
        print("error: --tiles must be at least 1", file=sys.stderr)
        return 2
    if args.out.endswith(".json"):
        print("error: tiled oracles pack straight to the v4 binary "
              "store; use an --out path like oracle.store",
              file=sys.stderr)
        return 2
    mesh = read_mesh(args.mesh)
    pois = sample_uniform(mesh, args.pois, seed=args.poi_seed)
    started = time.perf_counter()
    build = build_tiled_oracle(
        mesh, pois, args.epsilon, tiles=args.tiles,
        strategy=args.strategy, seed=args.seed,
        points_per_edge=args.density, jobs=args.jobs)
    elapsed = time.perf_counter() - started
    pack_tiled(build, args.out)
    tiles = build.meta["tiles"]
    print(f"built {tiles['count']} tiles in {elapsed:.2f}s "
          f"[x{build.meta['build']['jobs']}]: "
          f"n={tiles['pois']} portals={tiles['portals']} "
          f"h={build.meta['stats']['height']} "
          f"pairs={build.meta['stats']['pairs_stored']} "
          f"size={os.path.getsize(args.out) / 1024:.1f}KB "
          f"-> {args.out}")
    return 0


def _check_poi_ids(index, ids) -> bool:
    """POI-id bounds check shared by the query paths.

    Out-of-range ids used to fall through to the tree lookup and die
    with a raw ``KeyError`` traceback; they are a *user input* error,
    so they surface as the protocol's typed ``error[unknown-poi]``
    line instead (same taxonomy the server and REPL speak).
    """
    from .serving.protocol import ProtocolError, describe_error
    limit = index.num_pois
    for value in ids:
        if not 0 <= value < limit:
            print(describe_error(ProtocolError(
                "unknown-poi",
                f"POI id {value} is outside this oracle's "
                f"0..{limit - 1} range")), file=sys.stderr)
            return False
    return True


def _cmd_query(args) -> int:
    from .core import load_oracle, open_oracle
    if args.max_resident_bytes is not None and not args.store:
        print("error: --max-resident-bytes requires --store (paging "
              "works on v4 binary stores)", file=sys.stderr)
        return 2
    engine = _workload(args.mesh, args.pois, args.poi_seed, args.density)
    if args.store:
        stored = open_oracle(args.oracle, engine=engine,
                             max_resident_bytes=args.max_resident_bytes)
        backing = ("paged" if args.max_resident_bytes is not None
                   else "mmap")
        print(f"opened {args.oracle} in "
              f"{stored.load_seconds * 1e3:.2f} ms "
              f"({backing}, n={stored.num_pois} "
              f"pairs={stored.num_pairs})")
        if args.batch is not None:
            code = _run_query_batch(args, stored)
            _print_page_ledger(stored)
            return code
        if args.source is None or args.target is None:
            print("error: source and target are required without --batch",
                  file=sys.stderr)
            return 2
        if not _check_poi_ids(stored, (args.source, args.target)):
            return 2
        started = time.perf_counter()
        distance = stored.query(args.source, args.target)
        micros = (time.perf_counter() - started) * 1e6
        print(f"d({args.source}, {args.target}) = {distance:.3f} "
              f"[{micros:.1f} us]")
        if args.exact:
            exact = engine.distance(args.source, args.target)
            error = abs(distance - exact) / exact if exact else 0.0
            print(f"exact = {exact:.3f}  error = {error:.4f}")
        _print_page_ledger(stored)
        return 0
    oracle = load_oracle(args.oracle, engine)
    if args.batch is not None:
        return _run_query_batch(args, oracle)
    if args.source is None or args.target is None:
        print("error: source and target are required without --batch",
              file=sys.stderr)
        return 2
    if not _check_poi_ids(oracle, (args.source, args.target)):
        return 2
    started = time.perf_counter()
    distance = oracle.query(args.source, args.target)
    micros = (time.perf_counter() - started) * 1e6
    print(f"d({args.source}, {args.target}) = {distance:.3f} "
          f"[{micros:.1f} us]")
    if args.exact:
        exact = engine.distance(args.source, args.target)
        error = abs(distance - exact) / exact if exact else 0.0
        print(f"exact = {exact:.3f}  error = {error:.4f}")
    return 0


def _print_page_ledger(stored) -> None:
    """One summary line of the paged backend's ledger, if there is one."""
    if not hasattr(stored, "page_counters"):
        return
    ledger = stored.page_counters()
    print(f"paging: {ledger['loads']} loads / {ledger['evictions']} "
          f"evictions / {ledger['hits']} hits, peak "
          f"{ledger['peak_resident_bytes']} B of "
          f"{ledger['budget_bytes']} B budget "
          f"(+{ledger['fixed_bytes']} B fixed)")


def _run_query_batch(args, oracle) -> int:
    """The ``query --batch`` verb: compiled tables, one batched call.

    ``oracle`` is a loaded :class:`SEOracle` or an opened
    :class:`~repro.core.store.StoredOracle` (``--store``).
    """
    pairs = []
    for token in args.batch:
        try:
            source_text, target_text = token.split(":", 1)
            pairs.append((int(source_text), int(target_text)))
        except ValueError:
            print(f"error: malformed pair {token!r}; expected S:T",
                  file=sys.stderr)
            return 2
    if args.source is not None and args.target is not None:
        pairs.insert(0, (args.source, args.target))
    if args.random_pairs:
        from .experiments.harness import generate_query_pairs
        pairs.extend(generate_query_pairs(
            oracle.num_pois, args.random_pairs, seed=args.pair_seed))
    if not pairs:
        print("error: --batch needs S:T pairs and/or --random N",
              file=sys.stderr)
        return 2
    if not _check_poi_ids(
            oracle, [poi for pair in pairs for poi in pair]):
        return 2

    # Both loaded JSON oracles and opened stores satisfy the
    # DistanceIndex protocol — the first (tiny) batch pays any lazy
    # compile / hash freeze, so the timed batch measures serving only.
    from .core import pair_arrays
    tick = time.perf_counter()
    sources, targets = pair_arrays(pairs)
    oracle.query_batch(sources[:1], targets[:1])
    compile_ms = (time.perf_counter() - tick) * 1e3
    tick = time.perf_counter()
    distances = oracle.query_batch(sources, targets)
    elapsed = time.perf_counter() - tick
    shown = min(len(pairs), 20)
    for index in range(shown):
        print(f"d({sources[index]}, {targets[index]}) = "
              f"{distances[index]:.3f}")
    if shown < len(pairs):
        print(f"... ({len(pairs) - shown} more)")
    qps = len(pairs) / elapsed if elapsed > 0 else float("inf")
    print(f"{len(pairs)} queries in {elapsed * 1e3:.2f} ms "
          f"-> {qps:,.0f} q/s  [compile {compile_ms:.1f} ms, "
          f"h={oracle.height}]")
    return 0


def _cmd_pack(args) -> int:
    import json
    import os

    from .core import pack_document
    tick = time.perf_counter()
    with open(args.oracle) as handle:
        document = json.load(handle)
    pack_document(document, args.out)
    elapsed = time.perf_counter() - tick
    json_bytes = os.path.getsize(args.oracle)
    store_bytes = os.path.getsize(args.out)
    from .core.store import open_oracle
    stored = open_oracle(args.out)
    print(f"packed {args.oracle} (v{document.get('version')}, "
          f"{json_bytes / 1024:.1f}KB) -> {args.out} "
          f"(v4, {store_bytes / 1024:.1f}KB) in {elapsed:.2f}s")
    print(f"open: {stored.load_seconds * 1e3:.2f} ms mmap, "
          f"n={stored.num_pois} pairs={stored.num_pairs} "
          f"h={stored.compiled.height}")
    return 0


def _cmd_serve(args) -> int:
    from .serving import OracleService, TerrainSpec
    if (args.max_resident_bytes is not None
            and args.max_resident_tiles is not None):
        print("error: --max-resident-tiles pages tiled stores and "
              "--max-resident-bytes pages monolithic ones; pick one",
              file=sys.stderr)
        return 2
    service = OracleService(max_resident=args.max_resident)
    import zipfile
    mutable_meshes = {}
    for token in args.mutable:
        name, _, mesh_path = token.partition("=")
        if not name or not mesh_path:
            print(f"error: malformed mutable registration {token!r}; "
                  "expected NAME=MESH", file=sys.stderr)
            return 2
        mutable_meshes[name] = mesh_path
    registrations = []
    mutable_paths = {}
    for token in args.terrains:
        name, _, path = token.partition("=")
        if not name or not path:
            print(f"error: malformed registration {token!r}; "
                  "expected NAME=STORE", file=sys.stderr)
            return 2
        try:
            if name in mutable_meshes:
                mutable_paths[name] = mutable_meshes.pop(name)
                engine = _workload(mutable_paths[name], args.pois,
                                   args.poi_seed, args.density)
                meta = service.register(name, TerrainSpec(
                    path, mutable=True, engine=engine,
                    rebuild_factor=args.rebuild_factor))
            else:
                meta = service.register(name, TerrainSpec(
                    path,
                    max_resident_tiles=args.max_resident_tiles,
                    max_resident_bytes=args.max_resident_bytes))
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            print(f"error: cannot register {name}: {error}",
                  file=sys.stderr)
            return 2
        registrations.append((name, path))
        kind = "mutable" if service.describe(name)["mutable"] else "static"
        print(f"registered {name}: {path} "
              f"({kind}, epsilon={meta['epsilon']} "
              f"h={meta['tree']['height']} "
              f"pairs={meta['stats']['pairs_stored']})")
    if mutable_meshes:
        unknown = ", ".join(sorted(mutable_meshes))
        print(f"error: --mutable names without a NAME=STORE "
              f"registration: {unknown}", file=sys.stderr)
        return 2
    if args.repl:
        return _serve_repl(service)
    if args.port is not None:
        from .serving import MutableSpec, ServerConfig
        from .serving.server import run_workers
        if args.workers < 1:
            print("error: --workers must be at least 1", file=sys.stderr)
            return 2
        config = ServerConfig(
            registrations=tuple(registrations),
            mutable={name: MutableSpec(mesh_path=mesh_path,
                                       pois=args.pois,
                                       poi_seed=args.poi_seed,
                                       density=args.density,
                                       rebuild_factor=args.rebuild_factor)
                     for name, mesh_path in mutable_paths.items()},
            host=args.host, port=args.port, workers=args.workers,
            max_batch=args.max_batch, linger_us=args.linger_us,
            max_resident=args.max_resident,
            max_resident_tiles=args.max_resident_tiles,
            max_resident_bytes=args.max_resident_bytes)
        # Single-worker mode reuses the service registered above
        # instead of rebuilding mutable workloads a second time.
        return run_workers(
            config, service=service if args.workers == 1 else None)
    print(f"{len(service.terrains())} terrains registered "
          f"(max resident: {service.max_resident}); "
          "pass --repl to serve queries from stdin "
          "or --port to serve over TCP")
    return 0


def _serve_repl(service) -> int:
    """Line-oriented REPL: one command per stdin line.

    Commands: ``query T S D``, ``batch T S:D [S:D ...]``,
    ``knn T S K``, ``range T S RADIUS``, ``rnn T S``,
    ``insert T X Y``, ``delete T ID``, ``flush T``, ``terrains``,
    ``stats``, ``quit``.  The update verbs require the terrain to be
    registered mutable (``--mutable``).

    One bad line must never kill the loop: besides parse errors, a
    lazily (re-)loaded store can fail at query time (file replaced or
    deleted after registration or an LRU eviction) and a defective
    store can raise from the query kernel itself — all of it is
    reported per line, as ``error[<type>]: <message>`` stderr lines
    carrying the network protocol's error taxonomy, while other
    terrains keep serving.  EOF and Ctrl-C both end the loop cleanly.
    """
    print("serving; commands: query/batch/knn/range/rnn/insert/delete/"
          "flush/terrains/stats/quit")
    try:
        _repl_loop(service)
    except KeyboardInterrupt:
        pass
    print("bye")
    return 0


def _repl_loop(service) -> None:
    import json
    import zipfile

    from .serving.protocol import ProtocolError, describe_error

    for line in sys.stdin:
        tokens = line.split()
        if not tokens:
            continue
        verb = tokens[0].lower()
        try:
            if verb in ("quit", "exit"):
                break
            elif verb == "terrains":
                for name in service.terrains():
                    resident = name in service.resident_terrains()
                    print(f"{name}  resident={resident}")
            elif verb == "stats":
                print(json.dumps(service.stats(), indent=1,
                                 sort_keys=True))
            elif verb == "query":
                terrain, source, target = tokens[1], int(tokens[2]), \
                    int(tokens[3])
                print(f"{service.query(terrain, source, target):.3f}")
            elif verb == "batch":
                terrain = tokens[1]
                pairs = [tuple(int(v) for v in t.split(":", 1))
                         for t in tokens[2:]]
                distances = service.query_batch(
                    terrain, [s for s, _ in pairs],
                    [t for _, t in pairs])
                print(" ".join(f"{d:.3f}" for d in distances))
            elif verb == "knn":
                terrain, source, k = tokens[1], int(tokens[2]), \
                    int(tokens[3])
                hits = service.k_nearest(terrain, source, k)
                print(" ".join(f"{poi}:{dist:.3f}"
                               for poi, dist in hits) or "-")
            elif verb == "range":
                terrain, source, radius = tokens[1], int(tokens[2]), \
                    float(tokens[3])
                hits = service.range_query(terrain, source, radius)
                print(" ".join(f"{poi}:{dist:.3f}"
                               for poi, dist in hits) or "-")
            elif verb == "rnn":
                terrain, source = tokens[1], int(tokens[2])
                hits = service.reverse_nearest(terrain, source)
                print(" ".join(str(poi) for poi in hits) or "-")
            elif verb == "insert":
                terrain, x, y = tokens[1], float(tokens[2]), \
                    float(tokens[3])
                new_id = service.insert_poi(terrain, x, y)
                print(f"inserted {new_id}")
            elif verb == "delete":
                terrain, poi_id = tokens[1], int(tokens[2])
                service.delete_poi(terrain, poi_id)
                print(f"deleted {poi_id}")
            elif verb == "flush":
                terrain = tokens[1]
                started = time.perf_counter()
                meta = service.flush(terrain)
                elapsed = time.perf_counter() - started
                print(f"flushed {terrain} in {elapsed:.2f}s "
                      f"(pairs={meta['stats']['pairs_stored']})")
            else:
                raise ProtocolError(
                    "unknown-op", f"unknown command {verb!r}")
        except (KeyError, IndexError, ValueError, OSError,
                RuntimeError, zipfile.BadZipFile,
                ProtocolError) as error:
            print(describe_error(error), file=sys.stderr)


def _cmd_ingest(args) -> int:
    """``ingest``: real DEM -> TIN -> POIs -> built, packed oracle.

    For geographic grids the POIs keep their lat/lon identity, which
    enables the haversine sanity gate: no oracle distance may undercut
    the great-circle distance between the POIs' coordinates (beyond
    epsilon + --slack).  A gate failure exits non-zero — it means the
    ingested surface is geometrically wrong, not merely imprecise.
    """
    from .core import SEOracle, pack_oracle, save_oracle
    from .geodesic import GeodesicEngine
    from .terrain import write_mesh
    from .terrain.ingest import (
        IngestError,
        dem_to_mesh,
        haversine_gate,
        place_pois,
        read_dem,
        read_poi_csv,
        sample_poi_latlons,
    )
    try:
        grid = read_dem(args.dem)
        mesh, projection = dem_to_mesh(
            grid, decimate=args.decimate, z_scale=args.z_scale)
    except (IngestError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    nrows, ncols = grid.shape
    kind = "geographic" if grid.is_geographic else "projected"
    print(f"read {args.dem}: {nrows}x{ncols} cells "
          f"({grid.valid_fraction * 100:.1f}% valid, {kind})"
          + (f", decimated x{args.decimate}" if args.decimate > 1 else ""))
    print(f"triangulated: {mesh.num_vertices} vertices / "
          f"{mesh.num_faces} faces")

    latlons = None
    try:
        if args.poi_file:
            names, latlons = read_poi_csv(args.poi_file)
            pois = place_pois(mesh, projection, latlons)
            print(f"placed {len(pois)} POIs from {args.poi_file}: "
                  + ", ".join(names[:8])
                  + (" ..." if len(names) > 8 else ""))
        elif projection is not None:
            latlons = sample_poi_latlons(
                mesh, projection, args.pois, seed=args.poi_seed)
            pois = place_pois(mesh, projection, latlons)
            print(f"sampled {len(pois)} surface POIs (seed "
                  f"{args.poi_seed})")
        else:
            from .terrain import sample_uniform
            pois = sample_uniform(mesh, args.pois, seed=args.poi_seed)
            print(f"sampled {len(pois)} surface POIs (seed "
                  f"{args.poi_seed}; projected grid, no haversine "
                  "gate)")
    except IngestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.mesh_out:
        write_mesh(mesh, args.mesh_out)
        print(f"wrote TIN to {args.mesh_out}")

    engine = GeodesicEngine(mesh, pois, points_per_edge=args.density)
    started = time.perf_counter()
    oracle = SEOracle(engine, args.epsilon, seed=args.seed,
                      jobs=args.jobs).build()
    elapsed = time.perf_counter() - started
    if args.out.endswith(".json"):
        save_oracle(oracle, args.out)
    else:
        pack_oracle(oracle, args.out)
    print(f"built in {elapsed:.2f}s: n={engine.num_pois} "
          f"h={oracle.height} pairs={oracle.num_pairs} -> {args.out}")

    if latlons is not None:
        report = haversine_gate(
            oracle, latlons, args.epsilon, slack=args.slack)
        print(f"haversine gate: {report['pairs_checked']} pairs, "
              f"min oracle/great-circle ratio "
              f"{report['min_ratio']:.3f} "
              f"(floor {report['floor']:.3f})")
        if not report["ok"]:
            for failure in report["failures"][:5]:
                print(f"error: d({failure['source']}, "
                      f"{failure['target']}) = "
                      f"{failure['oracle_m']:.1f} m undercuts the "
                      f"{failure['haversine_m']:.1f} m great-circle "
                      f"lower bound (ratio {failure['ratio']:.3f})",
                      file=sys.stderr)
            print(f"error: haversine sanity gate failed on "
                  f"{len(report['failures'])} pair(s)", file=sys.stderr)
            return 1
    return 0


def _cmd_workload(args) -> int:
    if args.action == "gen":
        return _cmd_workload_gen(args)
    return _cmd_workload_replay(args)


def _cmd_workload_gen(args) -> int:
    from .serving.workloads import (
        WorkloadError,
        dumps_workload,
        generate_workload,
    )
    radius = args.radius
    if args.store:
        from .core import open_oracle
        stored = open_oracle(args.store)
        num_pois = stored.num_pois
        if radius is None and args.scenario == "range-alerts":
            import numpy as np
            matrix = stored.query_matrix()
            off_diagonal = matrix[~np.eye(num_pois, dtype=bool)]
            radius = round(float(np.median(off_diagonal)), 3)
            print(f"derived radius {radius} m from {args.store} "
                  "(median pairwise distance)")
    elif args.num_pois is not None:
        num_pois = args.num_pois
    else:
        print("error: workload gen needs --store or --num-pois",
              file=sys.stderr)
        return 2
    try:
        generated = generate_workload(
            args.scenario, args.terrain, num_pois, args.events,
            seed=args.seed, agents=args.agents, k=args.k,
            radius=1000.0 if radius is None else radius,
            sentinels=args.sentinels, rate=args.rate)
    except WorkloadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with open(args.out, "w", newline="\n") as handle:
        handle.write(dumps_workload(generated))
    counts = " ".join(f"{op}x{count}" for op, count
                      in sorted(generated.op_counts().items()))
    print(f"wrote {len(generated.events)} events ({counts}) "
          f"for terrain {args.terrain!r} -> {args.out}")
    return 0


def _cmd_workload_replay(args) -> int:
    from .serving.loadgen import replay_workload
    from .serving.workloads import WorkloadError, check_events, \
        read_workload
    try:
        loaded = read_workload(args.workload)
        check_events(loaded.events, loaded.num_pois)
    except (WorkloadError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    terrain = args.terrain or loaded.terrain
    if args.pace and not any(
            event.get("arrival_s") is not None for event in loaded.events):
        print("error: --pace needs arrival_s timestamps; regenerate "
              "the workload with --rate", file=sys.stderr)
        return 2
    report = replay_workload(args.host, args.port, terrain,
                             loaded.events, pace=args.pace)
    print(f"replayed {report.requests} events "
          f"({loaded.scenario}, seed {loaded.seed}) against "
          f"{terrain!r} in {report.elapsed_s:.2f}s "
          f"-> {report.qps:,.0f} q/s, {report.errors} errors")
    for op, stats in report.op_latency_ms.items():
        print(f"  {op}: p50={stats['p50']:.3f} ms "
              f"p95={stats['p95']:.3f} ms p99={stats['p99']:.3f} ms")
    return 1 if report.errors else 0


def _cmd_analyze(args) -> int:
    import sqlite3

    from .analysis import mirror_store, run_sql, run_view
    try:
        report = mirror_store(args.store, args.db,
                              chunk_rows=args.chunk_rows)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    counts = ", ".join(f"{name}={count}" for name, count
                       in report["tables"].items())
    print(f"mirrored {args.store} -> {report['db_path']} ({counts})")
    print(f"views: {', '.join(report['views'])}")
    try:
        for view in args.view:
            columns, rows = run_view(args.db, view)
            print(f"-- {view} ({len(rows)} rows)")
            print("  " + " | ".join(columns))
            for row in rows:
                print("  " + " | ".join(str(value) for value in row))
        if args.sql:
            columns, rows = run_sql(args.db, args.sql)
            print(f"-- sql ({len(rows)} rows)")
            print("  " + " | ".join(columns))
            for row in rows:
                print("  " + " | ".join(str(value) for value in row))
    except (sqlite3.Error, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args) -> int:
    from . import experiments
    runners = {
        "fig8": lambda: experiments.figure8(args.scale, render=True),
        "fig9": lambda: experiments.figure9(args.scale, render=True),
        "fig10": lambda: experiments.figure10(args.scale, render=True),
        "fig11": lambda: experiments.figure11(args.scale, render=True),
        "fig12": lambda: experiments.figure12(args.scale, render=True),
        "fig13": lambda: experiments.figure13(args.scale, render=True),
        "fig14": lambda: experiments.figure14(args.scale, render=True),
        "table1": lambda: experiments.table1_complexity_probes(
            args.scale, render=True),
        "table2": lambda: experiments.table2_dataset_statistics(
            args.scale, render=True),
        "table3": lambda: experiments.table3_query_distances(
            args.scale, render=True),
    }
    runners[args.experiment]()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "build": _cmd_build,
    "query": _cmd_query,
    "pack": _cmd_pack,
    "serve": _cmd_serve,
    "ingest": _cmd_ingest,
    "workload": _cmd_workload,
    "analyze": _cmd_analyze,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args, extras = parser.parse_known_args(argv)
    if extras and args.command == "query" and args.target is None:
        # `query mesh oracle --pois 40 3 17` (or `... 3 --pois 40 17`):
        # argparse matches the optional source/target positionals
        # greedily in the first positional chunk and cannot backtrack,
        # so trailing ids land in `extras`.  Fold them back in.
        try:
            ids = [int(token) for token in extras]
        except ValueError:
            ids = None
        if ids is not None and args.source is None and len(ids) == 2:
            args.source, args.target = ids
            extras = []
        elif ids is not None and args.source is not None and len(ids) == 1:
            args.target = ids[0]
            extras = []
    if extras:
        parser.error(f"unrecognized arguments: {' '.join(extras)}")
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
