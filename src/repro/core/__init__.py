"""Core: the SE distance oracle and its tree / node-pair machinery."""

from .compressed_tree import (
    CompressedPartitionTree,
    CompressedTreeNode,
    compress_tree,
)
from .node_pairs import (
    EnhancedEdgeIndex,
    NodePairSet,
    build_enhanced_edges,
    generate_node_pairs,
    generate_node_pairs_batched,
    well_separated_threshold,
)
from .a2a import A2AOracle, build_site_pois
from .compiled import CompiledOracle, compile_oracle
from .dynamic import DynamicSEOracle
from .index import (
    DistanceIndex,
    DistanceIndexMixin,
    P2PIndexAdapter,
    ensure_index,
    pair_arrays,
)
from .oracle import BuildStats, SEOracle
from .paged import PagedOracle
from .parallel import (
    BuildExecutor,
    MultiprocessExecutor,
    SerialExecutor,
    make_executor,
    map_jobs,
)
from .partition_tree import (
    PartitionTree,
    PartitionTreeNode,
    build_partition_tree,
)
from .serialize import load_oracle, save_oracle, workload_fingerprint
from .store import (
    StoredOracle,
    open_oracle,
    oracle_sections,
    pack_document,
    pack_oracle,
    section_layouts,
)
from .tiled import (
    TiledBuild,
    TiledOracle,
    build_tiled_oracle,
    open_tiled_oracle,
    pack_tiled,
    plan_tiles,
)

__all__ = [
    "SEOracle",
    "BuildStats",
    "DistanceIndex",
    "DistanceIndexMixin",
    "P2PIndexAdapter",
    "ensure_index",
    "pair_arrays",
    "CompiledOracle",
    "compile_oracle",
    "A2AOracle",
    "build_site_pois",
    "DynamicSEOracle",
    "save_oracle",
    "load_oracle",
    "workload_fingerprint",
    "pack_oracle",
    "pack_document",
    "open_oracle",
    "oracle_sections",
    "section_layouts",
    "StoredOracle",
    "PagedOracle",
    "TiledBuild",
    "TiledOracle",
    "build_tiled_oracle",
    "open_tiled_oracle",
    "pack_tiled",
    "plan_tiles",
    "PartitionTree",
    "PartitionTreeNode",
    "build_partition_tree",
    "CompressedPartitionTree",
    "CompressedTreeNode",
    "compress_tree",
    "EnhancedEdgeIndex",
    "NodePairSet",
    "build_enhanced_edges",
    "generate_node_pairs",
    "generate_node_pairs_batched",
    "well_separated_threshold",
    "BuildExecutor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "make_executor",
    "map_jobs",
]
