"""Cross-rebuild SSAD memoisation — the sublinear incremental flush.

``DynamicSEOracle.flush`` used to be a synonym for ``force_rebuild``:
every flush reconstructed the whole oracle, making maintenance cost
proportional to the terrain instead of to the damage (the Berkholz et
al. update-time/query-time trade-off this repo keeps citing).  This
module makes the rebuild a *deterministic replay*: an incremental
flush runs the exact construction pipeline a fresh build would run —
same partition tree, same enhanced edges, same node pairs, same hash
seeds — but substitutes memoised SSAD rows wherever the cached row is
provably bit-equal to what a fresh computation would return.  The
output tables are therefore bit-identical to ``force_rebuild`` *by
construction* (the fuzz wall in ``tests/test_incremental_flush.py``
checks it array-for-array), while the dominant cost — the SSAD bulk,
around 80% of build time — shrinks to the rows the churn actually
damaged.

Why a memoised row is safe to splice
------------------------------------
POI sites are *metrically inert*:
:meth:`~repro.geodesic.graph.GeodesicGraph.attach_site` connects a
site only to its face's boundary clique (plus same-face sites), and
every boundary pair already has a direct edge no longer than any
two-hop path through the site — so adding or removing sites never
changes the shortest-path distance between surviving graph nodes.  A
row computed from source ``c`` on the previous build's engine stays
exact, entry for entry, on the rebuilt engine — *unless* the churn put
a new POI inside the row's search radius, in which case the fresh row
would contain an entry the memo cannot supply.  Invalidation is
exactly that test, run against the overlay's delta rows (distances
from each inserted POI to every previous base POI, already computed
for queries) with a small conservative relative slack; rows computed
in cover-all mode (no radius bound) are invalidated by *any* insert.

Rows are keyed in **external-id** space — the stable identity that
survives rebuild renumbering — and re-slotted into the new build's
dense POI ids on reuse; entries whose target was deleted simply drop
out during the remap.  Every rebuild (memoised or not) recaptures the
memo wholesale, so the memo always describes exactly one generation.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .parallel import BuildExecutor

__all__ = ["FlushMemo", "MemoExecutor", "SliceGate", "FlushAborted"]

#: Conservative relative slack on the insert-inside-radius test: a row
#: is only reused when every inserted POI is *clearly* outside its
#: search radius, so float noise near the boundary always recomputes.
_SLACK = 1e-9

#: One memo key: ``(source external id, radius bound)`` with ``None``
#: meaning cover-all mode.  The bound is the exact float the build
#: passes to the engine, so a changed root radius misses cleanly.
_RowKey = Tuple[int, Optional[float]]


class FlushAborted(RuntimeError):
    """Raised inside an abandoned sliced flush's builder thread."""


class SliceGate:
    """Cooperative pause points between bounded slices of flush work.

    The builder thread calls :meth:`pause` after each unit of SSAD
    work and blocks whenever its allowance is spent; the driving
    generator calls :meth:`run_slice` to grant one budget's worth of
    work and regain control once the builder stalls (or finishes).
    :meth:`abort` unblocks an abandoned builder with
    :class:`FlushAborted`.
    """

    def __init__(self, budget: int):
        if budget < 1:
            raise ValueError("slice budget must be at least 1")
        self.budget = int(budget)
        self._cv = threading.Condition()
        self._allowance = 0
        self._paused = False
        self._finished = False
        self._aborted = False

    # -- builder side ---------------------------------------------------
    def pause(self, cost: int = 1) -> None:
        """Charge ``cost`` work units; block once the allowance is spent."""
        with self._cv:
            self._allowance -= cost
            while self._allowance <= 0 and not self._aborted:
                self._paused = True
                self._cv.notify_all()
                self._cv.wait()
            self._paused = False
            if self._aborted:
                raise FlushAborted("sliced flush abandoned by its driver")

    def finish(self) -> None:
        with self._cv:
            self._finished = True
            self._cv.notify_all()

    # -- driver side ----------------------------------------------------
    def run_slice(self) -> bool:
        """Grant one budget; returns True once the builder has finished."""
        with self._cv:
            if self._finished:
                return True
            self._allowance = self.budget
            self._paused = False
            self._cv.notify_all()
            while not self._paused and not self._finished:
                self._cv.wait()
            return self._finished

    def abort(self) -> None:
        with self._cv:
            self._aborted = True
            self._cv.notify_all()


class FlushMemo:
    """One generation of SSAD rows, keyed by stable external ids.

    Owned by a :class:`~repro.core.dynamic.DynamicSEOracle`;
    :meth:`begin` binds it to one rebuild (producing the
    :class:`MemoExecutor` the build pipeline runs through) and
    :meth:`commit` adopts that rebuild's captured rows as the next
    generation.
    """

    def __init__(self):
        #: (source ext, bound) -> {target ext: distance}
        self.rows: Dict[_RowKey, Dict[int, float]] = {}
        #: sorted (ext, ext) -> early-exit pair distance (naive method)
        self.pairs: Dict[Tuple[int, int], float] = {}
        #: external ids that were base POIs when ``rows`` was captured
        self.members: frozenset = frozenset()

    def begin(self, active_ids: Sequence[int],
              blocked_radius: Optional[Dict[int, float]] = None,
              allow_reuse: bool = True,
              gate: Optional[SliceGate] = None) -> "MemoExecutor":
        """Bind the memo to one rebuild over ``active_ids``.

        ``blocked_radius`` maps a previous-generation member external
        id to the distance of its nearest *inserted* POI — the
        invalidation data; omit it (or pass ``allow_reuse=False``) to
        disable reuse while still capturing the build's rows.
        """
        return MemoExecutor(self, list(active_ids),
                            blocked_radius or {}, allow_reuse, gate)

    def commit(self, executor: "MemoExecutor") -> None:
        """Adopt one finished rebuild's rows as the new generation."""
        self.rows = executor.captured_rows
        self.pairs = executor.captured_pairs
        self.members = frozenset(executor.active_ids)


class MemoExecutor(BuildExecutor):
    """A :class:`BuildExecutor` wrapper that replays memoised rows.

    Wraps the rebuild's real executor (bound by ``bind``): every SSAD
    task first consults the memo — a valid hit is re-slotted from
    external ids into the new build's dense ids and returned without
    touching the engine — and misses are computed through the inner
    executor, then captured in external-id space for the *next*
    generation.  ``name``/``jobs`` mirror the inner executor so build
    stats and store metadata stay byte-comparable between memoised and
    from-scratch builds.
    """

    def __init__(self, memo: FlushMemo, active_ids: List[int],
                 blocked_radius: Dict[int, float], allow_reuse: bool,
                 gate: Optional[SliceGate]):
        self._memo = memo
        self.active_ids = active_ids
        self._ext_of = active_ids                    # new slot -> ext
        self._slot_of = {ext: slot
                         for slot, ext in enumerate(active_ids)}
        self._blocked = blocked_radius
        self._inserted = [ext for ext in active_ids
                          if ext not in memo.members]
        self._allow_reuse = allow_reuse
        self._gate = gate
        self._inner: Optional[BuildExecutor] = None
        self.captured_rows: Dict[_RowKey, Dict[int, float]] = {}
        self.captured_pairs: Dict[Tuple[int, int], float] = {}
        self.reused_rows = 0
        self.computed_rows = 0
        self.reused_pairs = 0
        self.computed_pairs = 0

    # ------------------------------------------------------------------
    # BuildExecutor surface
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:  # type: ignore[override]
        return self._inner.jobs if self._inner is not None else 1

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._inner.name if self._inner is not None else "serial"

    def attach(self, inner: BuildExecutor) -> "MemoExecutor":
        self._inner = inner
        return self

    def bind(self, engine) -> None:
        if self._inner is None:
            raise RuntimeError("memo executor has no inner executor")
        self._inner.bind(engine)

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()

    # ------------------------------------------------------------------
    # the memoised maps
    # ------------------------------------------------------------------
    def ssad(self, center: int, radius: Optional[float] = None
             ) -> Dict[int, float]:
        """Point-wise memoised SSAD (the partition-tree build hook)."""
        return self.map_ssad([(center, radius)])[0]

    def map_ssad(self, tasks) -> List[Dict[int, float]]:
        results: List[Optional[Dict[int, float]]] = [None] * len(tasks)
        misses: List[int] = []
        for position, (slot, radius) in enumerate(tasks):
            row = self._cached_row(int(slot), radius)
            if row is None:
                misses.append(position)
            else:
                results[position] = row
                self.reused_rows += 1
        if misses:
            chunk = self._gate.budget if self._gate is not None \
                else len(misses)
            for start in range(0, len(misses), chunk):
                part = misses[start:start + chunk]
                fresh = self._inner.map_ssad(
                    [tasks[position] for position in part])
                if len(fresh) != len(part):
                    raise ValueError(
                        "executor returned a misaligned batch")
                for position, row in zip(part, fresh):
                    slot, radius = tasks[position]
                    self._capture_row(int(slot), radius, row)
                    results[position] = row
                    self.computed_rows += 1
                if self._gate is not None:
                    self._gate.pause(len(part))
        return results  # type: ignore[return-value]

    def map_pair_distances(self, pairs) -> List[float]:
        results: List[Optional[float]] = [None] * len(pairs)
        misses: List[int] = []
        members = self._memo.members
        for position, (slot_a, slot_b) in enumerate(pairs):
            ext_a, ext_b = self._ext_of[slot_a], self._ext_of[slot_b]
            key = (ext_a, ext_b) if ext_a < ext_b else (ext_b, ext_a)
            cached = self._memo.pairs.get(key) if self._allow_reuse \
                and ext_a in members and ext_b in members else None
            if cached is None:
                misses.append(position)
            else:
                results[position] = cached
                self.captured_pairs[key] = cached
                self.reused_pairs += 1
        if misses:
            fresh = self._inner.map_pair_distances(
                [pairs[position] for position in misses])
            if len(fresh) != len(misses):
                raise ValueError("executor returned a misaligned batch")
            for position, distance in zip(misses, fresh):
                slot_a, slot_b = pairs[position]
                ext_a = self._ext_of[slot_a]
                ext_b = self._ext_of[slot_b]
                key = (ext_a, ext_b) if ext_a < ext_b \
                    else (ext_b, ext_a)
                self.captured_pairs[key] = float(distance)
                results[position] = distance
                self.computed_pairs += 1
            if self._gate is not None:
                self._gate.pause(len(misses))
        return results  # type: ignore[return-value]

    def stats(self) -> Dict[str, int]:
        return {
            "reused_rows": self.reused_rows,
            "computed_rows": self.computed_rows,
            "reused_pairs": self.reused_pairs,
            "computed_pairs": self.computed_pairs,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cached_row(self, slot: int,
                    radius: Optional[float]) -> Optional[Dict[int, float]]:
        """A valid memoised row, re-slotted — or ``None`` to compute.

        Validity: cover-all rows (``radius=None``) die with any
        insert; a bounded row dies when some inserted POI sits within
        ``radius * (1 + slack)`` of its source, because the fresh row
        would then contain that POI.  Deleted targets are dropped by
        the re-slot itself (their external ids have no new slot).
        """
        if not self._allow_reuse:
            return None
        ext = self._ext_of[slot]
        key = (ext, None if radius is None else float(radius))
        cached = self._memo.rows.get(key)
        if cached is None:
            return None
        if self._inserted:
            if radius is None:
                return None
            nearest = self._blocked.get(ext, math.inf)
            if nearest <= float(radius) * (1.0 + _SLACK):
                return None
        slot_of = self._slot_of
        kept = {target: distance for target, distance in cached.items()
                if target in slot_of}
        self.captured_rows[key] = kept
        return {slot_of[target]: distance
                for target, distance in kept.items()}

    def _capture_row(self, slot: int, radius: Optional[float],
                     row: Dict[int, float]) -> None:
        ext_of = self._ext_of
        key = (ext_of[slot], None if radius is None else float(radius))
        self.captured_rows[key] = {
            ext_of[target]: distance for target, distance in row.items()
        }
