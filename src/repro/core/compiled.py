"""The compiled oracle: flat NumPy query tables over a built SE oracle.

``SEOracle.query`` walks Python objects — layer arrays, tree nodes, a
per-probe scalar hash lookup.  That is fine for one query but is the
bottleneck of a serving workload where millions of queries arrive in
batches.  ``CompiledOracle`` freezes a built oracle into flat tables:

* the **ancestor-chain matrix** ``chains``: one ``int64`` row per POI
  holding the compressed-node id at each original layer (``-1`` where
  the compressed path skips the layer) — ``tree.layer_array`` for every
  POI at once, padded to the tree height;
* four **pre-packed key planes** derived from it: the *exact* plane
  (chain node at layer ``k``) and the *spanner* plane (the chain node
  whose compressed span covers layer ``k``, i.e. the node ``B`` with
  ``parent(B).layer <= k < layer(B)``), each split into the high/low
  half of a packed pair key so a batch forms candidate keys with one
  broadcast OR;
* the **frozen pair table**: the perfect hash flattened into parallel
  multiply-shift tables with a float64 distance column, probed for a
  whole batch at once (:meth:`~repro.datastructures.perfect_hash.
  PerfectHashMap.get_batch`).

The scalar query algorithm (Section 3.4) probes three candidate
families along the two root chains: same-layer pairs (step 1), then
pairs of an exact source node with a spanning target node (step 2) and
the symmetric family (step 3).  The batch path probes the same-layer
plane for every query first — which resolves the vast majority — and
re-probes only the unresolved rows against the two mixed planes,
``O(h)`` candidate keys per query overall, exactly the scalar
algorithm's candidate set.

Correctness rests on Theorem 1's uniqueness property: exactly one
stored node pair covers an ordered POI pair ``(s, t)``, and every
probed candidate lies on the two chains, so across all planes at most
one probe can hit — whatever the probe order, the result is the
identical stored float the scalar walk returns.  (Ancestor/descendant
pairs are never stored — a parent centre is within ``r`` of its
child's while well-separation demands ``>= (4/ε + 4) r`` — so the only
same-chain stored pairs are leaf self-pairs, which is what makes
``s == t`` resolve to the stored ``0.0``.)

Cost model: a batch of ``m`` queries costs ``m (h+1)`` probed keys
plus ``2 m' (h+1)`` for the unresolved fraction ``m'/m`` (typically
< 10%), all in a handful of NumPy passes — no Python per query.
Compilation is one O(n·h) chain sweep plus an O(#pairs) table flatten;
it pays off after a few thousand queries (see
``benchmarks/bench_query_throughput.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..datastructures.perfect_hash import PerfectHashMap
from .compressed_tree import CompressedPartitionTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .oracle import SEOracle

__all__ = ["CompiledOracle", "compile_oracle", "chain_matrix"]

_ID_MASK = np.uint64(0xFFFFFFFF)
_SHIFT = np.uint64(32)


class CompiledOracle:
    """Flat-table form of a built SE oracle answering queries in batches.

    Construct with :meth:`from_oracle` (or ``oracle.compiled()``); the
    raw constructor takes the chain matrix directly, which is how the
    serializer re-hydrates a format-v3 document — and the binary store
    (:mod:`~repro.core.store`) its memory-mapped v4 sections — without
    re-walking the tree.

    Parameters
    ----------
    chains:
        ``(n, height+1)`` int64 ancestor-chain matrix, ``-1``-padded.
    pair_hash:
        The oracle's perfect-hashed node pair set (float distances).
    epsilon:
        Error parameter the tables answer within (carried for reports).
    """

    def __init__(self, chains: np.ndarray, pair_hash: PerfectHashMap,
                 epsilon: float):
        chains = np.ascontiguousarray(chains, dtype=np.int64)
        if chains.ndim != 2 or chains.shape[1] < 1:
            raise ValueError("chains must be a 2-D (POI x layer) matrix")
        self._chains = chains
        self._pair_hash = pair_hash
        self.epsilon = epsilon

        # The spanner plane: span[poi, k] is the chain node whose
        # compressed span covers layer k — the node at the first
        # occupied layer strictly greater than k (its parent is the
        # previous occupied node, at a layer <= k).  -1 where no such
        # node exists (k at or above the leaf layer of that chain).
        num_pois, layers = chains.shape
        span = np.full(chains.shape, -1, dtype=np.int64)
        below = np.full(num_pois, -1, dtype=np.int64)
        for k in range(layers - 1, -1, -1):  # O(h) vectorized passes
            span[:, k] = below
            occupied = chains[:, k] != -1
            below = np.where(occupied, chains[:, k], below)

        # Pre-packed key planes: OR-ing a high plane row (source) with
        # a low plane row (target) yields pack_pair(node_s, node_t) for
        # every layer.  -1 padding turns into the 0xFFFFFFFF id, which
        # no stored key contains (ids are < 2^31), so padded
        # combinations probe as guaranteed misses.
        exact = chains.astype(np.uint64) & _ID_MASK
        spans = span.astype(np.uint64) & _ID_MASK
        self._exact_high = exact << _SHIFT
        self._exact_low = exact
        self._span_high = spans << _SHIFT
        self._span_low = spans

        # Freeze the hash's batch tables now: compilation is the
        # declared one-time cost point, so the first query_batch must
        # not silently pay it.
        pair_hash._freeze()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_oracle(cls, oracle: "SEOracle") -> "CompiledOracle":
        """Freeze a built :class:`~repro.core.oracle.SEOracle`."""
        if not oracle.is_built:
            raise RuntimeError("oracle not built; call build() first")
        chains = chain_matrix(oracle.tree, oracle.engine.num_pois)
        return cls(chains, oracle.pair_hash, oracle.epsilon)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_pois(self) -> int:
        return self._chains.shape[0]

    @property
    def height(self) -> int:
        return self._chains.shape[1] - 1

    @property
    def chains(self) -> np.ndarray:
        """The ancestor-chain matrix (read-only view)."""
        view = self._chains.view()
        view.setflags(write=False)
        return view

    @property
    def pair_hash(self) -> PerfectHashMap:
        return self._pair_hash

    @property
    def supports_updates(self) -> bool:
        """``DistanceIndex`` flag: compiled tables are immutable."""
        return False

    @property
    def is_compiled(self) -> bool:
        return True

    def size_bytes(self) -> int:
        """Byte model: chain matrix + key planes + the pair table."""
        planes = (self._exact_high.nbytes + self._exact_low.nbytes
                  + self._span_high.nbytes + self._span_low.nbytes)
        return (self._chains.nbytes + planes
                + self._pair_hash.size_bytes(8))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_batch(self, sources: Sequence[int],
                    targets: Sequence[int]) -> np.ndarray:
        """ε-approximate distances for aligned source/target id arrays.

        Returns a float64 array with ``result[i] ==
        SEOracle.query(sources[i], targets[i])`` bit-for-bit.  Raises
        ``RuntimeError`` if any query finds no covering pair (the same
        unique-match violation the scalar query raises on) and
        ``IndexError`` on out-of-range POI ids.
        """
        source_ids = np.asarray(sources, dtype=np.intp)
        target_ids = np.asarray(targets, dtype=np.intp)
        if source_ids.shape != target_ids.shape or source_ids.ndim != 1:
            raise ValueError("sources and targets must be aligned 1-D "
                             "id arrays")
        count = source_ids.shape[0]
        if count == 0:
            return np.empty(0, dtype=np.float64)
        n = self.num_pois
        for ids in (source_ids, target_ids):
            if ids.min() < 0 or ids.max() >= n:
                raise IndexError(f"POI ids out of range [0, {n})")

        # Phase 1 — the same-layer plane (the scalar query's step 1),
        # which resolves the vast majority of queries.
        keys = self._exact_high[source_ids] | self._exact_low[target_ids]
        values = self._pair_hash.get_batch(keys, default=np.nan)
        hit = ~np.isnan(values)
        first = hit.argmax(axis=1)
        rows = np.arange(count)
        result = values[rows, first]
        resolved = hit[rows, first]
        if resolved.all():
            return result

        # Phase 2 — the two mixed exact x spanner planes (steps 2-3)
        # for the unresolved rows only.
        pending = np.flatnonzero(~resolved)
        sub_s = source_ids[pending]
        sub_t = target_ids[pending]
        keys = np.concatenate(
            (self._exact_high[sub_s] | self._span_low[sub_t],
             self._span_high[sub_s] | self._exact_low[sub_t]), axis=1)
        values = self._pair_hash.get_batch(keys, default=np.nan)
        hit = ~np.isnan(values)
        first = hit.argmax(axis=1)
        rows = np.arange(pending.size)
        still_missing = ~hit[rows, first]
        if still_missing.any():
            bad = np.flatnonzero(still_missing)[0]
            source, target = int(sub_s[bad]), int(sub_t[bad])
            raise RuntimeError(
                f"no covering node pair for ({source}, {target}); "
                "unique-match property violated"
            )
        result[pending] = values[rows, first]
        return result

    def query(self, source: int, target: int) -> float:
        """Scalar convenience wrapper over :meth:`query_batch`."""
        return float(self.query_batch(np.array([source]),
                                      np.array([target]))[0])

    def query_matrix(self, pois: Optional[Sequence[int]] = None
                     ) -> np.ndarray:
        """All-pairs distance matrix over ``pois`` (default: all POIs).

        ``result[i, j]`` is the oracle distance from ``pois[i]`` to
        ``pois[j]``; the diagonal holds the stored self-distances
        (``0.0``).
        """
        if pois is None:
            ids = np.arange(self.num_pois, dtype=np.intp)
        else:
            ids = np.asarray(pois, dtype=np.intp)
        count = ids.shape[0]
        grid_s = np.repeat(ids, count)
        grid_t = np.tile(ids, count)
        return self.query_batch(grid_s, grid_t).reshape(count, count)


def chain_matrix(tree: CompressedPartitionTree, num_pois: int) -> np.ndarray:
    """``tree.layer_array`` for every POI as one ``-1``-padded matrix."""
    chains = np.full((num_pois, tree.height + 1), -1, dtype=np.int64)
    for poi in range(num_pois):
        for layer, node in enumerate(tree.layer_array(poi)):
            if node is not None:
                chains[poi, layer] = node
    return chains


def compile_oracle(oracle: "SEOracle") -> CompiledOracle:
    """Functional alias for :meth:`CompiledOracle.from_oracle`."""
    return CompiledOracle.from_oracle(oracle)
