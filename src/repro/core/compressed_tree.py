"""The compressed partition tree — SE oracle component 1 (Section 3.2).

The compressed tree removes every internal single-child node of the
partition tree (re-parenting the child to its grandparent) and zeroes
the radius of the leaves.  The result has at most ``2n - 1`` nodes
(Lemma 9), which is what makes SE space-efficient: every structure the
oracle stores afterwards is linear in ``n``, not in ``n * h``.

Compressed nodes remember their *original* layer number — the layer of
the corresponding node in ``T_org`` — because the query algorithm's
layer arithmetic (Observation 1) is expressed in original layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .partition_tree import PartitionTree

__all__ = ["CompressedTreeNode", "CompressedPartitionTree", "compress_tree"]


@dataclass
class CompressedTreeNode:
    """A node of the compressed partition tree.

    ``layer`` is the layer number in the *original* partition tree;
    ``radius`` is the original radius, except leaves where it is 0.
    ``origin_id`` is the node id in ``T_org`` this node came from.
    """

    node_id: int
    center: int
    layer: int
    radius: float
    parent: Optional[int]
    origin_id: int
    children: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def enlarged_radius(self) -> float:
        """Radius of the enlarged disk ``D(c_O, 2 r_O)`` (Section 3.3)."""
        return 2.0 * self.radius


class CompressedPartitionTree:
    """Compressed partition tree with per-POI leaf lookup."""

    def __init__(self, nodes: List[CompressedTreeNode], root_id: int,
                 height: int, root_radius: float):
        self.nodes = nodes
        self.root_id = root_id
        self.height = height
        self.root_radius = root_radius
        self.leaf_of_poi: Dict[int, int] = {}
        for node in nodes:
            if node.is_leaf:
                self.leaf_of_poi[node.center] = node.node_id

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> CompressedTreeNode:
        return self.nodes[self.root_id]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> CompressedTreeNode:
        return self.nodes[node_id]

    def path_to_root(self, node_id: int) -> List[int]:
        """Node ids from ``node_id`` (inclusive) up to the root."""
        path = [node_id]
        while self.nodes[path[-1]].parent is not None:
            path.append(self.nodes[path[-1]].parent)
        return path

    def layer_array(self, poi: int) -> List[Optional[int]]:
        """The query algorithm's ``A_s`` array for a POI.

        ``array[i]`` is the node id at original layer ``i`` along the
        path from the POI's leaf to the root, or ``None`` when the
        (compressed) path skips that layer.
        """
        array: List[Optional[int]] = [None] * (self.height + 1)
        for node_id in self.path_to_root(self.leaf_of_poi[poi]):
            array[self.nodes[node_id].layer] = node_id
        return array

    def descendant_leaf_centers(self, node_id: int) -> List[int]:
        """The representative set RS(O): centres of leaf descendants."""
        result = []
        stack = [node_id]
        while stack:
            node = self.nodes[stack.pop()]
            if node.is_leaf:
                result.append(node.center)
            else:
                stack.extend(node.children)
        return result

    def size_bytes(self) -> int:
        """Byte model: 6 8-byte fields per node (id, centre, layer,
        radius, parent, child-slot)."""
        child_slots = sum(len(node.children) for node in self.nodes)
        return 8 * (5 * len(self.nodes) + child_slots)

    # ------------------------------------------------------------------
    # invariants (tests)
    # ------------------------------------------------------------------
    def check_structure(self, num_pois: int) -> None:
        """Assert Lemma 9's shape: n leaves, >=2 children internally."""
        leaves = [node for node in self.nodes if node.is_leaf]
        assert len(leaves) == num_pois, "one leaf per POI required"
        assert all(node.radius == 0.0 for node in leaves)
        for node in self.nodes:
            if node.node_id == self.root_id:
                assert node.parent is None
                continue
            assert node.parent is not None
            assert node.node_id in self.nodes[node.parent].children
            assert self.nodes[node.parent].layer < node.layer
        internal = [node for node in self.nodes if not node.is_leaf]
        for node in internal:
            if node.node_id != self.root_id:
                assert len(node.children) >= 2, (
                    f"internal node {node.node_id} kept a single child"
                )
        assert len(self.nodes) <= 2 * num_pois - 1 or num_pois == 1


def compress_tree(tree: PartitionTree) -> CompressedPartitionTree:
    """Compress a partition tree (Section 3.2's three-step procedure)."""
    original = tree.nodes
    height = tree.height

    # Decide which original nodes survive: the root, every leaf, and
    # every internal node with at least two children.
    survives = [False] * len(original)
    for node in original:
        if node.layer == height or len(node.children) >= 2:
            survives[node.node_id] = True
    survives[tree.root.node_id] = True

    compressed: List[CompressedTreeNode] = []
    new_id_of: Dict[int, int] = {}
    for node in original:
        if not survives[node.node_id]:
            continue
        is_leaf = node.layer == height
        new_id = len(compressed)
        new_id_of[node.node_id] = new_id
        compressed.append(CompressedTreeNode(
            node_id=new_id,
            center=node.center,
            layer=node.layer,
            radius=0.0 if is_leaf else node.radius,
            parent=None,  # fixed below
            origin_id=node.node_id,
        ))

    # Re-parent: walk up from each surviving node to the nearest
    # surviving proper ancestor.
    for node in original:
        if not survives[node.node_id]:
            continue
        ancestor = node.parent
        while ancestor is not None and not survives[ancestor]:
            ancestor = original[ancestor].parent
        if ancestor is not None:
            child = new_id_of[node.node_id]
            parent = new_id_of[ancestor]
            compressed[child].parent = parent
            compressed[parent].children.append(child)

    return CompressedPartitionTree(
        nodes=compressed,
        root_id=new_id_of[tree.root.node_id],
        height=height,
        root_radius=tree.root_radius,
    )
