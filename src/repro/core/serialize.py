"""Oracle persistence: save/build once, load and query many times.

A distance oracle's whole point is amortising construction across many
queries — which usually means across *processes* too.  This module
serialises a built :class:`~repro.core.oracle.SEOracle` to a compact,
versioned JSON document (and back) without pickling arbitrary objects:

* the compressed partition tree (centres, layers, radii, parents);
* the node pair set (ordered id pairs + distances);
* the construction metadata (ε, strategy, seed, stats).

The terrain/POI workload is *not* embedded — the loader receives the
(cheap to rebuild or separately stored) :class:`~repro.geodesic.engine.
GeodesicEngine` and re-attaches it, validating a workload fingerprint
so an oracle cannot silently be loaded against the wrong terrain.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Union

import numpy as np

from ..datastructures.perfect_hash import PerfectHashMap, pack_pair
from ..geodesic.engine import GeodesicEngine
from .compiled import CompiledOracle
from .compressed_tree import CompressedPartitionTree, CompressedTreeNode
from .node_pairs import NodePairSet
from .oracle import SEOracle

__all__ = ["save_oracle", "load_oracle", "workload_fingerprint",
           "FORMAT_VERSION"]

# Version 2 added the "build" metadata block (executor kind + jobs of
# the construction pipeline).  Version 3 added the optional "compiled"
# section: the query-serving chain matrix of a compiled oracle, so a
# serving process can load straight into the batched query path.
# Older documents remain readable; a v1/v2 load (or a v3 document
# without the section) simply compiles on demand.
FORMAT_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 3)

PathLike = Union[str, os.PathLike]


def workload_fingerprint(engine: GeodesicEngine) -> str:
    """A stable hash of the terrain + POI workload an oracle belongs to."""
    digest = hashlib.sha256()
    mesh = engine.mesh
    digest.update(mesh.vertices.tobytes())
    digest.update(mesh.faces.tobytes())
    digest.update(engine.pois.positions.tobytes())
    digest.update(str(engine.graph.points_per_edge).encode())
    return digest.hexdigest()[:16]


def save_oracle(oracle: SEOracle, path: PathLike,
                compiled: Optional[bool] = None) -> None:
    """Serialise a built oracle to ``path`` (JSON).

    Parameters
    ----------
    oracle:
        A built (and optionally compiled) oracle.
    compiled:
        Whether to embed the compiled-table section (format v3):
        ``True`` compiles now if needed, ``False`` omits the section,
        and the default ``None`` embeds it exactly when the oracle has
        already been compiled.
    """
    if not oracle.is_built:
        raise ValueError("cannot save an unbuilt oracle")
    if compiled is None:
        compiled = oracle.is_compiled
    tree = oracle.tree
    document: Dict[str, Any] = {
        "format": "repro-se-oracle",
        "version": FORMAT_VERSION,
        "epsilon": oracle.epsilon,
        "strategy": oracle.strategy,
        "method": oracle.method,
        "seed": oracle.seed,
        "build": {
            "executor": oracle.stats.executor,
            "jobs": oracle.stats.jobs,
        },
        "fingerprint": workload_fingerprint(oracle.engine),
        "tree": {
            "root_id": tree.root_id,
            "height": tree.height,
            "root_radius": tree.root_radius,
            "nodes": [
                [node.node_id, node.center, node.layer, node.radius,
                 -1 if node.parent is None else node.parent,
                 node.origin_id]
                for node in tree.nodes
            ],
        },
        "pairs": [
            [a, b, distance]
            for (a, b), distance in oracle.pair_set.pairs.items()
        ],
        "stats": {
            "height": oracle.stats.height,
            "pairs_stored": oracle.stats.pairs_stored,
            "total_seconds": oracle.stats.total_seconds,
        },
    }
    if compiled:
        tables = oracle.compiled()
        document["compiled"] = {
            "height": tables.height,
            "chains": tables.chains.tolist(),
        }
    with open(path, "w") as handle:
        json.dump(document, handle)


def load_oracle(path: PathLike, engine: GeodesicEngine,
                strict: bool = True) -> SEOracle:
    """Load an oracle saved by :func:`save_oracle`.

    Parameters
    ----------
    path:
        File produced by :func:`save_oracle`.
    engine:
        The workload the oracle was built for.  With ``strict`` the
        stored fingerprint must match the engine's; pass
        ``strict=False`` only when you know the workload is equivalent.
    """
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != "repro-se-oracle":
        raise ValueError(f"{path}: not a serialized SE oracle")
    if document.get("version") not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"{path}: unsupported format version {document.get('version')}"
        )
    if strict and document["fingerprint"] != workload_fingerprint(engine):
        raise ValueError(
            f"{path}: oracle was built for a different workload "
            "(terrain / POIs / Steiner density mismatch)"
        )

    nodes = []
    for node_id, center, layer, radius, parent, origin in \
            document["tree"]["nodes"]:
        nodes.append(CompressedTreeNode(
            node_id=node_id, center=center, layer=layer, radius=radius,
            parent=None if parent == -1 else parent, origin_id=origin,
        ))
    for node in nodes:
        if node.parent is not None:
            nodes[node.parent].children.append(node.node_id)
    tree = CompressedPartitionTree(
        nodes=nodes,
        root_id=document["tree"]["root_id"],
        height=document["tree"]["height"],
        root_radius=document["tree"]["root_radius"],
    )

    pairs = {(a, b): distance for a, b, distance in document["pairs"]}
    pair_set = NodePairSet(pairs=pairs, considered=len(pairs),
                           epsilon=document["epsilon"])
    pair_hash = PerfectHashMap(
        [(pack_pair(a, b), distance) for (a, b), distance in pairs.items()],
        seed=document["seed"],
    )

    oracle = SEOracle(engine, document["epsilon"],
                      strategy=document["strategy"],
                      method=document["method"], seed=document["seed"])
    oracle._tree = tree
    oracle._pair_set = pair_set
    oracle._pair_hash = pair_hash
    oracle._built = True
    compiled_section = document.get("compiled")
    if compiled_section is not None:
        oracle._compiled = CompiledOracle(
            np.asarray(compiled_section["chains"], dtype=np.int64),
            pair_hash, document["epsilon"],
        )
    oracle.stats.height = document["stats"]["height"]
    oracle.stats.pairs_stored = document["stats"]["pairs_stored"]
    oracle.stats.total_seconds = document["stats"]["total_seconds"]
    build_info = document.get("build", {})
    oracle.stats.executor = build_info.get("executor", "serial")
    oracle.stats.jobs = build_info.get("jobs", 1)
    return oracle
