"""Oracle persistence: save/build once, load and query many times.

A distance oracle's whole point is amortising construction across many
queries — which usually means across *processes* too.  This module
serialises a built :class:`~repro.core.oracle.SEOracle` to a compact,
versioned document (and back) without pickling arbitrary objects:

* the compressed partition tree (centres, layers, radii, parents);
* the node pair set (ordered id pairs + distances);
* the construction metadata (ε, strategy, seed, stats).

The terrain/POI workload is *not* embedded — the loader receives the
(cheap to rebuild or separately stored) :class:`~repro.geodesic.engine.
GeodesicEngine` and re-attaches it, validating a workload fingerprint
so an oracle cannot silently be loaded against the wrong terrain.

Format history
--------------
v1
    The original JSON document: tree + pairs + ε/strategy/seed/stats.
v2
    Added the ``build`` metadata block (executor kind + jobs of the
    construction pipeline).
v3
    Added the optional ``compiled`` section: the query-serving chain
    matrix of a compiled oracle, so a serving process can load
    straight into the batched query path.
v4
    The **binary store** (:mod:`~repro.core.store`): an mmap-friendly
    ``.npz``-style container of flat NumPy sections — tree arrays,
    pair key/distance arrays, frozen perfect-hash tables, compiled
    chain matrix — that :func:`~repro.core.store.open_oracle` maps
    zero-copy into a :class:`~repro.core.compiled.CompiledOracle`.
    Not a JSON schema: v4 files start with zip magic and are routed
    to the store reader automatically.

Every older version keeps loading; :func:`load_oracle` sniffs the
format, and ``python -m repro pack`` (or :func:`save_oracle` with a
binary target) upgrades any v1–v3 document to v4 losslessly.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Union

import numpy as np

from ..datastructures.perfect_hash import PerfectHashMap, pack_pair
from ..geodesic.engine import GeodesicEngine
from .compiled import CompiledOracle
from .compressed_tree import CompressedPartitionTree, CompressedTreeNode
from .node_pairs import NodePairSet
from .oracle import SEOracle

__all__ = ["save_oracle", "load_oracle", "workload_fingerprint",
           "FORMAT_VERSION", "JSON_FORMAT_VERSION", "SUPPORTED_VERSIONS"]

#: The current on-disk format: the v4 binary store (core/store.py).
FORMAT_VERSION = 4
#: The newest *JSON document* schema (v4 is binary-only).
JSON_FORMAT_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: Path suffixes that select the binary store in :func:`save_oracle`.
BINARY_SUFFIXES = (".store", ".npz", ".bin")

_ZIP_MAGIC = b"PK\x03\x04"

PathLike = Union[str, os.PathLike]


def workload_fingerprint(engine: GeodesicEngine) -> str:
    """A stable hash of the terrain + POI workload an oracle belongs to."""
    digest = hashlib.sha256()
    mesh = engine.mesh
    digest.update(mesh.vertices.tobytes())
    digest.update(mesh.faces.tobytes())
    digest.update(engine.pois.positions.tobytes())
    digest.update(str(engine.graph.points_per_edge).encode())
    return digest.hexdigest()[:16]


def save_oracle(oracle: SEOracle, path: PathLike,
                compiled: Optional[bool] = None,
                binary: Optional[bool] = None) -> None:
    """Serialise a built oracle to ``path`` (JSON or binary store).

    Parameters
    ----------
    oracle:
        A built (and optionally compiled) oracle.
    compiled:
        Whether to embed the compiled-table section (format v3):
        ``True`` compiles now if needed, ``False`` omits the section,
        and the default ``None`` embeds it exactly when the oracle has
        already been compiled.  Ignored for binary targets (the v4
        store always carries the compiled tables).
    binary:
        ``True`` writes the v4 binary store
        (:func:`~repro.core.store.pack_oracle`), ``False`` the JSON
        document; the default ``None`` picks binary when the path
        suffix is one of ``BINARY_SUFFIXES``.
    """
    if not oracle.is_built:
        raise ValueError("cannot save an unbuilt oracle")
    if binary is None:
        binary = os.fspath(path).endswith(BINARY_SUFFIXES)
    if binary:
        from .store import pack_oracle
        pack_oracle(oracle, path)
        return
    if compiled is None:
        compiled = oracle.is_compiled
    tree = oracle.tree
    document: Dict[str, Any] = {
        "format": "repro-se-oracle",
        "version": JSON_FORMAT_VERSION,
        "epsilon": oracle.epsilon,
        "strategy": oracle.strategy,
        "method": oracle.method,
        "seed": oracle.seed,
        "build": {
            "executor": oracle.stats.executor,
            "jobs": oracle.stats.jobs,
        },
        "fingerprint": workload_fingerprint(oracle.engine),
        "tree": {
            "root_id": tree.root_id,
            "height": tree.height,
            "root_radius": tree.root_radius,
            "nodes": [
                [node.node_id, node.center, node.layer, node.radius,
                 -1 if node.parent is None else node.parent,
                 node.origin_id]
                for node in tree.nodes
            ],
        },
        "pairs": [
            [a, b, distance]
            for (a, b), distance in oracle.pair_set.pairs.items()
        ],
        "stats": {
            "height": oracle.stats.height,
            "pairs_stored": oracle.stats.pairs_stored,
            "total_seconds": oracle.stats.total_seconds,
        },
    }
    if compiled:
        tables = oracle.compiled()
        document["compiled"] = {
            "height": tables.height,
            "chains": tables.chains.tolist(),
        }
    with open(path, "w") as handle:
        json.dump(document, handle)


def _json_version_guard(document: Dict[str, Any],
                        source: str = "load_oracle") -> None:
    """Reject non-oracle documents and unknown JSON schema versions."""
    if document.get("format") != "repro-se-oracle":
        raise ValueError(f"{source}: not a serialized SE oracle")
    version = document.get("version")
    if version not in SUPPORTED_VERSIONS or version > JSON_FORMAT_VERSION:
        raise ValueError(
            f"{source}: unsupported JSON format version {version}"
        )


def _document_tree(document: Dict[str, Any]) -> CompressedPartitionTree:
    """Rebuild the compressed tree of a v1–v3 JSON document."""
    nodes = []
    for node_id, center, layer, radius, parent, origin in \
            document["tree"]["nodes"]:
        nodes.append(CompressedTreeNode(
            node_id=node_id, center=center, layer=layer, radius=radius,
            parent=None if parent == -1 else parent, origin_id=origin,
        ))
    for node in nodes:
        if node.parent is not None:
            nodes[node.parent].children.append(node.node_id)
    return CompressedPartitionTree(
        nodes=nodes,
        root_id=document["tree"]["root_id"],
        height=document["tree"]["height"],
        root_radius=document["tree"]["root_radius"],
    )


def _is_binary_store(path: PathLike) -> bool:
    with open(path, "rb") as handle:
        return handle.read(4) == _ZIP_MAGIC


def load_oracle(path: PathLike, engine: GeodesicEngine,
                strict: bool = True) -> SEOracle:
    """Load an oracle saved by :func:`save_oracle` (JSON or binary).

    The format is sniffed from the file itself: a v4 binary store is
    opened zero-copy (:func:`~repro.core.store.open_oracle`) and
    rehydrated against the engine; anything else is parsed as a v1–v3
    JSON document.

    Parameters
    ----------
    path:
        File produced by :func:`save_oracle`.
    engine:
        The workload the oracle was built for.  With ``strict`` the
        stored fingerprint must match the engine's; pass
        ``strict=False`` only when you know the workload is equivalent.
    """
    if _is_binary_store(path):
        from .store import open_oracle
        return open_oracle(path, mmap=True).to_oracle(engine,
                                                      strict=strict)
    with open(path) as handle:
        document = json.load(handle)
    _json_version_guard(document, source=str(path))
    if strict and document["fingerprint"] != workload_fingerprint(engine):
        raise ValueError(
            f"{path}: oracle was built for a different workload "
            "(terrain / POIs / Steiner density mismatch)"
        )

    tree = _document_tree(document)
    pairs = {(a, b): distance for a, b, distance in document["pairs"]}
    pair_set = NodePairSet(pairs=pairs, considered=len(pairs),
                           epsilon=document["epsilon"])
    pair_hash = PerfectHashMap(
        [(pack_pair(a, b), distance) for (a, b), distance in pairs.items()],
        seed=document["seed"],
    )

    oracle = SEOracle(engine, document["epsilon"],
                      strategy=document["strategy"],
                      method=document["method"], seed=document["seed"])
    oracle._tree = tree
    oracle._pair_set = pair_set
    oracle._pair_hash = pair_hash
    oracle._built = True
    compiled_section = document.get("compiled")
    if compiled_section is not None:
        oracle._compiled = CompiledOracle(
            np.asarray(compiled_section["chains"], dtype=np.int64),
            pair_hash, document["epsilon"],
        )
    oracle.stats.height = document["stats"]["height"]
    oracle.stats.pairs_stored = document["stats"]["pairs_stored"]
    oracle.stats.total_seconds = document["stats"]["total_seconds"]
    build_info = document.get("build", {})
    oracle.stats.executor = build_info.get("executor", "serial")
    oracle.stats.jobs = build_info.get("jobs", 1)
    return oracle
