"""Dynamic POI updates on top of SE — the paper's future-work direction.

The conclusion singles out "how to efficiently update the distance
oracle when there is an update on some POIs" as an open problem.  This
module implements the standard *overlay + periodic rebuild* design:

* **insert**: the new POI joins a small overlay set; queries touching
  an overlay POI are answered by an on-demand SSAD (exact on the engine
  metric, hence trivially within ε) whose result is memoised;
* **delete**: the POI is tombstoned; querying it raises ``KeyError``;
* once the overlay + tombstones exceed ``rebuild_factor`` times the
  active POI count, the SE oracle is rebuilt from scratch over the
  active set — amortising the rebuild cost over many updates.

External POI ids are stable across rebuilds.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..geodesic.engine import GeodesicEngine
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POI, POISet
from .oracle import SEOracle

__all__ = ["DynamicSEOracle"]


class DynamicSEOracle:
    """SE oracle with insert/delete support via overlay + rebuild.

    Parameters
    ----------
    mesh:
        Terrain surface.
    pois:
        Initial POI set.
    epsilon:
        Error parameter of the underlying SE oracle.
    rebuild_factor:
        Rebuild once ``overlay + tombstones > factor * active``.
    points_per_edge:
        Steiner density of the metric graph.
    jobs:
        Build-fan-out worker processes for the underlying SE oracle
        (applies to the initial build *and* every amortised rebuild);
        see :class:`~repro.core.oracle.SEOracle`.
    """

    def __init__(self, mesh: TriangleMesh, pois: POISet, epsilon: float,
                 rebuild_factor: float = 0.25, points_per_edge: int = 1,
                 seed: int = 0, jobs: int = 1):
        if rebuild_factor <= 0:
            raise ValueError("rebuild_factor must be positive")
        self._mesh = mesh
        self.epsilon = epsilon
        self.rebuild_factor = rebuild_factor
        self._points_per_edge = points_per_edge
        self._seed = seed
        self.jobs = jobs
        self.rebuild_count = 0

        # External id -> current POI record; stable across rebuilds.
        self._records: Dict[int, POI] = {
            index: poi for index, poi in enumerate(pois)
        }
        self._next_id = len(self._records)
        self._deleted: set = set()
        self._overlay: set = set()

        self._engine: Optional[GeodesicEngine] = None
        self._oracle: Optional[SEOracle] = None
        self._base_index: Dict[int, int] = {}
        self._overlay_nodes: Dict[int, int] = {}
        self._overlay_cache: Dict[Tuple[int, int], float] = {}
        self._built = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def build(self) -> "DynamicSEOracle":
        self._rebuild()
        self._built = True
        return self

    def _rebuild(self) -> None:
        active_ids = [i for i in sorted(self._records)
                      if i not in self._deleted]
        if not active_ids:
            raise ValueError("cannot build over zero active POIs")
        base_pois = POISet([self._records[i] for i in active_ids])
        if len(base_pois) != len(active_ids):
            raise RuntimeError("active POIs collided after dedup")
        self._engine = GeodesicEngine(self._mesh, base_pois,
                                      points_per_edge=self._points_per_edge)
        self._oracle = SEOracle(self._engine, self.epsilon,
                                seed=self._seed, jobs=self.jobs).build()
        self._base_index = {external: i
                            for i, external in enumerate(active_ids)}
        self._overlay = set()
        self._overlay_nodes = {}
        self._overlay_cache = {}
        # Tombstoned ids are physically gone now.
        for dead in self._deleted:
            self._records.pop(dead, None)
        self._deleted = set()
        self.rebuild_count += 1

    @property
    def num_active(self) -> int:
        return len(self._records) - len(self._deleted)

    @property
    def overlay_size(self) -> int:
        return len(self._overlay)

    @property
    def oracle(self) -> SEOracle:
        if self._oracle is None:
            raise RuntimeError("oracle not built; call build() first")
        return self._oracle

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, x: float, y: float) -> int:
        """Insert the surface POI above planar ``(x, y)``; returns its id."""
        self._require_built()
        face_id = self._mesh.locate_face(x, y)
        if face_id < 0:
            raise ValueError(f"({x}, {y}) is outside the terrain")
        point = self._mesh.project_onto_surface(x, y)
        external = self._next_id
        self._next_id += 1
        self._records[external] = POI(
            index=external, position=tuple(float(c) for c in point),
            face_id=face_id)
        self._overlay.add(external)
        node = self._engine.graph.attach_site(
            tuple(float(c) for c in point), face_id)
        self._overlay_nodes[external] = node
        self._maybe_rebuild()
        return external

    def delete(self, poi_id: int) -> None:
        """Delete a POI; subsequent queries on it raise ``KeyError``."""
        self._require_built()
        if poi_id not in self._records or poi_id in self._deleted:
            raise KeyError(f"unknown POI id: {poi_id}")
        self._deleted.add(poi_id)
        self._overlay.discard(poi_id)
        self._overlay_nodes.pop(poi_id, None)
        self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        pending = len(self._overlay) + len(self._deleted)
        if pending > self.rebuild_factor * max(self.num_active, 1):
            self._rebuild()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, poi_a: int, poi_b: int) -> float:
        """ε-approximate geodesic distance between two live POIs."""
        self._require_built()
        for poi_id in (poi_a, poi_b):
            if poi_id not in self._records or poi_id in self._deleted:
                raise KeyError(f"unknown or deleted POI id: {poi_id}")
        if poi_a == poi_b:
            return 0.0
        in_overlay = (poi_a in self._overlay, poi_b in self._overlay)
        if not any(in_overlay):
            return self._oracle.query(self._base_index[poi_a],
                                      self._base_index[poi_b])
        # At least one endpoint is fresh: answer by (memoised) SSAD.
        key = (min(poi_a, poi_b), max(poi_a, poi_b))
        if key not in self._overlay_cache:
            node_a = self._node_of(poi_a)
            node_b = self._node_of(poi_b)
            self._overlay_cache[key] = self._engine.node_distance(node_a,
                                                                  node_b)
        return self._overlay_cache[key]

    def query_many(self, pairs) -> list:
        """Batched queries over live POI pairs.

        Base-only pairs go straight to the SE oracle's O(h) lookup.
        Overlay-touching pairs are grouped by their first endpoint so
        each distinct overlay source runs *one* multi-target SSAD on
        the engine (results land in the memo cache), instead of one
        search per pair.
        """
        self._require_built()
        pairs = [(int(a), int(b)) for a, b in pairs]
        # Collect the cache misses that need an SSAD, grouped by source.
        by_source: Dict[int, set] = {}
        for poi_a, poi_b in pairs:
            for poi_id in (poi_a, poi_b):
                if poi_id not in self._records or poi_id in self._deleted:
                    raise KeyError(f"unknown or deleted POI id: {poi_id}")
            if poi_a == poi_b:
                continue
            if poi_a not in self._overlay and poi_b not in self._overlay:
                continue
            key = (min(poi_a, poi_b), max(poi_a, poi_b))
            if key not in self._overlay_cache:
                by_source.setdefault(key[0], set()).add(key[1])
        for poi_a, poi_bs in by_source.items():
            node_a = self._node_of(poi_a)
            node_of_b = {self._node_of(b): b for b in poi_bs}
            result = self._engine.distances_from_node(
                node_a, targets=list(node_of_b))
            distances = result.distances
            for node_b, poi_b in node_of_b.items():
                self._overlay_cache[(poi_a, poi_b)] = distances.get(
                    node_b, math.inf)
        return [self.query(poi_a, poi_b) for poi_a, poi_b in pairs]

    def _node_of(self, poi_id: int) -> int:
        if poi_id in self._overlay:
            return self._overlay_nodes[poi_id]
        return self._engine.poi_node(self._base_index[poi_id])

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("oracle not built; call build() first")
