"""Dynamic POI updates on top of SE — the paper's future-work direction.

The conclusion singles out "how to efficiently update the distance
oracle when there is an update on some POIs" as an open problem.  This
module implements the *overlay + periodic rebuild* design, in the
incremental-maintenance spirit of the updates-under-queries literature
(Berkholz et al., FO+MOD queries under updates): keep a small delta
structure current instead of rebuilding, while queries stay on the
fast compiled tables.

* **base**: a built SE oracle frozen into a
  :class:`~repro.core.compiled.CompiledOracle` — possibly the
  memory-mapped tables of a binary store (:meth:`DynamicSEOracle.
  from_store`), which stay read-only and shared across processes;
* **insert**: the new POI joins a small overlay set.  Its *delta row*
  — exact engine-metric distances to every base POI, plus cache
  entries against the other overlay POIs — is computed by **one**
  multi-target SSAD on first touch and memoised, so an insert itself
  is O(1) graph surgery and queries never trigger a full recompile;
* **delete**: the POI is tombstoned in an alive mask; querying it
  raises ``KeyError``;
* once the overlay + tombstones exceed ``rebuild_factor`` times the
  active POI count, the SE oracle is rebuilt from scratch over the
  active set — amortising the rebuild cost over many updates.

Batched queries (:meth:`DynamicSEOracle.query_batch`) are the reason
for the delta design: rows whose endpoints both live in the base
resolve through ``CompiledOracle.query_batch`` (vectorized, bit-equal
to the scalar tree walk by the compiled oracle's contract); only rows
touching the overlay go through the delta rows / SSAD kernel — and
those answers are shared with the scalar path, so batch and scalar
stay bit-identical whatever the overlay and tombstone state.

External POI ids are stable across rebuilds.
"""

from __future__ import annotations

import math
import threading
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..geodesic.engine import GeodesicEngine
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POI, POISet
from .incremental import FlushAborted, FlushMemo, SliceGate
from .index import aligned_id_arrays
from .oracle import SEOracle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compiled import CompiledOracle
    from .store import StoredOracle

__all__ = ["DynamicSEOracle"]


class DynamicSEOracle:
    """SE oracle with insert/delete support via a compiled-aware overlay.

    Satisfies the :class:`~repro.core.index.DistanceIndex` protocol
    with ``supports_updates = True``: queries address POIs by *stable
    external id* (dense ``0..n-1`` at construction; inserts append new
    ids, deletes tombstone old ones, so the live id set may be sparse).

    Parameters
    ----------
    mesh:
        Terrain surface.
    pois:
        Initial POI set.
    epsilon:
        Error parameter of the underlying SE oracle.
    rebuild_factor:
        Rebuild once ``overlay + tombstones > factor * active``.
    points_per_edge:
        Steiner density of the metric graph.
    jobs:
        Build-fan-out worker processes for the underlying SE oracle
        (applies to the initial build *and* every amortised rebuild);
        see :class:`~repro.core.oracle.SEOracle`.
    """

    def __init__(
        self,
        mesh: TriangleMesh,
        pois: POISet,
        epsilon: float,
        rebuild_factor: float = 0.25,
        points_per_edge: int = 1,
        seed: int = 0,
        jobs: int = 1,
    ):
        if rebuild_factor <= 0:
            raise ValueError("rebuild_factor must be positive")
        self._mesh = mesh
        self.epsilon = epsilon
        self.rebuild_factor = rebuild_factor
        self._points_per_edge = points_per_edge
        self._seed = seed
        self.jobs = jobs
        self.rebuild_count = 0

        # External id -> current POI record; stable across rebuilds.
        self._records: Dict[int, POI] = {
            index: poi for index, poi in enumerate(pois)
        }
        self._next_id = len(self._records)
        self._deleted: set = set()
        self._overlay: set = set()

        self._engine: Optional[GeodesicEngine] = None
        self._oracle: Optional[SEOracle] = None
        self._compiled: Optional["CompiledOracle"] = None
        self._base_index: Dict[int, int] = {}
        self._overlay_nodes: Dict[int, int] = {}
        # The delta structure: a tombstone/alive mask and a base-slot
        # map over external ids, one dense distance row per overlay POI
        # (lazily computed, exact on the engine metric), and a pair
        # cache for overlay-overlay distances.  Scalar and batched
        # queries both read these tables, which is what keeps them
        # bit-identical.
        self._alive = np.zeros(0, dtype=bool)
        self._base_slot = np.zeros(0, dtype=np.int64)
        self._delta_rows: Dict[int, np.ndarray] = {}
        self._overlay_cache: Dict[Tuple[int, int], float] = {}
        # Cross-rebuild SSAD memo (see :mod:`~repro.core.incremental`):
        # every rebuild recaptures it; an incremental flush replays it.
        self._memo = FlushMemo()
        #: row reuse/recompute counts of the most recent rebuild
        self.last_flush_stats: Dict[str, int] = {}
        self._built = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def build(self) -> "DynamicSEOracle":
        self._rebuild()
        self._built = True
        return self

    @classmethod
    def from_store(
        cls,
        stored: "StoredOracle",
        engine: GeodesicEngine,
        rebuild_factor: float = 0.25,
        jobs: int = 1,
        strict: bool = True,
    ) -> "DynamicSEOracle":
        """A dynamic oracle whose base is an opened binary store.

        The store's memory-mapped compiled tables become the base —
        they stay read-only and shared with every other consumer of the
        store — and the delta overlay grows on top (copy-on-write:
        updates only ever allocate delta state).  ``engine`` must be
        the workload the store was packed for (checked via the
        fingerprint unless ``strict=False``); its POI set seeds the
        external ids ``0..n-1``.

        No build happens here: the oracle is ready immediately, and the
        first amortised rebuild (or an explicit :meth:`force_rebuild`)
        replaces the mapped base with a freshly built one.
        """
        dynamic = cls(
            engine.mesh,
            engine.pois,
            stored.epsilon,
            rebuild_factor=rebuild_factor,
            points_per_edge=engine.graph.points_per_edge,
            seed=stored.seed,
            jobs=jobs,
        )
        dynamic._engine = engine
        dynamic._oracle = stored.to_oracle(engine, strict=strict)
        dynamic._compiled = stored.compiled
        dynamic._base_index = {i: i for i in range(engine.num_pois)}
        dynamic._reset_delta()
        dynamic._built = True
        return dynamic

    def _active_ids(self) -> List[int]:
        return [
            i for i in sorted(self._records) if i not in self._deleted
        ]

    def _insert_blocked_radius(self) -> Dict[int, float]:
        """Per base POI: distance of its nearest *inserted* (overlay)
        POI — the memo's row-invalidation data.

        Read straight off the overlay delta rows (one multi-target
        SSAD per inserted POI, usually already memoised by queries):
        a cached SSAD row of source ``c`` with bound ``r`` is only
        replayable when every inserted POI is farther than ``r`` from
        ``c``, since the fresh row would otherwise contain it.
        """
        blocked: Dict[int, float] = {}
        for inserted in sorted(self._overlay):
            row = self._ensure_delta_row(inserted)
            for external, slot in self._base_index.items():
                distance = float(row[slot])
                nearest = blocked.get(external)
                if nearest is None or distance < nearest:
                    blocked[external] = distance
        return blocked

    def _build_fresh(self, reuse: bool, gate: Optional[SliceGate] = None
                     ) -> Tuple[List[int], GeodesicEngine, SEOracle, Any]:
        """Build a fresh base over the active set, without installing.

        The deterministic replay: construction runs the exact pipeline
        a from-scratch build would run, through the memo executor —
        with ``reuse`` the memo substitutes rows that are provably
        bit-equal to fresh ones, without it every row recomputes (and
        is captured all the same).  No ``self`` state is mutated, so a
        sliced background flush can interleave with readers and only
        :meth:`_install_fresh` needs the caller's lock.
        """
        active_ids = self._active_ids()
        if not active_ids:
            raise ValueError("cannot build over zero active POIs")
        blocked: Dict[int, float] = {}
        if reuse and self._overlay and self._memo.rows:
            blocked = self._insert_blocked_radius()
        cache = self._memo.begin(active_ids, blocked_radius=blocked,
                                 allow_reuse=reuse, gate=gate)
        base_pois = POISet([self._records[i] for i in active_ids])
        if len(base_pois) != len(active_ids):
            raise RuntimeError("active POIs collided after dedup")
        engine = GeodesicEngine(
            self._mesh, base_pois, points_per_edge=self._points_per_edge
        )
        oracle = SEOracle(
            engine, self.epsilon, seed=self._seed, jobs=self.jobs,
            ssad_cache=cache,
        ).build()
        return active_ids, engine, oracle, cache

    def _install_fresh(self, active_ids: List[int],
                       engine: GeodesicEngine, oracle: SEOracle,
                       cache: Any) -> None:
        """Adopt a freshly built base; the only state-mutating half."""
        if active_ids != self._active_ids():
            raise RuntimeError(
                "POI set changed while an incremental flush was in "
                "flight; rerun the flush"
            )
        self._engine = engine
        self._oracle = oracle
        self._compiled = None  # recompiled lazily, on the first batch
        self._base_index = {
            external: i for i, external in enumerate(active_ids)
        }
        self._overlay = set()
        self._overlay_nodes = {}
        # Tombstoned ids are physically gone now.
        for dead in self._deleted:
            self._records.pop(dead, None)
        self._deleted = set()
        self._reset_delta()
        self._memo.commit(cache)
        self.last_flush_stats = cache.stats()
        self.rebuild_count += 1

    def _rebuild(self, reuse: bool = False) -> None:
        self._install_fresh(*self._build_fresh(reuse))

    def _reset_delta(self) -> None:
        """Rebuild the alive mask / base-slot map; drop delta tables."""
        self._alive = np.zeros(self._next_id, dtype=bool)
        self._base_slot = np.full(self._next_id, -1, dtype=np.int64)
        for external in self._records:
            if external not in self._deleted:
                self._alive[external] = True
        for external, slot in self._base_index.items():
            self._base_slot[external] = slot
        self._delta_rows = {}
        self._overlay_cache = {}

    def force_rebuild(self) -> None:
        """Rebuild the base oracle from scratch — the reference path.

        Every SSAD recomputes on the fresh engine; the incremental
        :meth:`flush` must produce bit-identical tables to this, which
        is exactly what the rebuild-equivalence fuzz wall asserts.
        (The build still recaptures the memo, so a later incremental
        flush starts from this generation.)
        """
        self._require_built()
        self._rebuild(reuse=False)

    def flush(self, incremental: bool = True) -> Dict[str, int]:
        """Fold the overlay and tombstones into a fresh base.

        With ``incremental=True`` (default) the rebuild replays the
        cross-rebuild SSAD memo: only rows damaged by the churn — and
        the splice bookkeeping around them — are recomputed, making
        flush cost proportional to the damage rather than the terrain.
        The resulting tables are bit-identical to
        :meth:`force_rebuild` on the same live POI set.  With
        ``incremental=False`` this *is* a ``force_rebuild``.  Returns
        the reuse/recompute counters of the run.
        """
        self._require_built()
        self._rebuild(reuse=incremental)
        return dict(self.last_flush_stats)

    def flush_steps(self, incremental: bool = True,
                    slice_ssads: int = 8) -> Iterator[Dict[str, Any]]:
        """:meth:`flush`, delivered as bounded work slices.

        A generator: each ``next()`` performs at most ``slice_ssads``
        SSAD computations of the rebuild and then returns control, so
        a serving layer can interleave queries between slices (run
        each slice under its lock, answer readers between slices) and
        publish one generation at the end.  The final slice installs
        the fresh base — until then every query keeps answering from
        the pre-flush state.  The POI set must not change while the
        generator is being driven (the install re-checks and raises).

        The rebuild itself runs on a private worker thread that is
        parked at a gate between slices; abandoning the generator
        aborts the worker cleanly.
        """
        self._require_built()
        if slice_ssads < 1:
            raise ValueError("slice_ssads must be at least 1")
        gate = SliceGate(slice_ssads)
        outcome: Dict[str, Any] = {}

        def worker() -> None:
            try:
                gate.pause(0)  # wait for the first slice grant
                outcome["result"] = self._build_fresh(
                    reuse=incremental, gate=gate)
            except FlushAborted:
                pass
            except BaseException as error:  # propagated to the driver
                outcome["error"] = error
            finally:
                gate.finish()

        thread = threading.Thread(
            target=worker, name="se-flush-builder", daemon=True)
        thread.start()
        slice_number = 0
        try:
            while not gate.run_slice():
                if "error" in outcome:
                    break
                slice_number += 1
                yield {"slice": slice_number, "done": False}
            thread.join()
            if "error" in outcome:
                raise outcome["error"]
            self._install_fresh(*outcome["result"])
            yield {
                "slice": slice_number + 1,
                "done": True,
                **self.last_flush_stats,
            }
        finally:
            gate.abort()
            thread.join(timeout=60.0)

    def adopt_store(self, stored: "StoredOracle") -> None:
        """Swap the base tables for a freshly packed store's (mmap).

        Used after ``flush``: the rebuilt oracle was packed to disk and
        re-opened, and serving should run off the shared read-only maps
        rather than the private in-memory tables.  The store must have
        been packed from this oracle's current base, so answers are
        bit-identical by the store's round-trip contract — checked via
        the workload fingerprint *and* the build identity (epsilon /
        strategy / method / seed), since the fingerprint alone cannot
        tell apart two different oracles over the same workload.
        """
        self._require_built()
        if self.has_pending_updates:
            raise RuntimeError(
                "cannot adopt a store while updates are pending; "
                "call force_rebuild() first"
            )
        stored.check_fingerprint(self._engine)
        base = self._oracle
        mismatched = [
            name
            for name, ours, theirs in (
                ("epsilon", base.epsilon, stored.epsilon),
                ("strategy", base.strategy, stored.strategy),
                ("method", base.method, stored.method),
                ("seed", base.seed, stored.seed),
            )
            if ours != theirs
        ]
        if mismatched:
            raise ValueError(
                "store was packed from a different oracle over this "
                f"workload (mismatched: {', '.join(mismatched)})"
            )
        self._compiled = stored.compiled

    @property
    def num_active(self) -> int:
        return len(self._records) - len(self._deleted)

    @property
    def num_pois(self) -> int:
        """Live POI count (``DistanceIndex`` protocol).

        Note the live *ids* may be sparse after deletes; use
        :meth:`live_ids` to enumerate them.
        """
        return self.num_active

    @property
    def overlay_size(self) -> int:
        return len(self._overlay)

    @property
    def has_pending_updates(self) -> bool:
        """True when overlay inserts or tombstones await a rebuild."""
        return bool(self._overlay) or bool(self._deleted)

    @property
    def supports_updates(self) -> bool:
        return True

    @property
    def is_compiled(self) -> bool:
        """True once the base tables are compiled (first batch, or a
        store-backed base)."""
        return self._compiled is not None

    @property
    def oracle(self) -> SEOracle:
        if self._oracle is None:
            raise RuntimeError("oracle not built; call build() first")
        return self._oracle

    @property
    def engine(self) -> GeodesicEngine:
        if self._engine is None:
            raise RuntimeError("oracle not built; call build() first")
        return self._engine

    def live_ids(self) -> np.ndarray:
        """The live external ids, ascending (intp array)."""
        self._require_built()
        return np.flatnonzero(self._alive).astype(np.intp)

    def compiled_base(self) -> "CompiledOracle":
        """The base oracle's flat tables (compiled lazily, cached).

        Invalidated by every rebuild; a store-backed base keeps serving
        the memory-mapped tables instead of recompiling.
        """
        self._require_built()
        if self._compiled is None:
            self._compiled = self._oracle.compiled()
        return self._compiled

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, x: float, y: float) -> int:
        """Insert the surface POI above planar ``(x, y)``; returns its id."""
        self._require_built()
        face_id = self._mesh.locate_face(x, y)
        if face_id < 0:
            raise ValueError(f"({x}, {y}) is outside the terrain")
        point = self._mesh.project_onto_surface(x, y)
        external = self._next_id
        self._next_id += 1
        self._records[external] = POI(
            index=external,
            position=tuple(float(c) for c in point),
            face_id=face_id,
        )
        self._overlay.add(external)
        node = self._engine.graph.attach_site(
            tuple(float(c) for c in point), face_id
        )
        self._overlay_nodes[external] = node
        self._grow_delta()
        self._alive[external] = True
        self._base_slot[external] = -1
        self._maybe_rebuild()
        return external

    def _grow_delta(self) -> None:
        """Capacity-doubling growth of the alive/base-slot arrays.

        Keeps an insert amortized O(1) bookkeeping instead of an O(n)
        reallocation per call; entries beyond ``_next_id`` stay
        ``False`` / ``-1`` and are unreachable (id validation bounds
        on ``_next_id``).
        """
        capacity = self._alive.shape[0]
        if self._next_id <= capacity:
            return
        grown = max(2 * capacity, self._next_id, 16)
        alive = np.zeros(grown, dtype=bool)
        alive[:capacity] = self._alive
        slots = np.full(grown, -1, dtype=np.int64)
        slots[:capacity] = self._base_slot
        self._alive = alive
        self._base_slot = slots

    def delete(self, poi_id: int) -> None:
        """Delete a POI; subsequent queries on it raise ``KeyError``."""
        self._require_built()
        if poi_id not in self._records or poi_id in self._deleted:
            raise KeyError(f"unknown POI id: {poi_id}")
        self._deleted.add(poi_id)
        self._alive[poi_id] = False
        self._overlay.discard(poi_id)
        self._overlay_nodes.pop(poi_id, None)
        self._delta_rows.pop(poi_id, None)
        self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        pending = len(self._overlay) + len(self._deleted)
        if pending > self.rebuild_factor * max(self.num_active, 1):
            # Amortised rebuilds ride the same incremental machinery as
            # an explicit flush: bit-identical to a from-scratch build,
            # but only churn-damaged SSAD rows recompute.
            self._rebuild(reuse=True)

    # ------------------------------------------------------------------
    # the delta tables
    # ------------------------------------------------------------------
    def _ensure_delta_row(self, poi_id: int) -> np.ndarray:
        """The overlay POI's exact distance row over base slots.

        Computed by one multi-target SSAD from the overlay node
        covering every base POI node, then memoised.  Both the scalar
        and the batched query path read this same row, which is what
        makes them bit-identical — and since the search always runs
        *from* the overlay node, the value of a pair never depends on
        query history or argument order.
        """
        row = self._delta_rows.get(poi_id)
        if row is not None:
            return row
        base_nodes = [
            self._engine.poi_node(slot)
            for slot in range(len(self._base_index))
        ]
        result = self._engine.distances_from_node(
            self._overlay_nodes[poi_id], targets=base_nodes
        )
        distances = result.distances
        row = np.array(
            [distances.get(node, math.inf) for node in base_nodes],
            dtype=np.float64,
        )
        self._delta_rows[poi_id] = row
        return row

    def _overlay_pair_distance(self, poi_a: int, poi_b: int) -> float:
        """Exact distance for a pair with >= 1 overlay endpoint.

        Overlay-overlay pairs are canonical — always searched from the
        lower external id and memoised under the sorted key — so the
        stored float is a pure function of the pair, never of which
        query (or which batch grouping) happened to run first.
        """
        if poi_a in self._overlay and poi_b in self._overlay:
            key = (min(poi_a, poi_b), max(poi_a, poi_b))
            if key not in self._overlay_cache:
                target_node = self._overlay_nodes[key[1]]
                result = self._engine.distances_from_node(
                    self._overlay_nodes[key[0]], targets=[target_node]
                )
                self._overlay_cache[key] = result.distances.get(
                    target_node, math.inf
                )
            return self._overlay_cache[key]
        owner = poi_a if poi_a in self._overlay else poi_b
        other = poi_b if owner == poi_a else poi_a
        row = self._ensure_delta_row(owner)
        return float(row[self._base_slot[other]])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _check_live(self, poi_id: int) -> None:
        if poi_id not in self._records or poi_id in self._deleted:
            raise KeyError(f"unknown or deleted POI id: {poi_id}")

    def query(self, poi_a: int, poi_b: int) -> float:
        """ε-approximate geodesic distance between two live POIs."""
        self._require_built()
        poi_a, poi_b = int(poi_a), int(poi_b)
        self._check_live(poi_a)
        self._check_live(poi_b)
        if poi_a == poi_b:
            return 0.0
        if poi_a not in self._overlay and poi_b not in self._overlay:
            return self._oracle.query(
                self._base_index[poi_a], self._base_index[poi_b]
            )
        # At least one endpoint is fresh: answer from the delta tables.
        return self._overlay_pair_distance(poi_a, poi_b)

    def query_batch(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        """Batched :meth:`query` over aligned external-id arrays.

        Base-base rows resolve through the compiled base tables in one
        vectorized pass (bit-identical to the scalar tree walk by the
        compiled oracle's contract); rows touching the overlay resolve
        through the delta rows — the same memoised values the scalar
        path reads — so the whole result is bit-identical to a scalar
        loop, with no full recompile ever triggered by an update.
        """
        self._require_built()
        source_ids, target_ids = aligned_id_arrays(sources, targets)
        count = source_ids.shape[0]
        if count == 0:
            return np.empty(0, dtype=np.float64)
        for ids in (source_ids, target_ids):
            bad = (ids < 0) | (ids >= self._next_id)
            if bad.any() or not self._alive[ids].all():
                for poi_id in ids.tolist():
                    if (
                        poi_id < 0
                        or poi_id >= self._next_id
                        or not self._alive[poi_id]
                    ):
                        raise KeyError(
                            f"unknown or deleted POI id: {poi_id}"
                        )
        result = np.zeros(count, dtype=np.float64)
        slot_s = self._base_slot[source_ids]
        slot_t = self._base_slot[target_ids]
        same = source_ids == target_ids
        base = (slot_s >= 0) & (slot_t >= 0) & ~same
        if base.any():
            result[base] = self.compiled_base().query_batch(
                slot_s[base], slot_t[base]
            )
        overlay_rows = np.flatnonzero(~base & ~same)
        if overlay_rows.size:
            # Mixed rows (one overlay, one base endpoint) gather from
            # the owner's delta row — one vectorized pass per distinct
            # overlay POI, the same array the scalar path reads.
            src_is_overlay = slot_s[overlay_rows] < 0
            tgt_is_overlay = slot_t[overlay_rows] < 0
            both = src_is_overlay & tgt_is_overlay
            mixed = overlay_rows[~both]
            if mixed.size:
                owners = np.where(
                    src_is_overlay[~both],
                    source_ids[mixed],
                    target_ids[mixed],
                )
                other_slots = np.where(
                    src_is_overlay[~both], slot_t[mixed], slot_s[mixed]
                )
                for owner in np.unique(owners).tolist():
                    row = self._ensure_delta_row(int(owner))
                    chosen = owners == owner
                    result[mixed[chosen]] = row[other_slots[chosen]]
            # Overlay-overlay rows resolve through the pair cache.
            for position in overlay_rows[both].tolist():
                result[position] = self._overlay_pair_distance(
                    int(source_ids[position]), int(target_ids[position])
                )
        return result

    def query_matrix(
        self, pois: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """All-pairs matrix over external ids (default: the live ids).

        ``result[i, j]`` is the distance from ``ids[i]`` to ``ids[j]``
        where ``ids`` is the (possibly sparse) id list — callers index
        the matrix *positionally*, not by external id.
        """
        self._require_built()
        ids = (
            self.live_ids()
            if pois is None
            else np.asarray(pois, dtype=np.intp)
        )
        count = ids.shape[0]
        grid_s = np.repeat(ids, count)
        grid_t = np.tile(ids, count)
        return self.query_batch(grid_s, grid_t).reshape(count, count)

    def _node_of(self, poi_id: int) -> int:
        """Metric-graph node hosting a live external id (test hook)."""
        if poi_id in self._overlay:
            return self._overlay_nodes[poi_id]
        return self._engine.poi_node(int(self._base_slot[poi_id]))

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("oracle not built; call build() first")
