"""Build executors — the fan-out engine of the staged oracle pipeline.

``SEOracle.build()`` is organised as an explicit three-stage pipeline:

1. **plan** — partition-tree construction and compression.  Inherently
   sequential: each cover pass selects its next centre from the points
   the previous passes left uncovered, so this stage always runs on
   the live engine.
2. **fan-out** — the SSAD-heavy distance work: enhanced-edge sweeps
   (one radius-bounded SSAD per tree node) for the efficient method,
   or per-pair centre distances for the naive method.  These
   computations are independent of each other — exactly the
   embarrassingly parallel bulk the paper amortises across queries —
   and are expressed as *batches* handed to a :class:`BuildExecutor`.
3. **reduce** — node-pair generation over the precomputed distances
   and perfect-hash indexing, reassembled in a deterministic order.

This module provides the executors behind stage 2:

* :class:`SerialExecutor` — the zero-dependency default; batches run
  inline on the live engine, byte-for-byte the pre-pipeline behaviour.
* :class:`MultiprocessExecutor` — a ``ProcessPoolExecutor`` whose
  workers each rehydrate one picklable frozen-CSR engine snapshot
  (shipped once through the pool initializer, fork-friendly on
  POSIX), then serve chunked batches.  Chunks are reduced strictly in
  submission order and worker effort counters are folded back into the
  live engine, so a parallel build is **bit-identical** to a serial
  one — same node pairs, same float distances, same stats.

Pick an executor with :func:`make_executor`, or pass ``jobs=N``
anywhere a build entry point accepts it (``SEOracle``,
``DynamicSEOracle``, ``A2AOracle``, ``python -m repro build --jobs``).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..geodesic.engine import GeodesicEngine

__all__ = [
    "BuildExecutor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "make_executor",
    "map_jobs",
]

#: One SSAD work unit: ``(poi index, radius)`` where ``radius=None``
#: means cover-all mode (SSAD version 1).
SSADTask = Tuple[int, Optional[float]]

#: Counter deltas a worker reports per chunk:
#: ``(ssad_calls, settled_nodes, heap_pushes)``.
CounterDelta = Tuple[int, int, int]


class BuildExecutor:
    """Abstract executor for the build pipeline's fan-out stage.

    Lifecycle: :meth:`bind` to an engine, serve any number of batch
    maps, :meth:`close`.  ``SEOracle.build`` closes executors it
    created itself (via ``jobs=``) and leaves caller-supplied ones
    open, so one pool can be amortised over several builds on the same
    engine.
    """

    #: Worker parallelism this executor provides.
    jobs: int = 1
    #: Short name recorded in build stats and serialized metadata.
    name: str = "abstract"

    def bind(self, engine: GeodesicEngine) -> None:
        """Attach to the engine whose workload the batches reference."""
        raise NotImplementedError

    def map_ssad(self, tasks: Sequence[SSADTask]) -> List[Dict[int, float]]:
        """Run one SSAD per task; results aligned with ``tasks`` order."""
        raise NotImplementedError

    def map_pair_distances(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """One early-exit P2P distance per POI pair, in ``pairs`` order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources; binding again after close is allowed."""

    def __enter__(self) -> "BuildExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(BuildExecutor):
    """Inline executor: batches run on the live engine, in order.

    This is the default and the semantic reference — the multiprocess
    executor's output must be bit-identical to it.
    """

    jobs = 1
    name = "serial"

    def __init__(self) -> None:
        self._engine: Optional[GeodesicEngine] = None

    def bind(self, engine: GeodesicEngine) -> None:
        self._engine = engine

    def map_ssad(self, tasks: Sequence[SSADTask]) -> List[Dict[int, float]]:
        if self._engine is None:
            raise RuntimeError("executor is not bound to an engine")
        return self._engine.distances_many(
            [poi for poi, _ in tasks], radius=[radius for _, radius in tasks]
        )

    def map_pair_distances(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        if self._engine is None:
            raise RuntimeError("executor is not bound to an engine")
        return [self._engine.distance(a, b) for a, b in pairs]


# ----------------------------------------------------------------------
# multiprocess executor
# ----------------------------------------------------------------------

# Worker-global rehydrated engine, installed once per worker by the
# pool initializer so each task pickles only its chunk, never the CSR.
_WORKER_ENGINE: Optional[GeodesicEngine] = None


def _init_worker(snapshot) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = GeodesicEngine.from_snapshot(snapshot)


def _run_ssad_chunk(
    tasks: Sequence[SSADTask],
) -> Tuple[List[Dict[int, float]], CounterDelta]:
    engine = _WORKER_ENGINE
    engine.reset_counters()
    results = engine.distances_many(
        [poi for poi, _ in tasks], radius=[radius for _, radius in tasks]
    )
    return results, (engine.ssad_calls, engine.settled_nodes, engine.heap_pushes)


def _run_pair_chunk(
    pairs: Sequence[Tuple[int, int]],
) -> Tuple[List[float], CounterDelta]:
    engine = _WORKER_ENGINE
    engine.reset_counters()
    distances = [engine.distance(a, b) for a, b in pairs]
    return distances, (engine.ssad_calls, engine.settled_nodes, engine.heap_pushes)


def _default_context():
    """Fork on Linux (snapshot ships via copy-on-write pages); the
    platform default elsewhere.

    macOS lists fork as available but defaults to spawn for a reason:
    forking after NumPy/BLAS and the Objective-C runtime have started
    threads is unsafe there.  Honour that default instead of forcing
    fork wherever it merely exists.
    """
    if sys.platform.startswith("linux"):
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
    return None


class MultiprocessExecutor(BuildExecutor):
    """``ProcessPoolExecutor``-backed fan-out over engine snapshots.

    Parameters
    ----------
    jobs:
        Worker process count (>= 2; use :func:`make_executor` for the
        general ``jobs`` convention).
    chunks_per_job:
        Target number of chunks per worker per batch.  Larger values
        smooth load imbalance between SSADs of very different radii at
        the cost of more pickling round-trips.
    mp_context:
        A ``multiprocessing`` context, or ``None`` for fork-if-available.

    Determinism
    -----------
    Chunk boundaries depend only on batch length and ``jobs``; chunk
    results are concatenated strictly in submission order; worker
    counter deltas are integers folded in any order.  Parallel output
    is therefore bit-identical to :class:`SerialExecutor` output.
    """

    name = "multiprocess"

    def __init__(
        self,
        jobs: int,
        chunks_per_job: int = 4,
        mp_context=None,
    ) -> None:
        if jobs < 2:
            raise ValueError("MultiprocessExecutor needs jobs >= 2")
        if chunks_per_job < 1:
            raise ValueError("chunks_per_job must be positive")
        self.jobs = int(jobs)
        self.chunks_per_job = int(chunks_per_job)
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._engine: Optional[GeodesicEngine] = None

    def bind(self, engine: GeodesicEngine) -> None:
        if self._pool is not None:
            if engine is self._engine:
                return
            self.close()  # new workload -> new snapshot -> new pool
        context = self._mp_context or _default_context()
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=context,
            initializer=_init_worker,
            initargs=(engine.snapshot(),),
        )
        self._engine = engine

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._engine = None

    # ------------------------------------------------------------------
    # batch maps
    # ------------------------------------------------------------------
    def _chunk(self, items: list) -> List[list]:
        per_chunk = max(1, -(-len(items) // (self.jobs * self.chunks_per_job)))
        return [
            items[start : start + per_chunk]
            for start in range(0, len(items), per_chunk)
        ]

    def _map_chunked(self, worker_fn, items: list) -> list:
        if self._pool is None:
            raise RuntimeError("executor is not bound to an engine")
        futures = [self._pool.submit(worker_fn, chunk) for chunk in self._chunk(items)]
        out: list = []
        for future in futures:  # submission order = deterministic reduce
            results, (calls, settled, pushes) = future.result()
            out.extend(results)
            self._engine.account_external(calls, settled, pushes)
        return out

    def map_ssad(self, tasks: Sequence[SSADTask]) -> List[Dict[int, float]]:
        return self._map_chunked(_run_ssad_chunk, list(tasks))

    def map_pair_distances(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        return self._map_chunked(_run_pair_chunk, list(pairs))


def map_jobs(worker_fn, items: Sequence, jobs: Optional[int] = 1) -> list:
    """Run ``worker_fn`` over ``items`` with the ``--jobs N`` convention.

    The coarse-grained sibling of :class:`MultiprocessExecutor`: each
    item is one self-contained picklable work unit (e.g. a whole tile
    build) rather than an SSAD chunk against a shared engine snapshot,
    so no pool initializer / snapshot shipping is involved.  Results
    are collected strictly in submission order, which keeps parallel
    runs output-identical to serial ones; ``jobs`` resolves exactly as
    in :func:`make_executor` (``<= 1`` serial, negative one per CPU).
    """
    items = list(items)
    if jobs is None:
        jobs = 1
    jobs = int(jobs)
    if jobs < 0:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, len(items)) if items else 1
    if jobs <= 1:
        return [worker_fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs,
                             mp_context=_default_context()) as pool:
        futures = [pool.submit(worker_fn, item) for item in items]
        return [future.result() for future in futures]


def make_executor(jobs: Optional[int] = 1) -> BuildExecutor:
    """The ``--jobs N`` convention, resolved to an executor.

    ``None``, ``0`` and ``1`` mean serial; ``N >= 2`` means ``N``
    worker processes; any negative value means one worker per CPU.
    """
    if jobs is None:
        jobs = 1
    jobs = int(jobs)
    if jobs < 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1:
        return SerialExecutor()
    return MultiprocessExecutor(jobs)
