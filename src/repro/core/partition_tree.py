"""The partition tree — SE oracle component 1 (Section 3.2).

A partition tree indexes the POI set ``P`` by a hierarchy of geodesic
disks: Layer ``i`` consists of nodes whose disks have radius
``r0 / 2**i`` and whose centres are at geodesic distance at least
``r0 / 2**i`` from each other (*Separation*), jointly covering all of
``P`` (*Covering*); every descendant's centre stays within twice a
node's radius (*Distance*).

The top-down construction follows the paper's Steps 1-2 exactly,
including the two point-selection strategies of Implementation
Detail 1 (*random* and *greedy*, the latter backed by the grid /
B+-tree / max-heap combination in
:class:`~repro.datastructures.grid_index.GridDensityIndex`) and the
two SSAD stopping rules of Implementation Detail 2 (provided by
:class:`~repro.geodesic.engine.GeodesicEngine`).
"""

from __future__ import annotations

import hashlib
import math
import random
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Literal, Optional

from ..datastructures.grid_index import GridDensityIndex
from ..geodesic.engine import GeodesicEngine

__all__ = ["PartitionTreeNode", "PartitionTree", "build_partition_tree"]

SelectionStrategy = Literal["random", "greedy"]

#: SSAD hook: ``(center, radius) -> {poi: distance}``.  Defaults to the
#: engine's own :meth:`~repro.geodesic.engine.GeodesicEngine.
#: distances_from_poi`; the incremental flush substitutes a memoised
#: wrapper so unchanged rows are replayed instead of recomputed.
SSADHook = Callable[[int, Optional[float]], Dict[int, float]]

# Radius-boundary comparisons happen between two floating-point geodesic
# distances computed along different paths; a tiny relative slack keeps
# borderline points from being dropped by both sides of a boundary.
_EPS = 1e-9


@dataclass
class PartitionTreeNode:
    """A node of the (original) partition tree.

    Attributes
    ----------
    node_id:
        Dense id within the tree (index into ``tree.nodes``).
    center:
        POI index of the node centre ``c_O``.
    layer:
        Layer number (0 = root).
    radius:
        ``r_O = r0 / 2**layer``.
    parent:
        Parent node id, or ``None`` for the root.
    children:
        Child node ids (next layer).
    """

    node_id: int
    center: int
    layer: int
    radius: float
    parent: Optional[int]
    children: List[int] = field(default_factory=list)


class PartitionTree:
    """The original (uncompressed) partition tree ``T_org``.

    Nodes are stored in a flat list; layers are lists of node ids.  The
    tree keeps, per POI, the id of its layer-``h`` (leaf) node and the
    shallowest layer at which the POI first became a centre — the
    "chain top", used by the enhanced-edge lookup.
    """

    def __init__(self, nodes: List[PartitionTreeNode],
                 layers: List[List[int]], root_radius: float):
        self.nodes = nodes
        self.layers = layers
        self.root_radius = root_radius

        self.leaf_of_center: Dict[int, int] = {}
        self.first_layer_of_center: Dict[int, int] = {}
        for node in nodes:
            current = self.first_layer_of_center.get(node.center)
            if current is None or node.layer < current:
                self.first_layer_of_center[node.center] = node.layer
            if node.layer == self.height:
                self.leaf_of_center[node.center] = node.node_id

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """h: the deepest layer number."""
        return len(self.layers) - 1

    @property
    def root(self) -> PartitionTreeNode:
        return self.nodes[self.layers[0][0]]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> PartitionTreeNode:
        return self.nodes[node_id]

    def layer_radius(self, layer: int) -> float:
        """``r_i = r0 / 2**i``."""
        return self.root_radius / (1 << layer)

    def ancestor_at_layer(self, node_id: int, layer: int) -> int:
        """The ancestor of ``node_id`` living in ``layer`` (<= its own)."""
        node = self.nodes[node_id]
        while node.layer > layer:
            if node.parent is None:
                raise ValueError("layer above the root")
            node = self.nodes[node.parent]
        if node.layer != layer:
            raise ValueError(f"node {node_id} has no ancestor at layer {layer}")
        return node.node_id

    # ------------------------------------------------------------------
    # invariant checks (used by tests)
    # ------------------------------------------------------------------
    def check_structure(self) -> None:
        """Assert parent/child and layer bookkeeping consistency."""
        for node in self.nodes:
            if node.parent is None:
                assert node.layer == 0, "non-root without parent"
            else:
                parent = self.nodes[node.parent]
                assert parent.layer == node.layer - 1
                assert node.node_id in parent.children
            for child_id in node.children:
                assert self.nodes[child_id].parent == node.node_id
        for layer_number, layer in enumerate(self.layers):
            for node_id in layer:
                assert self.nodes[node_id].layer == layer_number
        assert len(self.layers[0]) == 1, "root layer must be singleton"
        assert len(self.layers[-1]) == len(self.leaf_of_center)


def _position_priorities(engine: GeodesicEngine, seed: int) -> List[int]:
    """Seeded per-POI selection priorities, keyed by *surface position*.

    The "random" strategy used to draw its picks from a ``Random``
    stream, which made every selection depend on ``n`` and on draw
    order — so any insert or delete reshuffled the whole tree and an
    incremental flush could reuse nothing.  Instead each POI gets a
    uniform 64-bit priority ``blake2b(seed ‖ position)``: priorities
    are i.i.d. uniform over the POI set (so argmin/ordered selection
    is distributionally the same as uniform random picks), but a POI
    keeps its priority across rebuilds because its identity is its
    position — churn leaves every surviving pick decision unchanged.
    """
    return [
        int.from_bytes(
            hashlib.blake2b(
                struct.pack("<q3d", seed, *poi.position),
                digest_size=8,
            ).digest(),
            "big",
        )
        for poi in engine.pois
    ]


def build_partition_tree(engine: GeodesicEngine,
                         strategy: SelectionStrategy = "random",
                         seed: int = 0,
                         max_layers: int = 64,
                         ssad: Optional[SSADHook] = None) -> PartitionTree:
    """Build the partition tree over ``engine``'s POI set (Section 3.2).

    Parameters
    ----------
    engine:
        Geodesic engine whose POI set is to be indexed.
    strategy:
        Point-selection strategy for non-centre picks: ``"random"`` or
        ``"greedy"`` (densest grid cell first).
    seed:
        Randomness seed (point selection).
    max_layers:
        Safety bound on tree depth; Lemma 2 bounds the real height by
        ``log2(d_max / d_min) + 1``, < 60 for any physical terrain.
    ssad:
        Optional SSAD provider replacing ``engine.distances_from_poi``
        — the incremental-flush memo hook.  Must return exactly what
        the engine would.
    """
    n = engine.num_pois
    if n == 0:
        raise ValueError("cannot build a partition tree over zero POIs")
    rng = random.Random(seed)
    if ssad is None:
        ssad = engine.distances_from_poi

    if n == 1:
        root = PartitionTreeNode(node_id=0, center=0, layer=0, radius=0.0,
                                 parent=None)
        return PartitionTree([root], [[0]], root_radius=0.0)

    priorities = _position_priorities(engine, seed)

    # ------------------------------------------------------------------
    # Step 1: root node construction.
    # ------------------------------------------------------------------
    root_center = min(range(n), key=lambda poi: (priorities[poi], poi))
    distances = ssad(root_center, None)  # SSAD version 1
    if len(distances) < n:
        raise ValueError("POI set is not geodesically connected")
    r0 = max(distances.values())
    if r0 <= 0.0:
        raise ValueError("all POIs are co-located; deduplicate first")

    nodes: List[PartitionTreeNode] = [
        PartitionTreeNode(node_id=0, center=root_center, layer=0,
                          radius=r0, parent=None)
    ]
    layers: List[List[int]] = [[0]]

    # ------------------------------------------------------------------
    # Step 2: non-root layers.
    # ------------------------------------------------------------------
    xy = engine.pois.xy()
    for layer_number in range(1, max_layers + 1):
        radius = r0 / (1 << layer_number)
        previous_layer = layers[-1]
        # Node id of the previous-layer node per centre (for parenting).
        previous_by_center = {nodes[i].center: i for i in previous_layer}

        uncovered = set(range(n))
        grid: Optional[GridDensityIndex] = None
        if strategy == "greedy":
            grid = GridDensityIndex(
                {i: (float(xy[i, 0]), float(xy[i, 1])) for i in range(n)},
                cell_width=max(radius, _EPS), rng=rng,
            )
        # Centres of the previous layer are selected first (Step 2(b)(i)),
        # in priority order (the queue is popped from its tail).
        center_queue = [nodes[i].center for i in previous_layer]
        center_queue.sort(key=lambda poi: (priorities[poi], poi),
                          reverse=True)
        new_layer: List[int] = []

        while uncovered:
            center = _select_point(center_queue, uncovered, grid,
                                   priorities)
            # Step 2(b)(ii): SSAD bounded by 2 * radius — enough both to
            # cover D(center, radius) and to reach the nearest previous-
            # layer centre (within r_{i-1} = 2 * radius by Covering).
            reached = ssad(center, 2.0 * radius * (1.0 + _EPS))
            covered = [poi for poi in uncovered
                       if reached.get(poi, math.inf) <= radius * (1.0 + _EPS)]
            uncovered.difference_update(covered)
            if grid is not None:
                grid.remove_all(covered)

            parent_id = _nearest_parent(previous_by_center, reached)
            node_id = len(nodes)
            node = PartitionTreeNode(node_id=node_id, center=center,
                                     layer=layer_number, radius=radius,
                                     parent=parent_id)
            nodes.append(node)
            nodes[parent_id].children.append(node_id)
            new_layer.append(node_id)

        layers.append(new_layer)
        if len(new_layer) == n:
            return PartitionTree(nodes, layers, r0)

    raise RuntimeError(
        f"partition tree did not terminate within {max_layers} layers; "
        "check for (near-)duplicate POIs"
    )


def _select_point(center_queue: List[int], uncovered: set,
                  grid: Optional[GridDensityIndex],
                  priorities: List[int]) -> int:
    """Step 2(b)(i): previous-layer centres first, then the strategy."""
    while center_queue:
        candidate = center_queue.pop()
        if candidate in uncovered:
            return candidate
    if grid is not None:
        return grid.pick_from_densest()
    # Random strategy: the minimum-priority uncovered point — the
    # churn-stable equivalent of a uniform draw (every POI's priority
    # is an i.i.d. uniform hash of its position, so the argmin is a
    # uniformly distributed choice).
    return min(uncovered, key=lambda poi: (priorities[poi], poi))


def _nearest_parent(previous_by_center: Dict[int, int],
                    reached: Dict[int, float]) -> int:
    """Step 2(b)(iii): previous-layer node with minimum centre distance."""
    best_id = -1
    best_distance = math.inf
    for center, node_id in previous_by_center.items():
        distance = reached.get(center)
        if distance is not None and distance < best_distance:
            best_distance = distance
            best_id = node_id
    if best_id < 0:
        raise RuntimeError(
            "no previous-layer centre within the search radius; the "
            "Covering property is violated (inconsistent geodesic metric?)"
        )
    return best_id
