"""The SE (Space-Efficient) distance oracle — the paper's contribution.

``SEOracle`` ties the pieces together:

1. build the partition tree over the POI set (Section 3.2),
2. compress it (Section 3.2),
3. generate the well-separated node pair set (Section 3.3) with centre
   distances supplied either by **enhanced edges** (efficient method,
   Section 3.5) or by per-pair SSAD (naive method, the SE(Naive)
   baseline),
4. index the pair set in a perfect hash.

Queries (Section 3.4) locate the unique node pair containing
``(s, t)`` and return its stored distance, in O(h) with the efficient
algorithm or O(h²) with the naive scan.  Theorem 1 guarantees the
result is an ε-approximation of the geodesic distance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Literal, Optional, Tuple

from ..datastructures.perfect_hash import PerfectHashMap, pack_pair
from ..geodesic.engine import GeodesicEngine
from .compressed_tree import CompressedPartitionTree, compress_tree
from .node_pairs import (
    EnhancedEdgeIndex,
    NodePairSet,
    build_enhanced_edges,
    generate_node_pairs,
)
from .partition_tree import PartitionTree, build_partition_tree

__all__ = ["SEOracle", "BuildStats"]

BuildMethod = Literal["efficient", "naive"]
Strategy = Literal["random", "greedy"]


@dataclass
class BuildStats:
    """Construction-time breakdown and structure counts."""

    tree_seconds: float = 0.0
    enhanced_seconds: float = 0.0
    pairs_seconds: float = 0.0
    hash_seconds: float = 0.0
    total_seconds: float = 0.0
    height: int = 0
    root_radius: float = 0.0
    original_nodes: int = 0
    compressed_nodes: int = 0
    enhanced_edges: int = 0
    pairs_considered: int = 0
    pairs_stored: int = 0
    ssad_calls: int = 0
    settled_nodes: int = 0
    heap_pushes: int = 0
    enhanced_lookup_fallbacks: int = 0


class SEOracle:
    """The Space-Efficient ε-approximate geodesic distance oracle.

    Parameters
    ----------
    engine:
        Geodesic engine holding the terrain and the POI set ``P``.
    epsilon:
        Error parameter ε > 0; queries return distances within
        ``(1 ± ε)`` of the geodesic distance (w.r.t. the engine metric).
    strategy:
        Point-selection strategy of the tree build (``"random"`` /
        ``"greedy"``), the paper's SE(Random) / SE(Greedy) variants.
    method:
        ``"efficient"`` (enhanced edges, Section 3.5) or ``"naive"``
        (per-pair SSAD — the SE(Naive) baseline).
    seed:
        Randomness seed (tree build + hashing).

    Example
    -------
    >>> from repro.terrain import make_terrain, sample_uniform
    >>> from repro.geodesic import GeodesicEngine
    >>> mesh = make_terrain(grid_exponent=3, seed=1)
    >>> pois = sample_uniform(mesh, 12, seed=1)
    >>> oracle = SEOracle(GeodesicEngine(mesh, pois), epsilon=0.25)
    >>> oracle.build()
    >>> d = oracle.query(0, 5)
    """

    def __init__(self, engine: GeodesicEngine, epsilon: float,
                 strategy: Strategy = "random",
                 method: BuildMethod = "efficient",
                 seed: int = 0):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if method not in ("efficient", "naive"):
            raise ValueError(f"unknown build method: {method}")
        self._engine = engine
        self.epsilon = epsilon
        self.strategy = strategy
        self.method = method
        self.seed = seed
        self.stats = BuildStats()
        self._tree: Optional[CompressedPartitionTree] = None
        self._original_tree: Optional[PartitionTree] = None
        self._pair_set: Optional[NodePairSet] = None
        self._pair_hash: Optional[PerfectHashMap] = None
        self._enhanced: Optional[EnhancedEdgeIndex] = None
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "SEOracle":
        """Construct the oracle; returns ``self`` for chaining."""
        engine = self._engine
        engine.reset_counters()
        started = time.perf_counter()

        tick = time.perf_counter()
        original = build_partition_tree(engine, strategy=self.strategy,
                                        seed=self.seed)
        tree = compress_tree(original)
        self.stats.tree_seconds = time.perf_counter() - tick

        fallbacks = 0
        if self.method == "efficient":
            tick = time.perf_counter()
            enhanced = build_enhanced_edges(engine, original, self.epsilon,
                                            seed=self.seed)
            self.stats.enhanced_seconds = time.perf_counter() - tick
            self._enhanced = enhanced

            def provider(center_a: int, center_b: int) -> float:
                nonlocal fallbacks
                distance = enhanced.pair_distance(center_a, center_b)
                if distance is None:
                    # Lemma 4 says this cannot happen; recover with an
                    # SSAD rather than fail, and surface it in stats.
                    fallbacks += 1
                    distance = engine.distance(center_a, center_b)
                return distance
        else:
            cache: Dict[Tuple[int, int], float] = {}

            def provider(center_a: int, center_b: int) -> float:
                if center_a == center_b:
                    return 0.0
                key = (min(center_a, center_b), max(center_a, center_b))
                if key not in cache:
                    cache[key] = engine.distance(*key)
                return cache[key]

        tick = time.perf_counter()
        pair_set = generate_node_pairs(tree, self.epsilon, provider)
        self.stats.pairs_seconds = time.perf_counter() - tick

        tick = time.perf_counter()
        entries = [(pack_pair(a, b), distance)
                   for (a, b), distance in pair_set.pairs.items()]
        pair_hash = PerfectHashMap(entries, seed=self.seed)
        self.stats.hash_seconds = time.perf_counter() - tick

        self._original_tree = original
        self._tree = tree
        self._pair_set = pair_set
        self._pair_hash = pair_hash
        self._built = True

        stats = self.stats
        stats.total_seconds = time.perf_counter() - started
        stats.height = tree.height
        stats.root_radius = tree.root_radius
        stats.original_nodes = original.num_nodes
        stats.compressed_nodes = tree.num_nodes
        stats.enhanced_edges = (self._enhanced.edge_count
                                if self._enhanced else 0)
        stats.pairs_considered = pair_set.considered
        stats.pairs_stored = len(pair_set)
        stats.ssad_calls = engine.ssad_calls
        stats.settled_nodes = engine.settled_nodes
        stats.heap_pushes = engine.heap_pushes
        stats.enhanced_lookup_fallbacks = fallbacks
        return self

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def engine(self) -> GeodesicEngine:
        return self._engine

    @property
    def is_built(self) -> bool:
        return self._built

    @property
    def height(self) -> int:
        self._require_built()
        return self._tree.height

    @property
    def tree(self) -> CompressedPartitionTree:
        self._require_built()
        return self._tree

    @property
    def original_tree(self) -> PartitionTree:
        self._require_built()
        return self._original_tree

    @property
    def pair_set(self) -> NodePairSet:
        self._require_built()
        return self._pair_set

    @property
    def num_pairs(self) -> int:
        self._require_built()
        return len(self._pair_set)

    def size_bytes(self) -> int:
        """Oracle size under the repository's byte-count model.

        Counts only what must persist to answer queries: the compressed
        tree and the perfect-hashed node pair set.  (``T_org`` and the
        enhanced edges are construction scaffolding, discarded after
        build — mirroring the paper's accounting, where the oracle is
        "the compressed partition tree and the node pair set".)
        """
        self._require_built()
        return self._tree.size_bytes() + self._pair_hash.size_bytes(8)

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("oracle not built; call build() first")

    # ------------------------------------------------------------------
    # queries (Section 3.4)
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> float:
        """ε-approximate geodesic distance between POIs (O(h) method)."""
        self._require_built()
        tree = self._tree
        pair_hash = self._pair_hash
        array_s = tree.layer_array(source)
        array_t = tree.layer_array(target)
        height = tree.height

        # Step 1: same-layer pairs.
        for layer in range(height + 1):
            node_s = array_s[layer]
            node_t = array_t[layer]
            if node_s is not None and node_t is not None:
                distance = pair_hash.get(pack_pair(node_s, node_t))
                if distance is not None:
                    return distance

        # Step 2: first-higher-layer pairs (s-node above t-node).
        for layer in range(1, height + 1):
            node_t = array_t[layer]
            if node_t is None:
                continue
            parent = tree.node(node_t).parent
            if parent is None:
                continue
            for k in range(tree.node(parent).layer, layer):
                node_s = array_s[k]
                if node_s is None:
                    continue
                distance = pair_hash.get(pack_pair(node_s, node_t))
                if distance is not None:
                    return distance

        # Step 3: first-lower-layer pairs (symmetric).
        for layer in range(1, height + 1):
            node_s = array_s[layer]
            if node_s is None:
                continue
            parent = tree.node(node_s).parent
            if parent is None:
                continue
            for k in range(tree.node(parent).layer, layer):
                node_t = array_t[k]
                if node_t is None:
                    continue
                distance = pair_hash.get(pack_pair(node_s, node_t))
                if distance is not None:
                    return distance

        raise RuntimeError(
            f"no covering node pair for ({source}, {target}); "
            "unique-match property violated"
        )

    def query_naive(self, source: int, target: int) -> float:
        """Same answer via the O(h²) Cartesian scan (SE(Naive) query)."""
        self._require_built()
        tree = self._tree
        pair_hash = self._pair_hash
        nodes_s = [n for n in tree.layer_array(source) if n is not None]
        nodes_t = [n for n in tree.layer_array(target) if n is not None]
        for node_s in nodes_s:
            for node_t in nodes_t:
                distance = pair_hash.get(pack_pair(node_s, node_t))
                if distance is not None:
                    return distance
        raise RuntimeError(
            f"no covering node pair for ({source}, {target}); "
            "unique-match property violated"
        )

    def covering_pair(self, source: int, target: int
                      ) -> Tuple[int, int, float]:
        """The unique node pair containing ``(source, target)``.

        Exposed for tests of Theorem 1; returns ``(o1, o2, distance)``.
        """
        self._require_built()
        tree = self._tree
        matches = []
        for (a, b), distance in self._pair_set.pairs.items():
            if (self._contains(a, tree.leaf_of_poi[source])
                    and self._contains(b, tree.leaf_of_poi[target])):
                matches.append((a, b, distance))
        if len(matches) != 1:
            raise RuntimeError(
                f"{len(matches)} pairs cover ({source}, {target}); "
                "expected exactly 1"
            )
        return matches[0]

    def _contains(self, ancestor: int, node: int) -> bool:
        tree = self._tree
        current: Optional[int] = node
        while current is not None:
            if current == ancestor:
                return True
            current = tree.node(current).parent
        return False
