"""The SE (Space-Efficient) distance oracle — the paper's contribution.

``SEOracle`` ties the pieces together:

1. build the partition tree over the POI set (Section 3.2),
2. compress it (Section 3.2),
3. generate the well-separated node pair set (Section 3.3) with centre
   distances supplied either by **enhanced edges** (efficient method,
   Section 3.5) or by per-pair SSAD (naive method, the SE(Naive)
   baseline),
4. index the pair set in a perfect hash.

Queries (Section 3.4) locate the unique node pair containing
``(s, t)`` and return its stored distance, in O(h) with the efficient
algorithm or O(h²) with the naive scan.  Theorem 1 guarantees the
result is an ε-approximation of the geodesic distance.

Construction runs as an explicit staged pipeline — **plan** (tree
build + compression, sequential), **fan-out** (the independent SSAD
bulk, batched through a :mod:`~repro.core.parallel` build executor)
and **reduce** (pair generation + perfect hashing, deterministic
order) — so ``jobs=N`` parallelises the dominant stage across worker
processes while staying bit-identical to a serial build.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from ..datastructures.perfect_hash import PerfectHashMap, pack_pair
from ..geodesic.engine import GeodesicEngine
from .compressed_tree import CompressedPartitionTree, compress_tree
from .node_pairs import (
    EnhancedEdgeIndex,
    NodePairSet,
    build_enhanced_edges,
    generate_node_pairs_batched,
)
from .parallel import BuildExecutor, make_executor
from .partition_tree import PartitionTree, build_partition_tree

__all__ = ["SEOracle", "BuildStats"]

BuildMethod = Literal["efficient", "naive"]
Strategy = Literal["random", "greedy"]


@dataclass
class BuildStats:
    """Construction-time breakdown and structure counts."""

    tree_seconds: float = 0.0
    enhanced_seconds: float = 0.0
    pairs_seconds: float = 0.0
    hash_seconds: float = 0.0
    total_seconds: float = 0.0
    height: int = 0
    root_radius: float = 0.0
    original_nodes: int = 0
    compressed_nodes: int = 0
    enhanced_edges: int = 0
    pairs_considered: int = 0
    pairs_stored: int = 0
    ssad_calls: int = 0
    settled_nodes: int = 0
    heap_pushes: int = 0
    enhanced_lookup_fallbacks: int = 0
    jobs: int = 1
    executor: str = "serial"


class SEOracle:
    """The Space-Efficient ε-approximate geodesic distance oracle.

    Parameters
    ----------
    engine:
        Geodesic engine holding the terrain and the POI set ``P``.
    epsilon:
        Error parameter ε > 0; queries return distances within
        ``(1 ± ε)`` of the geodesic distance (w.r.t. the engine metric).
    strategy:
        Point-selection strategy of the tree build (``"random"`` /
        ``"greedy"``), the paper's SE(Random) / SE(Greedy) variants.
    method:
        ``"efficient"`` (enhanced edges, Section 3.5) or ``"naive"``
        (per-pair SSAD — the SE(Naive) baseline).
    seed:
        Randomness seed (tree build + hashing).
    jobs:
        Worker processes for the build fan-out stage: ``1`` (default)
        builds serially, ``N >= 2`` fans SSAD batches out across ``N``
        processes, negative means one per CPU.  Parallel builds are
        bit-identical to serial ones.
    executor:
        Explicit :class:`~repro.core.parallel.BuildExecutor` overriding
        ``jobs``; the caller keeps ownership (it is not closed after
        the build), so one process pool can serve several builds.
    ssad_cache:
        Optional :class:`~repro.core.incremental.MemoExecutor` — the
        incremental-flush memo.  When set, every SSAD of the build
        (tree construction and fan-out alike) is routed through it:
        memoised rows replay instead of recomputing, new rows are
        captured for the next generation.  The output is bit-identical
        with or without a cache.

    Example
    -------
    >>> from repro.terrain import make_terrain, sample_uniform
    >>> from repro.geodesic import GeodesicEngine
    >>> mesh = make_terrain(grid_exponent=3, seed=1)
    >>> pois = sample_uniform(mesh, 12, seed=1)
    >>> oracle = SEOracle(GeodesicEngine(mesh, pois), epsilon=0.25)
    >>> oracle.build()
    >>> d = oracle.query(0, 5)
    """

    def __init__(self, engine: GeodesicEngine, epsilon: float,
                 strategy: Strategy = "random",
                 method: BuildMethod = "efficient",
                 seed: int = 0, jobs: int = 1,
                 executor: Optional[BuildExecutor] = None,
                 ssad_cache=None):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if method not in ("efficient", "naive"):
            raise ValueError(f"unknown build method: {method}")
        self._engine = engine
        self.epsilon = epsilon
        self.strategy = strategy
        self.method = method
        self.seed = seed
        self.jobs = jobs
        self._executor = executor
        self._ssad_cache = ssad_cache
        self.stats = BuildStats()
        self._tree: Optional[CompressedPartitionTree] = None
        self._original_tree: Optional[PartitionTree] = None
        self._pair_set: Optional[NodePairSet] = None
        self._pair_hash: Optional[PerfectHashMap] = None
        self._enhanced: Optional[EnhancedEdgeIndex] = None
        self._compiled = None
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "SEOracle":
        """Construct the oracle via the staged pipeline; returns ``self``.

        Stage 1 (*plan*) builds and compresses the partition tree —
        sequential by nature, since every cover pass selects from what
        the previous passes left uncovered.  Stage 2 (*fan-out*) runs
        the independent SSAD bulk — enhanced-edge sweeps or naive
        per-pair centre distances — as batches on the build executor.
        Stage 3 (*reduce*) generates the pair set and perfect-hashes
        it in deterministic order.  Output is bit-identical for any
        executor / ``jobs`` setting.
        """
        engine = self._engine
        engine.reset_counters()
        started = time.perf_counter()
        executor = self._executor
        owns_executor = executor is None
        if owns_executor:
            executor = make_executor(self.jobs)
        tree_ssad = None
        if self._ssad_cache is not None:
            # The memo wraps the real executor: valid rows replay in
            # external-id space, misses fan out through the inner
            # executor and are captured for the next generation.
            executor = self._ssad_cache.attach(executor)
            tree_ssad = self._ssad_cache.ssad
        try:
            executor.bind(engine)

            # ----------------------------------------------------------
            # Stage 1: plan — partition tree + compression.
            # ----------------------------------------------------------
            tick = time.perf_counter()
            original = build_partition_tree(engine, strategy=self.strategy,
                                            seed=self.seed,
                                            ssad=tree_ssad)
            tree = compress_tree(original)
            self.stats.tree_seconds = time.perf_counter() - tick

            # ----------------------------------------------------------
            # Stage 2: fan-out — the SSAD-heavy distance bulk.
            # ----------------------------------------------------------
            fallbacks = 0
            if self.method == "efficient":
                tick = time.perf_counter()
                enhanced = build_enhanced_edges(engine, original,
                                                self.epsilon,
                                                seed=self.seed,
                                                executor=executor)
                self.stats.enhanced_seconds = time.perf_counter() - tick
                self._enhanced = enhanced

                def batch_provider(center_pairs: Sequence[Tuple[int, int]]
                                   ) -> List[float]:
                    nonlocal fallbacks
                    distances = []
                    misses = []
                    for position, (a, b) in enumerate(center_pairs):
                        distance = enhanced.pair_distance(a, b)
                        if distance is None:
                            # Lemma 4 says this cannot happen; recover
                            # with an SSAD rather than fail, and
                            # surface it in stats.
                            fallbacks += 1
                            misses.append(position)
                        distances.append(distance)
                    if misses:
                        recovered = executor.map_pair_distances(
                            [center_pairs[i] for i in misses])
                        if len(recovered) != len(misses):
                            raise ValueError(
                                "executor returned a misaligned batch")
                        for position, distance in zip(misses, recovered):
                            distances[position] = distance
                    return distances
            else:
                cache: Dict[Tuple[int, int], float] = {}

                def batch_provider(center_pairs: Sequence[Tuple[int, int]]
                                   ) -> List[float]:
                    # One executor round per wavefront: compute every
                    # distinct uncached centre pair, first-seen order.
                    need: List[Tuple[int, int]] = []
                    for a, b in center_pairs:
                        if a == b:
                            continue
                        key = (a, b) if a < b else (b, a)
                        if key not in cache:
                            cache[key] = None
                            need.append(key)
                    if need:
                        computed = executor.map_pair_distances(need)
                        if len(computed) != len(need):
                            raise ValueError(
                                "executor returned a misaligned batch")
                        for key, distance in zip(need, computed):
                            cache[key] = distance
                    return [0.0 if a == b
                            else cache[(a, b) if a < b else (b, a)]
                            for a, b in center_pairs]

            # ----------------------------------------------------------
            # Stage 3: reduce — pair generation + perfect hashing.
            # ----------------------------------------------------------
            tick = time.perf_counter()
            pair_set = generate_node_pairs_batched(tree, self.epsilon,
                                                   batch_provider)
            self.stats.pairs_seconds = time.perf_counter() - tick

            tick = time.perf_counter()
            entries = [(pack_pair(a, b), distance)
                       for (a, b), distance in pair_set.pairs.items()]
            pair_hash = PerfectHashMap(entries, seed=self.seed)
            self.stats.hash_seconds = time.perf_counter() - tick
        finally:
            if owns_executor:
                executor.close()

        self._original_tree = original
        self._tree = tree
        self._pair_set = pair_set
        self._pair_hash = pair_hash
        self._compiled = None  # stale after a rebuild; recompiled lazily
        self._built = True

        stats = self.stats
        stats.total_seconds = time.perf_counter() - started
        stats.height = tree.height
        stats.root_radius = tree.root_radius
        stats.original_nodes = original.num_nodes
        stats.compressed_nodes = tree.num_nodes
        stats.enhanced_edges = (self._enhanced.edge_count
                                if self._enhanced else 0)
        stats.pairs_considered = pair_set.considered
        stats.pairs_stored = len(pair_set)
        stats.ssad_calls = engine.ssad_calls
        stats.settled_nodes = engine.settled_nodes
        stats.heap_pushes = engine.heap_pushes
        stats.enhanced_lookup_fallbacks = fallbacks
        stats.jobs = executor.jobs
        stats.executor = executor.name
        return self

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def engine(self) -> GeodesicEngine:
        return self._engine

    @property
    def num_pois(self) -> int:
        """POI count of the underlying workload (shared with
        :class:`~repro.core.store.StoredOracle` so batch-serving
        callers need no duck-typing)."""
        return self._engine.num_pois

    @property
    def is_built(self) -> bool:
        return self._built

    @property
    def supports_updates(self) -> bool:
        """Static index (``DistanceIndex`` flag); see
        :class:`~repro.core.dynamic.DynamicSEOracle` for updates."""
        return False

    @property
    def height(self) -> int:
        self._require_built()
        return self._tree.height

    @property
    def tree(self) -> CompressedPartitionTree:
        self._require_built()
        return self._tree

    @property
    def original_tree(self) -> PartitionTree:
        self._require_built()
        return self._original_tree

    @property
    def pair_set(self) -> NodePairSet:
        self._require_built()
        return self._pair_set

    @property
    def pair_hash(self) -> PerfectHashMap:
        self._require_built()
        return self._pair_hash

    @property
    def num_pairs(self) -> int:
        self._require_built()
        return len(self._pair_set)

    def size_bytes(self) -> int:
        """Oracle size under the repository's byte-count model.

        Counts only what must persist to answer queries: the compressed
        tree and the perfect-hashed node pair set.  (``T_org`` and the
        enhanced edges are construction scaffolding, discarded after
        build — mirroring the paper's accounting, where the oracle is
        "the compressed partition tree and the node pair set".)
        """
        self._require_built()
        return self._tree.size_bytes() + self._pair_hash.size_bytes(8)

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("oracle not built; call build() first")

    # ------------------------------------------------------------------
    # queries (Section 3.4)
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> float:
        """ε-approximate geodesic distance between POIs (O(h) method)."""
        self._require_built()
        tree = self._tree
        pair_hash = self._pair_hash
        array_s = tree.layer_array(source)
        array_t = tree.layer_array(target)
        height = tree.height

        # Step 1: same-layer pairs.
        for layer in range(height + 1):
            node_s = array_s[layer]
            node_t = array_t[layer]
            if node_s is not None and node_t is not None:
                distance = pair_hash.get(pack_pair(node_s, node_t))
                if distance is not None:
                    return distance

        # Step 2: first-higher-layer pairs (s-node above t-node).
        for layer in range(1, height + 1):
            node_t = array_t[layer]
            if node_t is None:
                continue
            parent = tree.node(node_t).parent
            if parent is None:
                continue
            for k in range(tree.node(parent).layer, layer):
                node_s = array_s[k]
                if node_s is None:
                    continue
                distance = pair_hash.get(pack_pair(node_s, node_t))
                if distance is not None:
                    return distance

        # Step 3: first-lower-layer pairs (symmetric).
        for layer in range(1, height + 1):
            node_s = array_s[layer]
            if node_s is None:
                continue
            parent = tree.node(node_s).parent
            if parent is None:
                continue
            for k in range(tree.node(parent).layer, layer):
                node_t = array_t[k]
                if node_t is None:
                    continue
                distance = pair_hash.get(pack_pair(node_s, node_t))
                if distance is not None:
                    return distance

        raise RuntimeError(
            f"no covering node pair for ({source}, {target}); "
            "unique-match property violated"
        )

    # ------------------------------------------------------------------
    # batched queries (the compiled serving path)
    # ------------------------------------------------------------------
    def compiled(self, refresh: bool = False) -> "CompiledOracle":
        """The flat-table form of this oracle (compiled lazily, cached).

        See :class:`~repro.core.compiled.CompiledOracle`; the tables
        answer whole query batches with no Python per query and are
        bit-identical to :meth:`query`.  The cache is invalidated by
        ``build()``; pass ``refresh=True`` to force a recompile.
        """
        self._require_built()
        if self._compiled is None or refresh:
            from .compiled import CompiledOracle
            self._compiled = CompiledOracle.from_oracle(self)
        return self._compiled

    @property
    def is_compiled(self) -> bool:
        return self._compiled is not None

    def query_batch(self, sources, targets):
        """Batched :meth:`query` over aligned id arrays (float64 array).

        Compiles the flat tables on first use; afterwards each batch is
        answered in a handful of NumPy passes (~``(h+1)²`` probed keys
        per query, no Python loop).
        """
        return self.compiled().query_batch(sources, targets)

    def query_matrix(self, pois=None):
        """All-pairs distance matrix over ``pois`` (default: all)."""
        return self.compiled().query_matrix(pois)

    def query_naive(self, source: int, target: int) -> float:
        """Same answer via the O(h²) Cartesian scan (SE(Naive) query)."""
        self._require_built()
        tree = self._tree
        pair_hash = self._pair_hash
        nodes_s = [n for n in tree.layer_array(source) if n is not None]
        nodes_t = [n for n in tree.layer_array(target) if n is not None]
        for node_s in nodes_s:
            for node_t in nodes_t:
                distance = pair_hash.get(pack_pair(node_s, node_t))
                if distance is not None:
                    return distance
        raise RuntimeError(
            f"no covering node pair for ({source}, {target}); "
            "unique-match property violated"
        )

    def covering_pair(self, source: int, target: int
                      ) -> Tuple[int, int, float]:
        """The unique node pair containing ``(source, target)``.

        Exposed for tests of Theorem 1; returns ``(o1, o2, distance)``.

        A pair covers ``(s, t)`` exactly when its nodes are
        ancestors-or-self of the two leaves, so the candidates are the
        O(h²) product of the two root chains — probed through the pair
        set's keyed lookup, the same layer arrays the query walks —
        never a scan over every stored pair.
        """
        self._require_built()
        tree = self._tree
        pair_set = self._pair_set
        chain_s = [node for node in tree.layer_array(source)
                   if node is not None]
        chain_t = [node for node in tree.layer_array(target)
                   if node is not None]
        matches = []
        for node_s in chain_s:
            for node_t in chain_t:
                distance = pair_set.distance_of(node_s, node_t)
                if distance is not None:
                    matches.append((node_s, node_t, distance))
        if len(matches) != 1:
            raise RuntimeError(
                f"{len(matches)} pairs cover ({source}, {target}); "
                "expected exactly 1"
            )
        return matches[0]
