"""Tiled terrain sharding: per-tile SE oracles + boundary stitching.

Every build path so far constructs **one** partition tree over the
whole POI set — fine for city-sized terrains, an Amdahl ceiling for
country-sized ones (the cover passes are inherently sequential, see
:mod:`~repro.core.parallel`).  This module shards the *terrain*
instead of the distance work:

1. :func:`plan_tiles` cuts the mesh into ``T`` spatial tiles by
   recursive median bisection over face centroids — every face belongs
   to exactly one tile, tiles share only boundary vertices/edges.
2. :func:`build_tiled_oracle` builds one independent SE oracle per
   tile (``jobs=N`` fans whole tile builds across processes via
   :func:`~repro.core.parallel.map_jobs`, sidestepping the sequential
   partition tree entirely) and precomputes one dense **boundary
   matrix**: graph-exact distances between every pair of *portals*.
3. :class:`TiledOracle` serves the ``DistanceIndex`` protocol over the
   shards: intra-tile queries route to the owning tile's
   :class:`~repro.core.compiled.CompiledOracle`; cross-tile queries
   stitch ``d̂(s, b₁) + B[b₁, b₂] + d̂(b₂, t)`` minimised over the two
   tiles' portal sets with a chunked vectorised min-plus product.

Portals — why the stitch is within (1 ± ε)
------------------------------------------
A *portal* is a geodesic-graph node lying on the tile cut: a mesh
vertex whose incident faces span ≥ 2 tiles, or a Steiner point on a
*cut edge* (a mesh edge whose incident faces span ≥ 2 tiles).  Every
graph edge lies within one face's boundary clique, and every face
belongs to exactly one tile — so any path that leaves a tile passes
through a portal.  Each tile's oracle includes its portals as extra
sites (attached at the *exact* node position, so they alias the
tile-local node), and the boundary matrix ``B`` holds full-graph
Dijkstra distances.  Splitting the true path at its first-exit /
last-entry portals and bounding each leg gives

    (1 − ε)·d(s, t) ≤ min stitch ≤ (1 + ε)·d(s, t).

Because the true geodesic between two same-tile POIs may still leave
and re-enter the tile, intra-tile answers are
``min(direct, same-tile stitch)`` — pruned by each POI's precomputed
*escape distance* (its oracle distance to the nearest portal): when
``direct ≤ escape[s] + escape[t]`` no stitch can be shorter, and the
prune is exact (bit-identical to the unpruned minimum).

Determinism and paging
----------------------
Tile extraction is order-preserving (faces ascending, vertices via
``np.unique``), so Steiner placement inside a tile reproduces the
full-mesh positions bitwise, a single-tile build is **bit-identical**
to the monolithic oracle, and parallel tile builds are bit-identical
to serial ones.  At query time only the per-tile query tables (chains
+ frozen hash) page through an internal LRU (``max_resident_tiles``);
the stitch consumes tile A's probe matrix *before* touching tile B, so
a one-tile budget serves cross-tile batches correctly — and, the
arithmetic being independent of residency, bit-identically to an
all-resident run.
"""

from __future__ import annotations

import os
import threading
import time
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..datastructures.perfect_hash import PerfectHashMap
from ..geodesic.engine import GeodesicEngine
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POI, POISet
from .compiled import CompiledOracle
from .index import DistanceIndexMixin, aligned_id_arrays
from .oracle import SEOracle
from .parallel import map_jobs
from .store import (
    _FORMAT_NAME,
    _HASH_SECTIONS,
    _mmap_member,
    _read_meta_member,
    _write_store,
    STORE_VERSION,
    file_signature,
)

__all__ = [
    "plan_tiles",
    "build_tiled_oracle",
    "pack_tiled",
    "open_tiled_oracle",
    "TiledBuild",
    "TiledOracle",
]

#: The sections a tile needs resident to answer queries (everything
#: else — trees, portal maps, escapes — is small and always loaded).
_TILE_QUERY_SECTIONS = ("chains",) + tuple(_HASH_SECTIONS)

#: Row chunk of the min-plus stitch: bounds the (chunk, Pa, Pb)
#: broadcast intermediate without changing any result bit.
_STITCH_CHUNK = 128


def _tile_prefix(tile: int) -> str:
    return f"tiles/{tile:04d}/"


def _position_key(position: Sequence[float]) -> Tuple[float, ...]:
    """The 9-decimal rounding key :class:`POISet` dedups on.

    Portals are pre-deduped against owned POIs with the same key, so a
    POI sitting exactly on a boundary vertex maps onto the portal's
    tile-local site instead of silently shifting every later index."""
    return tuple(round(float(c), 9) for c in position)


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def plan_tiles(mesh: TriangleMesh, tiles: int) -> np.ndarray:
    """Assign every face to one of ``tiles`` spatial tiles.

    Recursive median bisection over face centroids: split the face set
    along its longer planar (xy) axis with a stable argsort, sized
    proportionally when ``tiles`` is odd.  Purely deterministic —
    identical meshes plan identical tilings on every platform.
    Returns an int64 array of length ``mesh.num_faces``.
    """
    tiles = int(tiles)
    if tiles < 1:
        raise ValueError("tiles must be >= 1")
    if tiles > mesh.num_faces:
        raise ValueError(
            f"cannot cut {mesh.num_faces} faces into {tiles} tiles")
    centroids = mesh.vertices[mesh.faces].mean(axis=1)[:, :2]
    face_tile = np.empty(mesh.num_faces, dtype=np.int64)

    def split(face_ids: np.ndarray, count: int, first: int) -> None:
        if count == 1:
            face_tile[face_ids] = first
            return
        left = count // 2
        points = centroids[face_ids]
        spans = points.max(axis=0) - points.min(axis=0)
        axis = 0 if spans[0] >= spans[1] else 1
        order = np.argsort(points[:, axis], kind="stable")
        take = (len(face_ids) * left) // count
        take = max(left, min(take, len(face_ids) - (count - left)))
        split(face_ids[order[:take]], left, first)
        split(face_ids[order[take:]], count - left, first + left)

    split(np.arange(mesh.num_faces), tiles, 0)
    return face_tile


# ----------------------------------------------------------------------
# portals
# ----------------------------------------------------------------------
@dataclass
class _Portal:
    """One cut-crossing node: full-graph id, exact position, the mesh
    vertex it aliases (``None`` for Steiner portals) and, per adjacent
    tile, one global face of that tile it sits on."""

    node: int
    position: Tuple[float, ...]
    vertex: Optional[int]
    faces: Dict[int, int]


def _find_portals(mesh: TriangleMesh, graph,
                  face_tile: np.ndarray) -> List[_Portal]:
    portals: List[_Portal] = []
    for vertex, faces in enumerate(mesh.vertex_faces):
        tiles_of: Dict[int, int] = {}
        for face in faces:
            tiles_of.setdefault(int(face_tile[face]), int(face))
        if len(tiles_of) < 2:
            continue
        portals.append(_Portal(
            node=int(vertex),
            position=tuple(float(c) for c in mesh.vertices[vertex]),
            vertex=int(vertex), faces=tiles_of))
    for edge in mesh.edges:  # sorted -> deterministic portal order
        tiles_of = {}
        for face in mesh.edge_faces[edge]:
            tiles_of.setdefault(int(face_tile[face]), int(face))
        if len(tiles_of) < 2:
            continue
        for node in graph.edge_steiner_nodes(*edge):
            portals.append(_Portal(
                node=int(node),
                position=tuple(float(c) for c in graph.position(node)),
                vertex=None, faces=tiles_of))
    portals.sort(key=lambda portal: portal.node)
    return portals


def _boundary_matrix(engine: GeodesicEngine,
                     portal_nodes: Sequence[int]) -> np.ndarray:
    """Full-graph portal×portal distances (one Dijkstra per portal).

    Computed on the *complete* engine, so cut-straddling legs are
    graph-exact; POI sites cannot shorten these paths (a site's edges
    stay inside one face's clique, where the direct edge is never
    longer by the triangle inequality).  Symmetric by construction —
    only the upper triangle is searched.
    """
    count = len(portal_nodes)
    matrix = np.zeros((count, count), dtype=np.float64)
    for row in range(count - 1):
        later = list(portal_nodes[row + 1:])
        found = engine.distances_from_node(
            portal_nodes[row], targets=later).distances
        for offset, target in enumerate(later):
            distance = found.get(target, np.inf)
            matrix[row, row + 1 + offset] = distance
            matrix[row + 1 + offset, row] = distance
    return matrix


# ----------------------------------------------------------------------
# per-tile build (worker side)
# ----------------------------------------------------------------------
def _build_tile(workload: Dict[str, Any]
                ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Build one tile's oracle from a self-contained picklable
    workload; runs in a worker process under :func:`map_jobs`."""
    from .store import oracle_sections
    mesh = TriangleMesh(workload["vertices"], workload["faces"])
    pois = POISet([
        POI(index=i, position=tuple(position), face_id=face,
            vertex_id=vertex)
        for i, (position, face, vertex)
        in enumerate(workload["sites"])
    ])
    if len(pois) != len(workload["sites"]):
        raise RuntimeError(
            f"tile {workload['tile']}: site dedup shifted local ids")
    engine = GeodesicEngine(mesh, pois,
                            points_per_edge=workload["density"])
    oracle = SEOracle(engine, workload["epsilon"],
                      strategy=workload["strategy"],
                      method=workload["method"],
                      seed=workload["seed"]).build()
    sections = oracle_sections(oracle)
    portal_local = workload["portal_local"]
    count = len(pois)
    if portal_local.size:
        compiled = oracle.compiled()
        probes = compiled.query_batch(
            np.repeat(np.arange(count), portal_local.size),
            np.tile(portal_local, count),
        ).reshape(count, portal_local.size)
        escape = np.ascontiguousarray(probes.min(axis=1))
    else:
        escape = np.full(count, np.inf)
    sections["escape"] = escape
    stats = {
        "pois": int(workload["owned"]),
        "sites": count,
        "portals": int(portal_local.size),
        "pairs": oracle.stats.pairs_stored,
        "height": oracle.stats.height,
        "root_radius": oracle.tree.root_radius,
        "faces": int(workload["faces"].shape[0]),
        "vertices": int(workload["vertices"].shape[0]),
        "seconds": oracle.stats.total_seconds,
    }
    return sections, stats


def _tile_workloads(mesh: TriangleMesh, pois: POISet,
                    face_tile: np.ndarray, portals: List[_Portal],
                    num_tiles: int, params: Dict[str, Any]):
    """Cut the build into one picklable workload per tile.

    Extraction is order-preserving — faces ascending, vertices via
    ``np.unique`` — so ``u < v`` globally implies ``u < v`` locally
    and the tile's Steiner placement reproduces the full-mesh
    positions bitwise.  Owned POIs come first (local ids ``0 ..
    owned-1`` = the global POIs of the tile, ascending), then the
    tile's non-coinciding portals in global portal order.
    """
    faces = np.asarray(mesh.faces)
    owner = np.array([int(face_tile[poi.face_id]) for poi in pois],
                     dtype=np.int64)
    local = np.full(len(pois), -1, dtype=np.int64)
    workloads = []
    portal_locals: List[np.ndarray] = []
    portal_globals: List[np.ndarray] = []
    for tile in range(num_tiles):
        face_ids = np.flatnonzero(face_tile == tile)
        tile_faces = faces[face_ids]
        vert_ids = np.unique(tile_faces)
        local_faces = np.searchsorted(vert_ids, tile_faces)
        vertex_map = {int(v): i for i, v in enumerate(vert_ids)}
        face_map = {int(f): i for i, f in enumerate(face_ids)}
        sites: List[Tuple[Tuple[float, ...], int, Optional[int]]] = []
        key_to_local: Dict[Tuple[float, ...], int] = {}
        for index in np.flatnonzero(owner == tile):
            poi = pois[int(index)]
            rank = len(sites)
            local[index] = rank
            vertex = (None if poi.vertex_id is None
                      else vertex_map[int(poi.vertex_id)])
            sites.append((tuple(poi.position),
                          face_map[int(poi.face_id)], vertex))
            key_to_local[_position_key(poi.position)] = rank
        tile_portal_local: List[int] = []
        tile_portal_global: List[int] = []
        for g, portal in enumerate(portals):
            if tile not in portal.faces:
                continue
            key = _position_key(portal.position)
            rank = key_to_local.get(key)
            if rank is None:
                rank = len(sites)
                vertex = (None if portal.vertex is None
                          else vertex_map[portal.vertex])
                sites.append((portal.position,
                              face_map[portal.faces[tile]], vertex))
                key_to_local[key] = rank
            tile_portal_local.append(rank)
            tile_portal_global.append(g)
        if not sites:
            raise ValueError(
                f"tile {tile} has no POIs and no portals; use fewer "
                "tiles or place a POI in every region")
        portal_locals.append(np.asarray(tile_portal_local,
                                        dtype=np.int64))
        portal_globals.append(np.asarray(tile_portal_global,
                                         dtype=np.int64))
        workloads.append({
            "tile": tile,
            "vertices": np.ascontiguousarray(mesh.vertices[vert_ids]),
            "faces": np.ascontiguousarray(local_faces.astype(np.int64)),
            "sites": sites,
            "owned": int(np.count_nonzero(owner == tile)),
            "portal_local": portal_locals[-1],
            **params,
        })
    return workloads, owner, local, portal_locals, portal_globals


# ----------------------------------------------------------------------
# build entry point
# ----------------------------------------------------------------------
@dataclass
class TiledBuild:
    """An in-memory tiled build: meta + routing arrays + per-tile
    sections (escape included).  :meth:`oracle` serves it directly;
    :func:`pack_tiled` writes it as one v4 store."""

    meta: Dict[str, Any]
    owner: np.ndarray
    local: np.ndarray
    boundary: np.ndarray
    portal_local: List[np.ndarray]
    portal_global: List[np.ndarray]
    sections: List[Dict[str, np.ndarray]]

    def oracle(self, max_resident_tiles: Optional[int] = None
               ) -> "TiledOracle":
        sections = self.sections

        def loader(tile: int) -> Dict[str, np.ndarray]:
            return {name: sections[tile][name]
                    for name in _TILE_QUERY_SECTIONS}

        return TiledOracle(
            meta=self.meta, owner=self.owner, local=self.local,
            boundary=self.boundary, portal_local=self.portal_local,
            portal_global=self.portal_global,
            escape=[tile["escape"] for tile in sections],
            loader=loader, max_resident_tiles=max_resident_tiles)


def build_tiled_oracle(mesh: TriangleMesh, pois: POISet,
                       epsilon: float, *, tiles: int,
                       strategy: str = "random",
                       method: str = "efficient", seed: int = 0,
                       points_per_edge: int = 1,
                       jobs: Optional[int] = 1) -> TiledBuild:
    """Shard ``mesh`` into ``tiles`` tiles and build one SE oracle per
    tile (every tile uses the same ``seed``), plus the portal boundary
    matrix.  ``jobs`` parallelises *across tiles* — whole independent
    builds per worker, no sequential-tree bottleneck — and is
    bit-identical to a serial build.
    """
    started = time.perf_counter()
    face_tile = plan_tiles(mesh, tiles)
    num_tiles = int(face_tile.max()) + 1 if face_tile.size else 1
    engine = GeodesicEngine(mesh, pois, points_per_edge=points_per_edge)
    portals = _find_portals(mesh, engine.graph, face_tile)
    params = {"epsilon": float(epsilon), "strategy": strategy,
              "method": method, "seed": int(seed),
              "density": int(points_per_edge)}
    workloads, owner, local, portal_locals, portal_globals = \
        _tile_workloads(mesh, pois, face_tile, portals, num_tiles,
                        params)
    results = map_jobs(_build_tile, workloads, jobs=jobs)
    boundary = _boundary_matrix(
        engine, [portal.node for portal in portals])
    from .serialize import workload_fingerprint
    tile_stats = [stats for _, stats in results]
    height = max(stats["height"] for stats in tile_stats)
    meta = {
        "format": _FORMAT_NAME,
        "version": STORE_VERSION,
        "epsilon": float(epsilon),
        "strategy": strategy,
        "method": method,
        "seed": int(seed),
        "fingerprint": workload_fingerprint(engine),
        "build": {"executor": "tiled", "jobs": int(jobs or 1)},
        # Aggregates, so every meta consumer (CLI prints, describe)
        # keeps working: height is the max tile height, pairs the sum.
        "stats": {
            "height": height,
            "pairs_stored": sum(s["pairs"] for s in tile_stats),
            "total_seconds": time.perf_counter() - started,
        },
        "tree": {
            "root_id": -1,
            "height": height,
            "root_radius": max(s["root_radius"] for s in tile_stats),
        },
        "tiles": {
            "count": num_tiles,
            "portals": len(portals),
            "density": int(points_per_edge),
            "pois": len(pois),
            "tile": tile_stats,
        },
    }
    return TiledBuild(
        meta=meta, owner=owner, local=local, boundary=boundary,
        portal_local=portal_locals, portal_global=portal_globals,
        sections=[sections for sections, _ in results])


# ----------------------------------------------------------------------
# store glue
# ----------------------------------------------------------------------
def pack_tiled(build: TiledBuild, path) -> None:
    """Write a :class:`TiledBuild` as one v4 store.

    Same container as :func:`~repro.core.store.pack_oracle` — an
    uncompressed npz-style zip — with each tile its own section set
    under ``tiles/NNNN/`` plus three global routing sections; the tile
    directory lives under the ``"tiles"`` key of ``meta.json``.
    """
    sections: Dict[str, np.ndarray] = {
        "tiles/owner": build.owner,
        "tiles/local": build.local,
        "tiles/boundary": build.boundary,
    }
    for tile, tile_sections in enumerate(build.sections):
        prefix = _tile_prefix(tile)
        for name, array in tile_sections.items():
            sections[prefix + name] = array
        sections[prefix + "portal_local"] = build.portal_local[tile]
        sections[prefix + "portal_global"] = build.portal_global[tile]
    _write_store(path, build.meta, sections)


def open_tiled_oracle(path, mmap: bool = True,
                      max_resident_tiles: Optional[int] = None
                      ) -> "TiledOracle":
    """Open a tiled store with *lazily paged* tile tables.

    Only the small routing arrays (owner/local maps, portal maps,
    escapes — plus the mmap'd boundary matrix) are touched up front;
    each tile's query tables are mapped on first use and page through
    the oracle's internal LRU.  Prefer :func:`~repro.core.store.
    open_oracle`, which dispatches here on the meta tile directory.
    """
    started = time.perf_counter()
    signature = file_signature(path)
    with open(path, "rb") as handle:
        with zipfile.ZipFile(handle) as archive:
            meta = _read_meta_member(archive, path)
            if "tiles" not in meta:
                raise ValueError(f"{path}: not a tiled oracle store")
            count = int(meta["tiles"]["count"])
            infos = {info.filename: info
                     for info in archive.infolist()
                     if info.filename.endswith(".npy")}

            def read(name: str, copy: bool = False) -> np.ndarray:
                info = infos[name + ".npy"]
                if mmap and not copy:
                    return _mmap_member(path, handle, info)
                with archive.open(info.filename) as member:
                    return np.lib.format.read_array(
                        member, allow_pickle=False)

            owner = read("tiles/owner")
            local = read("tiles/local")
            boundary = read("tiles/boundary")
            portal_local = []
            portal_global = []
            escape = []
            tile_infos = []
            for tile in range(count):
                prefix = _tile_prefix(tile)
                portal_local.append(
                    read(prefix + "portal_local", copy=True))
                portal_global.append(
                    read(prefix + "portal_global", copy=True))
                escape.append(read(prefix + "escape", copy=True))
                tile_infos.append({
                    name: infos[prefix + name + ".npy"]
                    for name in _TILE_QUERY_SECTIONS})

    def loader(tile: int) -> Dict[str, np.ndarray]:
        sections: Dict[str, np.ndarray] = {}
        if mmap:
            with open(path, "rb") as handle:
                for name, info in tile_infos[tile].items():
                    sections[name] = _mmap_member(path, handle, info)
        else:
            with zipfile.ZipFile(path) as archive:
                for name, info in tile_infos[tile].items():
                    with archive.open(info.filename) as member:
                        sections[name] = np.lib.format.read_array(
                            member, allow_pickle=False)
        return sections

    oracle = TiledOracle(
        meta=meta, owner=owner, local=local, boundary=boundary,
        portal_local=portal_local, portal_global=portal_global,
        escape=escape, loader=loader, path=os.fspath(path),
        max_resident_tiles=max_resident_tiles,
        stat_signature=signature)
    oracle.load_seconds = time.perf_counter() - started
    return oracle


# ----------------------------------------------------------------------
# the tiled index
# ----------------------------------------------------------------------
def _min_plus(left: np.ndarray, middle: np.ndarray,
              right: np.ndarray) -> np.ndarray:
    """Row-wise stitch minimum ``min_{j,k}(left[i,j] + middle[j,k] +
    right[i,k])``, chunked over rows so the broadcast intermediate
    stays bounded.  Chunking never changes a bit of the result."""
    rows = left.shape[0]
    out = np.empty(rows, dtype=np.float64)
    for start in range(0, rows, _STITCH_CHUNK):
        stop = min(start + _STITCH_CHUNK, rows)
        through = (left[start:stop, :, None]
                   + middle[None, :, :]).min(axis=1)
        out[start:stop] = (through + right[start:stop]).min(axis=1)
    return out


class _ResidentTile:
    __slots__ = ("compiled", "nbytes")

    def __init__(self, compiled: CompiledOracle, nbytes: int):
        self.compiled = compiled
        self.nbytes = nbytes


class TiledOracle(DistanceIndexMixin):
    """``DistanceIndex`` over tile shards with LRU tile paging.

    Global POI ids are the build POI set's indices; the routing arrays
    map each id to its owning tile and tile-local site id.  Per-tile
    query tables (chains + frozen hash) load lazily through
    ``loader`` and at most ``max_resident_tiles`` stay resident
    (``None``: unbounded); loads, evictions and hits are counted per
    tile for the serving layer's ``stats``.

    Thread-safe: one re-entrant lock serialises paging and queries, so
    an eviction can never tear an in-flight batch.  Results are
    independent of the residency bound (and of eviction timing) — the
    stitch arithmetic only ever touches one tile's tables at a time.
    """

    def __init__(self, *, meta: Dict[str, Any], owner, local, boundary,
                 portal_local: Sequence, portal_global: Sequence,
                 escape: Sequence,
                 loader: Callable[[int], Dict[str, np.ndarray]],
                 path: Optional[str] = None,
                 max_resident_tiles: Optional[int] = None,
                 stat_signature=None):
        self.meta = meta
        self.path = path
        self.epsilon = float(meta["epsilon"])
        self.strategy = meta.get("strategy", "random")
        self.method = meta.get("method", "efficient")
        self.seed = int(meta["seed"])
        self.fingerprint = meta.get("fingerprint", "")
        self.build = meta.get("build", {})
        self.stats = meta.get("stats", {})
        self.load_seconds = 0.0
        self.stat_signature = stat_signature
        self._owner = np.asarray(owner)
        self._local = np.asarray(local)
        self._boundary = boundary
        self._portal_local = [np.asarray(p) for p in portal_local]
        self._portal_global = [np.asarray(p) for p in portal_global]
        self._escape = [np.asarray(e) for e in escape]
        self._loader = loader
        self._num_tiles = len(self._portal_local)
        if max_resident_tiles is not None:
            max_resident_tiles = int(max_resident_tiles)
            if max_resident_tiles < 1:
                raise ValueError("max_resident_tiles must be >= 1")
        self._max_resident_tiles = max_resident_tiles
        self._resident: "OrderedDict[int, _ResidentTile]" = OrderedDict()
        self._counters = [
            {"loads": 0, "evictions": 0, "hits": 0}
            for _ in range(self._num_tiles)
        ]
        self._peak_resident_bytes = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    @property
    def num_pois(self) -> int:
        return int(self._owner.shape[0])

    @property
    def num_tiles(self) -> int:
        return self._num_tiles

    @property
    def num_portals(self) -> int:
        return int(self._boundary.shape[0])

    @property
    def num_pairs(self) -> int:
        return int(self.stats.get("pairs_stored", 0))

    @property
    def height(self) -> int:
        return int(self.stats.get("height", 0))

    @property
    def supports_updates(self) -> bool:
        return False

    @property
    def is_compiled(self) -> bool:
        return True

    @property
    def max_resident_tiles(self) -> Optional[int]:
        return self._max_resident_tiles

    def is_stale(self) -> bool:
        """Same replaced-file semantics as ``StoredOracle.is_stale``."""
        if self.stat_signature is None or self.path is None:
            return False
        current = file_signature(self.path)
        return current is not None and current != self.stat_signature

    def size_bytes(self) -> int:
        """On-disk footprint (store-backed) or the routing + resident
        table bytes (in-memory build)."""
        if self.path is not None:
            return os.path.getsize(self.path)
        routing = (int(np.asarray(self._boundary).nbytes)
                   + int(self._owner.nbytes) + int(self._local.nbytes)
                   + sum(int(e.nbytes) for e in self._escape))
        return routing + self.resident_bytes()

    def check_fingerprint(self, engine: GeodesicEngine) -> None:
        from .serialize import workload_fingerprint
        if self.fingerprint != workload_fingerprint(engine):
            raise ValueError(
                f"{self.path}: oracle was built for a different "
                "workload (terrain / POIs / Steiner density mismatch)")

    # ------------------------------------------------------------------
    # paging
    # ------------------------------------------------------------------
    def _tile(self, tile: int) -> CompiledOracle:
        with self._lock:
            resident = self._resident.get(tile)
            counters = self._counters[tile]
            if resident is not None:
                self._resident.move_to_end(tile)
                counters["hits"] += 1
                return resident.compiled
            sections = self._loader(tile)
            pair_hash = PerfectHashMap.from_frozen(
                sections["pair_keys"], sections["pair_distances"],
                sections["hash_level1"], sections["hash_level2_a"],
                sections["hash_level2_shift"],
                sections["hash_level2_offset"],
                sections["hash_slots"], seed=self.seed,
            )
            compiled = CompiledOracle(sections["chains"], pair_hash,
                                      self.epsilon)
            nbytes = sum(int(array.nbytes)
                         for array in sections.values())
            counters["loads"] += 1
            if self._max_resident_tiles is not None:
                while len(self._resident) >= self._max_resident_tiles:
                    evicted, _ = self._resident.popitem(last=False)
                    self._counters[evicted]["evictions"] += 1
            self._resident[tile] = _ResidentTile(compiled, nbytes)
            self._peak_resident_bytes = max(
                self._peak_resident_bytes, self.resident_bytes())
            return compiled

    def resident_tiles(self) -> List[int]:
        with self._lock:
            return list(self._resident)

    def resident_bytes(self) -> int:
        """Bytes of per-tile query tables currently resident — the
        deterministic footprint ``max_resident_tiles`` bounds (the
        process RSS also carries the interpreter, NumPy, and the
        always-resident routing arrays)."""
        with self._lock:
            return sum(entry.nbytes
                       for entry in self._resident.values())

    @property
    def peak_resident_bytes(self) -> int:
        return self._peak_resident_bytes

    def evict_tile(self, tile: int) -> bool:
        """Drop one tile's tables; a later query transparently
        reloads them.  Returns whether the tile was resident."""
        with self._lock:
            if tile not in self._resident:
                return False
            del self._resident[tile]
            self._counters[tile]["evictions"] += 1
            return True

    def tile_counters(self) -> Dict[str, Any]:
        """Paging ledger for ``OracleService.stats``: totals plus the
        per-tile load/eviction/hit counts and the resident set."""
        with self._lock:
            return {
                "resident": list(self._resident),
                "loads": sum(c["loads"] for c in self._counters),
                "evictions": sum(c["evictions"]
                                 for c in self._counters),
                "hits": sum(c["hits"] for c in self._counters),
                "tile": [dict(c) for c in self._counters],
            }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_batch(self, sources, targets) -> np.ndarray:
        sources, targets = aligned_id_arrays(sources, targets)
        out = np.empty(sources.shape[0], dtype=np.float64)
        if not sources.shape[0]:
            return out
        count = self.num_pois
        for ids in (sources, targets):
            if int(ids.min()) < 0 or int(ids.max()) >= count:
                raise IndexError("POI id out of range")
        with self._lock:
            tile_s = self._owner[sources]
            tile_t = self._owner[targets]
            local_s = self._local[sources]
            local_t = self._local[targets]
            # Group rows by (source tile, target tile), sorted — the
            # sequential tile access pattern an LRU of 1 can serve.
            group = tile_s * self._num_tiles + tile_t
            order = np.argsort(group, kind="stable")
            starts = np.flatnonzero(np.diff(group[order])) + 1
            for rows in np.split(order, starts):
                source_tile = int(tile_s[rows[0]])
                target_tile = int(tile_t[rows[0]])
                if source_tile == target_tile:
                    out[rows] = self._intra(
                        source_tile, local_s[rows], local_t[rows])
                else:
                    out[rows] = self._cross(
                        source_tile, target_tile,
                        local_s[rows], local_t[rows])
        return out

    def _portal_probe(self, compiled: CompiledOracle, locals_,
                      portal_local: np.ndarray) -> np.ndarray:
        """Distances from every query site to every tile portal, as a
        (rows, portals) matrix off one batched probe."""
        rows = locals_.shape[0]
        width = portal_local.shape[0]
        return compiled.query_batch(
            np.repeat(locals_, width),
            np.tile(portal_local, rows),
        ).reshape(rows, width)

    def _intra(self, tile: int, local_s, local_t) -> np.ndarray:
        compiled = self._tile(tile)
        direct = compiled.query_batch(local_s, local_t)
        portal_local = self._portal_local[tile]
        if not portal_local.shape[0]:
            return direct
        # Escape prune: any stitch is >= escape[s] + escape[t], so
        # rows at or under that bound keep the direct answer — the
        # prune is exact, not approximate.
        escape = self._escape[tile]
        need = direct > escape[local_s] + escape[local_t]
        if not need.any():
            return direct
        rows = np.flatnonzero(need)
        portals = self._portal_global[tile]
        block = np.asarray(
            self._boundary[np.ix_(portals, portals)])
        source_probe = self._portal_probe(
            compiled, local_s[rows], portal_local)
        target_probe = self._portal_probe(
            compiled, local_t[rows], portal_local)
        stitched = _min_plus(source_probe, block, target_probe)
        direct[rows] = np.minimum(direct[rows], stitched)
        return direct

    def _cross(self, source_tile: int, target_tile: int,
               local_s, local_t) -> np.ndarray:
        portals_s = self._portal_local[source_tile]
        portals_t = self._portal_local[target_tile]
        if not portals_s.shape[0] or not portals_t.shape[0]:
            # Disconnected tile pair: no portal joins them.
            return np.full(local_s.shape[0], np.inf)
        block = np.asarray(self._boundary[np.ix_(
            self._portal_global[source_tile],
            self._portal_global[target_tile])])
        # The source tile is fully consumed before the target tile is
        # touched, so a one-tile residency budget pages exactly two
        # loads per (A, B) group — and the answers cannot depend on
        # what was resident.
        source_probe = self._portal_probe(
            self._tile(source_tile), local_s, portals_s)
        target_probe = self._portal_probe(
            self._tile(target_tile), local_t, portals_t)
        return _min_plus(source_probe, block, target_probe)
