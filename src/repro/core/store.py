"""Binary oracle store: mmap-friendly v4 container + zero-copy open.

JSON persistence (:mod:`~repro.core.serialize`) is convenient but a
serving process pays a full parse plus Python object reconstruction on
every load — tens of milliseconds for a medium oracle, all of it
avoidable.  This module is the build-once/serve-many half of the
persistence story:

* :func:`pack_oracle` writes **format version 4**: a standard
  uncompressed ``.npz``-style zip whose members are flat NumPy
  sections — the compressed-tree arrays, the node-pair key/distance
  arrays, the perfect hash's frozen multiply-shift tables, the
  compiled ancestor-chain matrix — plus one ``meta.json`` member
  carrying the workload fingerprint and build metadata.  The file is
  readable by plain ``numpy.load`` (it *is* an npz).
* :func:`open_oracle` maps every section straight off disk
  (``numpy.memmap``, read-only) and assembles a
  :class:`~repro.core.compiled.CompiledOracle` around the mapped
  tables — no JSON parse, no per-pair Python objects, no hash
  construction.  Load cost is a few zip directory reads plus the
  O(n·h) key-plane derivation; the O(#pairs) tables are never copied.
* :func:`pack_document` converts a v1–v3 JSON document to v4 without
  needing the terrain (the document is self-contained), so existing
  oracle files upgrade losslessly: ``python -m repro pack``.

On-disk layout (format version 4)
---------------------------------
``meta.json``
    ``{format, version, epsilon, strategy, method, seed, fingerprint,
    build {executor, jobs}, stats {height, pairs_stored,
    total_seconds}, tree {root_id, height, root_radius}}``.
``tree_table.npy``
    int64 ``(num_nodes, 4)``: center, original layer, parent id
    (``-1`` for the root), origin id — row index is the node id.
``tree_radii.npy``
    float64 ``(num_nodes,)`` node radii (0 at leaves).
``pair_keys.npy`` / ``pair_distances.npy``
    uint64 / float64 ``(num_pairs,)``: the node pair set as packed
    ordered-pair keys (:func:`~repro.datastructures.perfect_hash.
    pack_pair`) with their centre distances, in hash insertion order —
    these double as the frozen hash's key/value columns.
``hash_level1.npy`` … ``hash_slots.npy``
    The perfect hash's frozen multiply-shift tables
    (:meth:`~repro.datastructures.perfect_hash.PerfectHashMap.
    frozen_arrays`): ``hash_level1`` is the ``(a, shift)`` pair,
    ``hash_level2_a`` / ``hash_level2_shift`` / ``hash_level2_offset``
    the per-bucket parameters, ``hash_slots`` the slot -> pair-index
    table.
``chains.npy``
    int64 ``(num_pois, height+1)`` compiled ancestor-chain matrix
    (:func:`~repro.core.compiled.chain_matrix`), ``-1``-padded.

Every member is ZIP_STORED, so each array's bytes sit contiguously at
a fixed file offset and :func:`open_oracle` can hand ``numpy.memmap``
views to the query tables; the OS page cache then shares one physical
copy across every serving process on the host.
"""

from __future__ import annotations

import io
import json
import os
import time
import warnings
import zipfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..datastructures.perfect_hash import PerfectHashMap, unpack_pair
from ..geodesic.engine import GeodesicEngine
from .compiled import CompiledOracle, chain_matrix
from .compressed_tree import CompressedPartitionTree, CompressedTreeNode
from .node_pairs import NodePairSet
from .oracle import SEOracle

__all__ = ["pack_oracle", "pack_document", "open_oracle", "StoredOracle",
           "STORE_VERSION", "file_signature", "oracle_sections",
           "section_layouts"]

PathLike = Union[str, os.PathLike]

STORE_VERSION = 4
_FORMAT_NAME = "repro-se-oracle"
_META_MEMBER = "meta.json"

_HASH_SECTIONS = {
    "hash_level1": "level1",
    "pair_keys": "keys",
    "pair_distances": "values",
    "hash_level2_a": "level2_a",
    "hash_level2_shift": "level2_shift",
    "hash_level2_offset": "level2_offset",
    "hash_slots": "slots",
}

_REQUIRED_SECTIONS = ("tree_table", "tree_radii", "chains",
                      *_HASH_SECTIONS)


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def _member_info(name: str) -> zipfile.ZipInfo:
    """A ZIP_STORED member header with a pinned timestamp.

    Packing the same oracle twice must produce byte-identical stores
    (the fixture and CI artifact diffs rely on it), so the member
    date_time is the DOS epoch rather than the wall clock.
    """
    info = zipfile.ZipInfo(name, date_time=(1980, 1, 1, 0, 0, 0))
    info.compress_type = zipfile.ZIP_STORED
    info.create_system = 3  # pinned (platform-dependent by default)
    info.external_attr = 0o644 << 16
    return info


def _write_store(path: PathLike, meta: Dict[str, Any],
                 sections: Dict[str, np.ndarray],
                 raw_members: Optional[Dict[str, bytes]] = None) -> None:
    """Write a v4 store; ``raw_members`` short-circuits serialization.

    ``raw_members`` maps a section name to the ready-made ``.npy``
    member bytes of a previous store generation — the incremental
    repack path: sections the flush left untouched flow straight from
    the old file into the new one.  Because the member format is fully
    deterministic (pinned timestamps, ZIP_STORED, canonical npy
    headers), the output is byte-identical to re-serializing.
    """
    raw_members = raw_members or {}
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        archive.writestr(_member_info(_META_MEMBER),
                         json.dumps(meta, sort_keys=True, indent=1))
        for name, array in sections.items():
            raw = raw_members.get(name)
            if raw is None:
                buffer = io.BytesIO()
                np.lib.format.write_array(
                    buffer, np.ascontiguousarray(array),
                    allow_pickle=False)
                raw = buffer.getvalue()
            archive.writestr(_member_info(name + ".npy"), raw)


def _tree_sections(tree: CompressedPartitionTree
                   ) -> Dict[str, np.ndarray]:
    table = np.empty((tree.num_nodes, 4), dtype=np.int64)
    radii = np.empty(tree.num_nodes, dtype=np.float64)
    for node in tree.nodes:
        table[node.node_id] = (
            node.center, node.layer,
            -1 if node.parent is None else node.parent, node.origin_id)
        radii[node.node_id] = node.radius
    return {"tree_table": table, "tree_radii": radii}


def _meta_document(*, epsilon: float, strategy: str, method: str,
                   seed: int, fingerprint: str, build: Dict[str, Any],
                   stats: Dict[str, Any],
                   tree: CompressedPartitionTree) -> Dict[str, Any]:
    return {
        "format": _FORMAT_NAME,
        "version": STORE_VERSION,
        "epsilon": epsilon,
        "strategy": strategy,
        "method": method,
        "seed": seed,
        "fingerprint": fingerprint,
        "build": dict(build),
        "stats": dict(stats),
        "tree": {
            "root_id": tree.root_id,
            "height": tree.height,
            "root_radius": tree.root_radius,
        },
    }


def oracle_sections(oracle: SEOracle) -> Dict[str, np.ndarray]:
    """A built oracle's complete v4 section set (compiling it if that
    has not happened yet): tree tables, compiled chains, frozen hash.

    Shared by :func:`pack_oracle` (one section set per store) and the
    tiled builder (one section set per tile, prefixed).
    """
    if not oracle.is_built:
        raise ValueError("cannot pack an unbuilt oracle")
    compiled = oracle.compiled()
    sections = _tree_sections(oracle.tree)
    sections["chains"] = compiled.chains
    frozen = oracle.pair_hash.frozen_arrays()
    for section, name in _HASH_SECTIONS.items():
        sections[section] = frozen[name]
    return sections


def _reusable_members(previous: PathLike,
                      sections: Dict[str, np.ndarray]
                      ) -> Dict[str, bytes]:
    """Raw ``.npy`` member bytes of ``previous`` for every section the
    new build left unchanged (same dtype/shape/values).

    The incremental-repack half of the sublinear flush: dirty sections
    serialize fresh, clean ones are copied byte-for-byte from the old
    generation — ``np.array_equal`` bails out at the first differing
    element, so comparing a dirty section costs almost nothing.
    """
    reusable: Dict[str, bytes] = {}
    try:
        _, old_sections = read_store(previous, mmap=True)
        with zipfile.ZipFile(previous) as archive:
            for name, array in sections.items():
                old = old_sections.get(name)
                if (old is None or old.dtype != array.dtype
                        or old.shape != array.shape
                        or not np.array_equal(old, array)):
                    continue
                reusable[name] = archive.read(name + ".npy")
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return {}  # unreadable / incompatible previous: full write
    return reusable


def pack_oracle(oracle: SEOracle, path: PathLike,
                canonical: bool = False,
                previous: Optional[PathLike] = None) -> Dict[str, Any]:
    """Write a built oracle as a format-v4 binary store.

    Compiles the oracle (chain matrix + frozen hash tables) if that has
    not happened yet — packing is the natural one-time cost point, so
    an :func:`open_oracle` load never pays it.

    ``canonical=True`` pins the meta document's wall-clock field
    (``stats.total_seconds``) to zero, so two builds of the *same*
    oracle content — e.g. an incremental flush and a from-scratch
    rebuild over the same live POI set — pack to byte-identical files.
    ``previous`` names an earlier store generation to splice unchanged
    section bytes from (see :func:`_reusable_members`); the output is
    byte-identical either way.  Returns a small report:
    ``{"sections": total, "reused": copied-from-previous}``.
    """
    from .serialize import workload_fingerprint
    sections = oracle_sections(oracle)
    meta = _meta_document(
        epsilon=oracle.epsilon, strategy=oracle.strategy,
        method=oracle.method, seed=oracle.seed,
        fingerprint=workload_fingerprint(oracle.engine),
        build={"executor": oracle.stats.executor,
               "jobs": oracle.stats.jobs},
        stats={"height": oracle.stats.height,
               "pairs_stored": oracle.stats.pairs_stored,
               "total_seconds": 0.0 if canonical
               else oracle.stats.total_seconds},
        tree=oracle.tree,
    )
    raw_members: Dict[str, bytes] = {}
    if previous is not None and os.path.exists(previous):
        raw_members = _reusable_members(previous, sections)
    _write_store(path, meta, sections, raw_members=raw_members)
    return {"sections": len(sections), "reused": len(raw_members)}


def pack_document(document: Dict[str, Any], path: PathLike) -> None:
    """Convert a parsed v1–v3 JSON document to a v4 store, losslessly.

    The JSON document is self-contained (tree + pairs + metadata), so
    no terrain engine is needed: the chain matrix is re-derived from
    the tree and the hash tables from the pair list with the stored
    seed — exactly what :func:`~repro.core.serialize.load_oracle`
    followed by :func:`pack_oracle` would produce.
    """
    from .serialize import _document_tree, _json_version_guard
    _json_version_guard(document, source="pack_document")
    tree = _document_tree(document)
    num_pois = len(tree.leaf_of_poi)
    from ..datastructures.perfect_hash import pack_pair
    entries = [(pack_pair(a, b), distance)
               for a, b, distance in document["pairs"]]
    pair_hash = PerfectHashMap(entries, seed=document["seed"])
    sections = _tree_sections(tree)
    sections["chains"] = chain_matrix(tree, num_pois)
    frozen = pair_hash.frozen_arrays()
    for section, name in _HASH_SECTIONS.items():
        sections[section] = frozen[name]
    stats = document.get("stats", {})
    meta = _meta_document(
        epsilon=document["epsilon"], strategy=document["strategy"],
        method=document["method"], seed=document["seed"],
        fingerprint=document["fingerprint"],
        build=document.get("build", {"executor": "serial", "jobs": 1}),
        stats={"height": stats.get("height", tree.height),
               "pairs_stored": stats.get("pairs_stored", len(entries)),
               "total_seconds": stats.get("total_seconds", 0.0)},
        tree=tree,
    )
    _write_store(path, meta, sections)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def _member_layout(handle, info: zipfile.ZipInfo
                   ) -> Tuple[int, np.dtype, Tuple[int, ...], bool]:
    """Payload layout ``(offset, dtype, shape, fortran)`` of one
    ZIP_STORED npy member.

    A ZIP_STORED member's bytes sit verbatim at a fixed offset: skip
    the local file header (30 bytes + name + extra, read from the
    header itself — the central directory copy can differ), parse the
    npy header, and report where the raw array bytes start.
    """
    handle.seek(info.header_offset)
    local = handle.read(30)
    name_length = int.from_bytes(local[26:28], "little")
    extra_length = int.from_bytes(local[28:30], "little")
    handle.seek(info.header_offset + 30 + name_length + extra_length)
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
    else:  # pragma: no cover - we only ever write 1.0/2.0 headers
        raise ValueError(f"unsupported npy header version {version}")
    return handle.tell(), dtype, shape, fortran


def _mmap_member(path: PathLike, handle,
                 info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one ZIP_STORED npy member in place."""
    offset, dtype, shape, fortran = _member_layout(handle, info)
    return np.memmap(path, dtype=dtype, mode="r", offset=offset,
                     shape=shape, order="F" if fortran else "C")


def section_layouts(path: PathLike
                    ) -> Tuple[Dict[str, Any],
                               Dict[str, Tuple[int, np.dtype,
                                               Tuple[int, ...]]]]:
    """``(meta, layouts)`` where ``layouts`` maps each section name to
    the absolute file ``(offset, dtype, shape)`` of its raw array
    bytes — what the paged backend reads pages from, in place of a
    whole-section mmap.  Only ZIP_STORED members have an in-place
    layout; a compressed member raises (the paged backend cannot seek
    into a deflate stream).
    """
    layouts: Dict[str, Tuple[int, np.dtype, Tuple[int, ...]]] = {}
    with open(path, "rb") as handle:
        with zipfile.ZipFile(handle) as archive:
            meta = _read_meta_member(archive, path)
            for info in archive.infolist():
                if not info.filename.endswith(".npy"):
                    continue
                name = info.filename[:-4]
                if info.compress_type != zipfile.ZIP_STORED:
                    raise ValueError(
                        f"{path}: section {name} is compressed; "
                        "paged access needs ZIP_STORED members")
                offset, dtype, shape, fortran = _member_layout(
                    handle, info)
                if fortran:  # pragma: no cover - we only write C order
                    raise ValueError(
                        f"{path}: section {name} is Fortran-ordered")
                layouts[name] = (offset, dtype, shape)
    return meta, layouts


def _read_meta_member(archive: zipfile.ZipFile,
                      path: PathLike) -> Dict[str, Any]:
    """Read + validate the meta member (format name and version)."""
    try:
        meta = json.loads(archive.read(_META_MEMBER))
    except KeyError:
        raise ValueError(
            f"{path}: no {_META_MEMBER} member; not an oracle store"
        ) from None
    if meta.get("format") != _FORMAT_NAME:
        raise ValueError(f"{path}: not a serialized SE oracle store")
    if meta.get("version") != STORE_VERSION:
        raise ValueError(
            f"{path}: unsupported store version {meta.get('version')}")
    return meta


def read_store(path: PathLike, mmap: bool = True
               ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Raw access: the meta document plus every section array.

    The returned meta gains a ``sections`` entry recording, per
    section, whether it was handed out as a zero-copy mmap
    (``{"zero_copy": bool}``).  A compressed (non-ZIP_STORED) member
    cannot be mapped in place; when ``mmap`` was requested and one is
    found the eager fallback is no longer silent — one
    ``RuntimeWarning`` names the affected sections.
    """
    sections: Dict[str, np.ndarray] = {}
    section_meta: Dict[str, Dict[str, bool]] = {}
    with open(path, "rb") as handle:
        with zipfile.ZipFile(handle) as archive:
            meta = _read_meta_member(archive, path)
            for info in archive.infolist():
                if not info.filename.endswith(".npy"):
                    continue
                name = info.filename[:-4]
                if mmap and info.compress_type == zipfile.ZIP_STORED:
                    sections[name] = _mmap_member(path, handle, info)
                    section_meta[name] = {"zero_copy": True}
                else:
                    with archive.open(info.filename) as member:
                        sections[name] = np.lib.format.read_array(
                            member, allow_pickle=False)
                    section_meta[name] = {"zero_copy": False}
    meta["sections"] = section_meta
    if mmap:
        eager = sorted(name for name, info in section_meta.items()
                       if not info["zero_copy"])
        if eager:
            warnings.warn(
                f"{path}: sections {eager} are compressed and were "
                "loaded eagerly (no zero-copy mmap); repack with "
                "pack_oracle for in-place serving",
                RuntimeWarning, stacklevel=2)
    if "tiles" not in meta:  # tiled stores keep sections per tile
        missing = [name for name in _REQUIRED_SECTIONS
                   if name not in sections]
        if missing:
            raise ValueError(
                f"{path}: store is missing sections {missing}")
    return meta, sections


def file_signature(path: PathLike) -> Optional[Tuple[int, int, int]]:
    """A cheap identity of the store *file generation*: ``(inode,
    size, mtime_ns)``.

    The atomic repack path publishes a new store by ``os.replace`` —
    a fresh inode — so comparing signatures is how long-lived readers
    notice a new generation without re-reading ``meta.json``.  Returns
    ``None`` when the file is (transiently) absent.
    """
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_ino, stat.st_size, stat.st_mtime_ns)


def read_store_meta(path: PathLike) -> Dict[str, Any]:
    """Only the meta document — no array section is touched.

    Validates format name *and* version, so a registration that
    succeeds is a store :func:`open_oracle` can actually serve.
    """
    with zipfile.ZipFile(path) as archive:
        return _read_meta_member(archive, path)


class _MappedPairSet(NodePairSet):
    """A :class:`NodePairSet` over the store's mapped key/distance
    columns.

    The per-pair Python dict is exactly the reconstruction cost the
    store exists to avoid, and the rehydrated oracle's query path
    never touches it (queries go through the frozen pair hash) — so
    it materialises lazily, on the first access to ``pairs`` /
    ``distance_of`` (e.g. ``covering_pair`` or a JSON re-save).
    """

    def __init__(self, keys: np.ndarray, distances: np.ndarray,
                 epsilon: float):
        # Deliberately skips the dataclass __init__: `pairs` is the
        # lazy property below, `considered`/`epsilon` plain attributes.
        self._keys = keys
        self._distances = distances
        self._pairs: Optional[Dict[Tuple[int, int], float]] = None
        self.considered = int(keys.shape[0])
        self.epsilon = epsilon

    @property
    def pairs(self) -> Dict[Tuple[int, int], float]:
        if self._pairs is None:
            self._pairs = {
                unpack_pair(int(key)): float(distance)
                for key, distance in zip(
                    np.asarray(self._keys).tolist(),
                    np.asarray(self._distances).tolist())
            }
        return self._pairs

    def __len__(self) -> int:
        return int(self._keys.shape[0])


@dataclass
class StoredOracle:
    """An opened v4 store: compiled query tables + build metadata.

    The compiled tables are live immediately (queries need no engine);
    :meth:`to_oracle` rehydrates a full :class:`~repro.core.oracle.
    SEOracle` against a terrain engine when the scalar/tree API is
    needed — e.g. for a binary -> JSON conversion.
    """

    path: str
    epsilon: float
    strategy: str
    method: str
    seed: int
    fingerprint: str
    build: Dict[str, Any]
    stats: Dict[str, Any]
    tree_meta: Dict[str, Any]
    compiled: CompiledOracle
    load_seconds: float
    _sections: Dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    #: file generation the maps were opened from (None: unknown)
    stat_signature: Optional[Tuple[int, int, int]] = None

    def is_stale(self) -> bool:
        """True when the store file on disk is a newer generation than
        the one these tables were mapped from.

        A replaced file (atomic repack = ``os.replace`` = new inode)
        flips this; the old maps stay valid — POSIX keeps the mapped
        inode alive — so in-flight queries finish on the old
        generation while the caller re-opens the new one.  A missing
        file is *not* stale: there is nothing newer to re-map.
        """
        if self.stat_signature is None:
            return False
        current = file_signature(self.path)
        return current is not None and current != self.stat_signature

    @property
    def num_pois(self) -> int:
        return self.compiled.num_pois

    @property
    def num_pairs(self) -> int:
        return int(self._sections["pair_keys"].shape[0])

    @property
    def height(self) -> int:
        return self.compiled.height

    @property
    def supports_updates(self) -> bool:
        """``DistanceIndex`` flag: a mapped store is immutable — the
        serving layer wraps it in a dynamic overlay for updates."""
        return False

    @property
    def is_compiled(self) -> bool:
        return True

    # Queries delegate to the compiled tables (bit-identical to the
    # scalar SEOracle.query by the compiled oracle's contract).
    def query(self, source: int, target: int) -> float:
        return self.compiled.query(source, target)

    def query_batch(self, sources, targets) -> np.ndarray:
        return self.compiled.query_batch(sources, targets)

    def query_matrix(self, pois=None) -> np.ndarray:
        return self.compiled.query_matrix(pois)

    def size_bytes(self) -> int:
        """The store's on-disk footprint."""
        return os.path.getsize(self.path)

    def check_fingerprint(self, engine: GeodesicEngine) -> None:
        """Raise unless the store was packed for ``engine``'s workload."""
        from .serialize import workload_fingerprint
        if self.fingerprint != workload_fingerprint(engine):
            raise ValueError(
                f"{self.path}: oracle was built for a different workload "
                "(terrain / POIs / Steiner density mismatch)"
            )

    def tree(self) -> CompressedPartitionTree:
        """Rebuild the compressed partition tree from the table section."""
        table = np.asarray(self._sections["tree_table"])
        radii = np.asarray(self._sections["tree_radii"])
        nodes = []
        for node_id in range(table.shape[0]):
            center, layer, parent, origin = (int(v) for v in table[node_id])
            nodes.append(CompressedTreeNode(
                node_id=node_id, center=center, layer=layer,
                radius=float(radii[node_id]),
                parent=None if parent == -1 else parent,
                origin_id=origin,
            ))
        for node in nodes:
            if node.parent is not None:
                nodes[node.parent].children.append(node.node_id)
        return CompressedPartitionTree(
            nodes=nodes,
            root_id=self.tree_meta["root_id"],
            height=self.tree_meta["height"],
            root_radius=self.tree_meta["root_radius"],
        )

    def to_oracle(self, engine: GeodesicEngine,
                  strict: bool = True) -> SEOracle:
        """Full :class:`SEOracle` over ``engine`` (tree + pairs + hash).

        The pair hash is the store's frozen map, so batch queries keep
        running off the mapped tables; the scalar hash structures and
        the per-pair dict both materialise lazily, on first scalar
        probe / ``pairs`` access — rehydration itself stays O(tree),
        not O(#pairs).
        """
        if strict:
            self.check_fingerprint(engine)
        pair_set = _MappedPairSet(self._sections["pair_keys"],
                                  self._sections["pair_distances"],
                                  self.epsilon)
        oracle = SEOracle(engine, self.epsilon, strategy=self.strategy,
                          method=self.method, seed=self.seed)
        oracle._tree = self.tree()
        oracle._pair_set = pair_set
        oracle._pair_hash = self.compiled.pair_hash
        oracle._compiled = self.compiled
        oracle._built = True
        oracle.stats.height = self.stats.get("height", 0)
        oracle.stats.pairs_stored = self.stats.get("pairs_stored",
                                                   len(pair_set))
        oracle.stats.total_seconds = self.stats.get("total_seconds", 0.0)
        oracle.stats.executor = self.build.get("executor", "serial")
        oracle.stats.jobs = self.build.get("jobs", 1)
        return oracle


def open_oracle(path: PathLike, engine: Optional[GeodesicEngine] = None,
                strict: bool = True, mmap: bool = True,
                max_resident_tiles: Optional[int] = None,
                max_resident_bytes: Optional[int] = None):
    """Open a v4 store with memory-mapped query tables.

    Returns a :class:`StoredOracle` — or, when the store's meta
    carries a tile directory (``python -m repro build --tiles``), a
    :class:`~repro.core.tiled.TiledOracle` whose tile tables page
    lazily; or, with ``max_resident_bytes``, a
    :class:`~repro.core.paged.PagedOracle` that pages the pair/hash
    columns through a bounded pool.  All serve the ``DistanceIndex``
    protocol.

    Parameters
    ----------
    path:
        File written by :func:`pack_oracle` / :func:`pack_document` /
        :func:`~repro.core.tiled.pack_tiled`.
    engine:
        Optional workload to validate against (``strict``).  Serving
        processes that trust their terrain registry pass ``None`` and
        skip the mesh hash entirely — the whole point of the store is
        that queries never need the terrain.
    strict:
        With ``engine``: raise on a workload fingerprint mismatch.
    mmap:
        Map sections read-only straight off disk (default).  ``False``
        reads copies instead — only useful when the file will be
        replaced while open.
    max_resident_tiles:
        Tiled stores only: bound on concurrently resident tile tables
        (``None``: unbounded).  Ignored for monolithic stores.
    max_resident_bytes:
        Monolithic stores only: serve the O(#pairs) pair/hash columns
        through a fixed-size page pool of at most this many bytes
        instead of whole-section mmaps (``None``: unbounded mmaps).
        Queries are bit-identical at any bound.  Tiled stores page at
        tile granularity — combining both is an error.
    """
    started = time.perf_counter()
    signature = file_signature(path)
    if "tiles" in read_store_meta(path):
        if max_resident_bytes is not None:
            raise ValueError(
                f"{path}: tiled stores page at tile granularity; use "
                "max_resident_tiles instead of max_resident_bytes")
        from .tiled import open_tiled_oracle
        stored = open_tiled_oracle(
            path, mmap=mmap, max_resident_tiles=max_resident_tiles)
        if engine is not None and strict:
            stored.check_fingerprint(engine)
        return stored
    if max_resident_bytes is not None:
        from .paged import PagedOracle
        paged = PagedOracle(path, max_resident_bytes=max_resident_bytes)
        if engine is not None and strict:
            paged.check_fingerprint(engine)
        return paged
    meta, sections = read_store(path, mmap=mmap)
    pair_hash = PerfectHashMap.from_frozen(
        sections["pair_keys"], sections["pair_distances"],
        sections["hash_level1"], sections["hash_level2_a"],
        sections["hash_level2_shift"], sections["hash_level2_offset"],
        sections["hash_slots"], seed=meta["seed"],
    )
    compiled = CompiledOracle(sections["chains"], pair_hash,
                              meta["epsilon"])
    # Surface the zero-copy ledger: sections that could not be mapped
    # in place (compressed members) are a serving-performance smell.
    stats = dict(meta.get("stats", {}))
    stats["non_zero_copy_sections"] = sorted(
        name for name, info in meta.get("sections", {}).items()
        if not info.get("zero_copy", True))
    stored = StoredOracle(
        path=os.fspath(path),
        epsilon=meta["epsilon"],
        strategy=meta["strategy"],
        method=meta["method"],
        seed=meta["seed"],
        fingerprint=meta["fingerprint"],
        build=meta.get("build", {}),
        stats=stats,
        tree_meta=meta["tree"],
        compiled=compiled,
        load_seconds=0.0,
        _sections=sections,
        stat_signature=signature,
    )
    # Captured before the (optional) fingerprint check: load_seconds
    # reports the open itself, not the cost of hashing the terrain.
    stored.load_seconds = time.perf_counter() - started
    if engine is not None and strict:
        stored.check_fingerprint(engine)
    return stored
