"""Arbitrary-point-to-arbitrary-point (A2A) oracle — Appendix C / D.

The A2A oracle is "the same as [SE] except that it takes some Steiner
points introduced as input instead of all POIs": build SE over a set of
fixed *sites* spread over every face (here: the mesh vertices plus the
per-edge Steiner points of the [12]-style placement), then answer a
query between arbitrary surface points ``s`` and ``t`` as

    min over p in N(s), q in N(t) of  d(s, p) + d~(p, q) + d(q, t)

where ``N(x)`` is the set of sites on the face containing ``x`` and its
adjacent faces, ``d~`` is the SE oracle estimate and ``d(s, p)`` is the
local (Euclidean) hop onto the site grid.

The same construction answers P2P queries when ``n > N`` (Appendix D):
the oracle is POI-independent, so a million POIs cost nothing at build
time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..geodesic.engine import GeodesicEngine
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POI, POISet
from .oracle import SEOracle

__all__ = ["A2AOracle", "build_site_pois"]


def build_site_pois(mesh: TriangleMesh, sites_per_edge: int = 1) -> POISet:
    """The A2A site set: every mesh vertex plus per-edge Steiner sites.

    ``sites_per_edge`` controls A2A accuracy the way [12]'s Steiner
    density does; 1-2 suffices for the ε values the paper sweeps.
    """
    sites, _ = _build_sites_with_faces(mesh, sites_per_edge)
    return sites


def _build_sites_with_faces(mesh: TriangleMesh, sites_per_edge: int
                            ) -> Tuple[POISet, Dict[int, List[int]]]:
    """Build the site set together with the per-face site table."""
    if sites_per_edge < 0:
        raise ValueError("sites_per_edge must be non-negative")
    pois: List[POI] = []
    sites_of_face: Dict[int, List[int]] = {}

    def register(index: int, face_ids: Sequence[int]) -> None:
        for face_id in face_ids:
            sites_of_face.setdefault(face_id, []).append(index)

    vertex_faces = mesh.vertex_faces
    for vertex_id in range(mesh.num_vertices):
        incident = vertex_faces[vertex_id]
        if not incident:
            continue
        register(len(pois), incident)
        pois.append(POI(index=len(pois),
                        position=tuple(float(c)
                                       for c in mesh.vertices[vertex_id]),
                        face_id=incident[0], vertex_id=vertex_id))
    if sites_per_edge > 0:
        fractions = np.arange(1, sites_per_edge + 1) / (sites_per_edge + 1)
        edge_faces = mesh.edge_faces
        for (u, v) in mesh.edges:
            incident = edge_faces[(u, v)]
            start, end = mesh.vertices[u], mesh.vertices[v]
            for fraction in fractions:
                position = start + fraction * (end - start)
                register(len(pois), incident)
                pois.append(POI(index=len(pois),
                                position=tuple(float(c) for c in position),
                                face_id=incident[0]))
    site_set = POISet(pois)
    if len(site_set) != len(pois):
        raise RuntimeError("site positions collided; degenerate mesh?")
    return site_set, sites_of_face


class A2AOracle:
    """ε-approximate distance oracle for arbitrary surface points.

    Parameters
    ----------
    mesh:
        Terrain surface.
    epsilon:
        Error parameter of the underlying SE oracle.
    sites_per_edge:
        Density of the site grid the SE oracle indexes.
    points_per_edge:
        Steiner density of the geodesic metric graph.
    strategy / seed / jobs:
        Passed through to :class:`~repro.core.oracle.SEOracle`; A2A
        site sets are large (every vertex + edge site becomes a POI),
        which makes ``jobs`` especially worthwhile here.
    """

    def __init__(self, mesh: TriangleMesh, epsilon: float,
                 sites_per_edge: int = 1, points_per_edge: int = 1,
                 strategy: str = "random", seed: int = 0, jobs: int = 1):
        self._mesh = mesh
        self.epsilon = epsilon
        # A site belongs to every face incident to it (vertices to their
        # star, edge sites to both edge faces).
        self._sites, self._sites_of_face = _build_sites_with_faces(
            mesh, sites_per_edge)
        self._engine = GeodesicEngine(mesh, self._sites,
                                      points_per_edge=points_per_edge)
        self._oracle = SEOracle(self._engine, epsilon, strategy=strategy,
                                seed=seed, jobs=jobs)
        self._built = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def build(self) -> "A2AOracle":
        self._oracle.build()
        # A2A queries minimise over a site-neighbourhood product per
        # query; compiling the SE oracle up front lets every product be
        # answered as one query_batch instead of a Python double loop.
        self._oracle.compiled()
        self._built = True
        return self

    @property
    def is_built(self) -> bool:
        return self._built

    @property
    def se_oracle(self) -> SEOracle:
        return self._oracle

    @property
    def engine(self) -> GeodesicEngine:
        """The build-time engine (its counters stay at rest during
        queries: A2A answers go through the compiled tables only)."""
        return self._engine

    @property
    def num_sites(self) -> int:
        return len(self._sites)

    @property
    def stats(self):
        return self._oracle.stats

    def size_bytes(self) -> int:
        """Oracle size: SE index + the per-face site table."""
        table = sum(len(sites) for sites in self._sites_of_face.values())
        return self._oracle.size_bytes() + 8 * table

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def neighborhood(self, x: float, y: float) -> List[int]:
        """``N(s)``: site indices on the containing + adjacent faces."""
        face_id = self._mesh.locate_face(x, y)
        if face_id < 0:
            raise ValueError(f"({x}, {y}) is outside the terrain")
        sites: List[int] = []
        seen = set()
        for adjacent in self._mesh.faces_adjacent_to(face_id):
            for site in self._sites_of_face.get(adjacent, ()):
                if site not in seen:
                    seen.add(site)
                    sites.append(site)
        return sites

    def query(self, source_xy: Tuple[float, float],
              target_xy: Tuple[float, float]) -> float:
        """ε-approximate geodesic distance between two surface points.

        Points are given by planar coordinates and lifted onto the
        surface (the paper's A2A query generation).
        """
        if not self._built:
            raise RuntimeError("oracle not built; call build() first")
        return self._best_through_sites(self._site_hops(source_xy),
                                        self._site_hops(target_xy))

    def _site_hops(self, xy: Tuple[float, float]
                   ) -> List[Tuple[float, int]]:
        """``N(x)`` as ``(hop distance, site)`` pairs, hop-sorted."""
        x, y = float(xy[0]), float(xy[1])
        point = self._lift(x, y)
        positions = self._sites.positions
        return sorted((_euclid(point, positions[s]), s)
                      for s in self.neighborhood(x, y))

    def _best_through_sites(self, hops_s, hops_t) -> float:
        """``min d(s,p) + d~(p,q) + d(q,t)`` over two hop-sorted site sets.

        The full neighbourhood product goes through one compiled
        ``query_batch`` — ``|N(s)| · |N(t)|`` SE lookups vectorised —
        and the minimum is taken over ``(hop_s + d~) + hop_t``, the
        same left-to-right float association the scalar scan used, so
        results are bit-identical to the pruned double loop (pruning
        only ever skipped combinations that could not win).  Returns
        ``inf`` when either neighbourhood is empty.
        """
        if not hops_s or not hops_t:
            return math.inf
        hop_s = np.array([hop for hop, _ in hops_s])
        hop_t = np.array([hop for hop, _ in hops_t])
        sites_s = np.array([site for _, site in hops_s], dtype=np.intp)
        sites_t = np.array([site for _, site in hops_t], dtype=np.intp)
        compiled = self._oracle.compiled()
        through = compiled.query_batch(
            np.repeat(sites_s, sites_t.size),
            np.tile(sites_t, sites_s.size),
        ).reshape(sites_s.size, sites_t.size)
        totals = (hop_s[:, None] + through) + hop_t[None, :]
        return float(totals.min())

    def query_many(self, pairs_xy: Sequence[Tuple[Tuple[float, float],
                                                  Tuple[float, float]]]
                   ) -> List[float]:
        """Batched A2A queries.

        Surface lifts and site neighbourhoods are resolved per distinct
        endpoint (shared across pairs touching the same planar point),
        then each pair runs the usual hop + SE-oracle minimisation.
        """
        if not self._built:
            raise RuntimeError("oracle not built; call build() first")
        hops_cache: Dict[Tuple[float, float], List[Tuple[float, int]]] = {}

        def hops_of(xy) -> List[Tuple[float, int]]:
            key = (float(xy[0]), float(xy[1]))
            if key not in hops_cache:
                hops_cache[key] = self._site_hops(key)
            return hops_cache[key]

        return [self._best_through_sites(hops_of(source_xy),
                                         hops_of(target_xy))
                for source_xy, target_xy in pairs_xy]

    def query_p2p(self, pois: POISet, source: int, target: int) -> float:
        """P2P query through the POI-independent oracle (Appendix D)."""
        source_poi = pois[source]
        target_poi = pois[target]
        return self.query((source_poi.x, source_poi.y),
                          (target_poi.x, target_poi.y))

    def p2p_index(self, pois: POISet):
        """This oracle bound to a POI set as a ``DistanceIndex``.

        The Appendix D workload (``n > N``: POIs are free at build
        time) as a protocol object — id-based query/query_batch/
        query_matrix over :meth:`query_p2p` via
        :class:`~repro.core.index.P2PIndexAdapter`.
        """
        from .index import P2PIndexAdapter
        if not self._built:
            raise RuntimeError("oracle not built; call build() first")
        return P2PIndexAdapter(self, pois)

    def _lift(self, x: float, y: float) -> np.ndarray:
        point = self._mesh.project_onto_surface(x, y)
        if point is None:
            raise ValueError(f"({x}, {y}) is outside the terrain")
        return point


def _euclid(a: np.ndarray, b: np.ndarray) -> float:
    delta = a - b
    return float(math.sqrt(float(delta @ delta)))
