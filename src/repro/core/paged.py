"""Out-of-core paged query backend: bounded resident memory.

:func:`~repro.core.store.open_oracle` hands whole-section
``numpy.memmap`` views to :class:`~repro.core.compiled.CompiledOracle`
— convenient, but a hot ``query_batch`` can touch the entire packed
pair columns, so the resident set grows with store size rather than
with the working set.  :class:`PagedOracle` answers the same queries
against the same v4 store through a **fixed-size page pool**:

* the O(#pairs) columns — ``pair_keys``, ``pair_distances``,
  ``hash_level2_a/shift/offset``, ``hash_slots`` — are never mapped.
  Each batch probe is an element *gather*: candidate indices are
  grouped by page (``numpy.argsort`` over page ids) so every resident
  page is touched exactly once per gather, pages load with
  ``read(page_bytes)`` at the section's fixed file offset, and an LRU
  bounds how many stay resident;
* the small routing state — the ancestor-chain matrix and its derived
  key planes, the tree tables, the two level-1 hash scalars — loads
  once at open (O(n·h) bytes, independent of the pair count) and is
  accounted separately as ``fixed_bytes``;
* the probe **arithmetic** is byte-for-byte the compiled oracle's:
  the inner engine *is* a :class:`CompiledOracle` whose frozen pair
  table has been swapped for a paged gather layer
  (:class:`_PagedPairTable` reproduces
  :meth:`~repro.datastructures.perfect_hash.PerfectHashMap.get_batch`
  exactly, element accesses routed through the pool).  Because paging
  only changes *where* an element's bytes come from — never which
  element is read — results are bit-identical to the mmap'd
  ``CompiledOracle`` at any pool bound, down to a single page.

The ledger mirrors the tiled oracle's
(:meth:`~repro.core.tiled.TiledOracle.tile_counters`): page
``loads`` / ``evictions`` / ``hits`` reconcile as
``loads - evictions == resident_pages``, and
``resident_bytes`` / ``peak_resident_bytes`` never exceed the
configured pool budget.  ``benchmarks/bench_paged.py`` gates both the
equivalence and the memory ceiling in CI.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .compiled import CompiledOracle
from .store import PathLike, file_signature, section_layouts

__all__ = ["PagedOracle", "DEFAULT_PAGE_BYTES", "PAGED_SECTIONS"]

#: Default page size: 64 KiB — large enough that sequential gathers
#: amortise the seek, small enough that tiny pool budgets still hold
#: several pages.
DEFAULT_PAGE_BYTES = 64 * 1024

#: The store sections that page through the pool — exactly the
#: O(#pairs) columns ``PerfectHashMap.get_batch`` probes.  Everything
#: else is O(n·h) routing state and loads once at open.
PAGED_SECTIONS = ("pair_keys", "pair_distances", "hash_level2_a",
                  "hash_level2_shift", "hash_level2_offset",
                  "hash_slots")

_RESIDENT_SECTIONS = ("tree_table", "tree_radii", "chains",
                      "hash_level1")


class _PagePool:
    """LRU pool of fixed-size pages over a store file's flat sections.

    One pool serves every paged section; the page key is
    ``(section, page_number)``.  ``gather`` is the only read path:
    element indices are sorted by page id so each distinct page is
    located (and, on a miss, loaded) exactly once per call, whatever
    order the probe produced the indices in.
    """

    def __init__(self, path: PathLike,
                 layouts: Dict[str, Tuple[int, np.dtype,
                                          Tuple[int, ...]]],
                 page_bytes: int, max_pages: int):
        if page_bytes < 8 or page_bytes % 8:
            raise ValueError("page_bytes must be a positive multiple "
                             "of 8 (all paged sections are 8-byte "
                             "elements)")
        if max_pages < 1:
            raise ValueError("page pool needs at least one page")
        self.page_bytes = int(page_bytes)
        self.max_pages = int(max_pages)
        self._handle = open(path, "rb")
        self._geometry: Dict[str, Tuple[int, np.dtype, int, int]] = {}
        for name in PAGED_SECTIONS:
            offset, dtype, shape = layouts[name]
            total = int(np.prod(shape, dtype=np.int64)) if shape else 1
            per_page = max(1, self.page_bytes // dtype.itemsize)
            self._geometry[name] = (offset, dtype, total, per_page)
        self._pages: "OrderedDict[Tuple[str, int], np.ndarray]" = \
            OrderedDict()
        self._lock = threading.RLock()
        self.loads = 0
        self.evictions = 0
        self.hits = 0
        self.resident_bytes = 0
        self.peak_resident_bytes = 0

    def close(self) -> None:
        with self._lock:
            self._pages.clear()
            self.resident_bytes = 0
            if not self._handle.closed:
                self._handle.close()

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def gather(self, section: str, indices: np.ndarray) -> np.ndarray:
        """``section_array[indices]`` with page-grouped access.

        ``indices`` must be in-range element indices (any integer
        dtype).  The result dtype is the section's; the element order
        matches ``indices`` — only the *access* order is grouped, so
        the gather is value-equal to a fancy-index on the full array.
        """
        flat = np.ascontiguousarray(indices, dtype=np.int64)
        offset, dtype, total, per_page = self._geometry[section]
        out = np.empty(flat.shape[0], dtype=dtype)
        if flat.shape[0] == 0:
            return out
        page_ids = flat // per_page
        order = np.argsort(page_ids, kind="stable")
        sorted_ids = page_ids[order]
        cuts = np.flatnonzero(np.diff(sorted_ids)) + 1
        with self._lock:
            for group in np.split(order, cuts):
                page_no = int(page_ids[group[0]])
                page = self._page(section, page_no)
                out[group] = page[flat[group] - page_no * per_page]
        return out

    def _page(self, section: str, page_no: int) -> np.ndarray:
        key = (section, page_no)
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.hits += 1
            return page
        offset, dtype, total, per_page = self._geometry[section]
        start = page_no * per_page
        count = min(per_page, total - start)
        self._handle.seek(offset + start * dtype.itemsize)
        raw = self._handle.read(count * dtype.itemsize)
        if len(raw) != count * dtype.itemsize:  # pragma: no cover
            raise ValueError(
                f"short read paging {section} page {page_no}")
        page = np.frombuffer(raw, dtype=dtype)
        while len(self._pages) >= self.max_pages:
            _, evicted = self._pages.popitem(last=False)
            self.resident_bytes -= evicted.nbytes
            self.evictions += 1
        self._pages[key] = page
        self.resident_bytes += page.nbytes
        self.peak_resident_bytes = max(self.peak_resident_bytes,
                                       self.resident_bytes)
        self.loads += 1
        return page


class _PagedPairTable:
    """Frozen-pair-table stand-in whose element reads page on demand.

    Reproduces :meth:`PerfectHashMap.get_batch` operation for
    operation — same dtypes, same multiply-shift arithmetic, same
    guarded-miss handling — with each table access routed through
    :meth:`_PagePool.gather`.  ``CompiledOracle`` only ever calls
    ``get_batch`` and ``_freeze`` on its pair table, so this duck-type
    is a complete drop-in.
    """

    def __init__(self, pool: _PagePool, level1: np.ndarray,
                 num_pairs: int):
        self._pool = pool
        self._level1_a = np.uint64(level1[0])
        self._level1_shift = np.uint64(level1[1])
        self._n = int(num_pairs)

    def _freeze(self) -> None:
        """No-op: the tables are already frozen on disk."""

    def get_batch(self, keys, default: float = float("nan")
                  ) -> np.ndarray:
        key_array = np.asarray(keys, dtype=np.uint64)
        if self._n == 0:
            return np.full(key_array.shape, default, dtype=np.float64)
        flat = np.ascontiguousarray(key_array).reshape(-1)
        bucket = ((self._level1_a * flat)
                  >> self._level1_shift).astype(np.int64)
        a = self._pool.gather("hash_level2_a", bucket)
        shift = self._pool.gather("hash_level2_shift", bucket)
        offset = self._pool.gather("hash_level2_offset", bucket)
        slot = ((a * flat) >> shift).astype(np.int64)
        index = self._pool.gather("hash_slots", offset + slot)
        guarded = np.where(index >= 0, index, 0)
        found = ((index >= 0)
                 & (self._pool.gather("pair_keys", guarded) == flat))
        result = np.where(found,
                          self._pool.gather("pair_distances", guarded),
                          np.float64(default))
        return result.reshape(key_array.shape)

    def size_bytes(self, value_bytes: int = 8) -> int:
        """Same byte model as the frozen hash (on-disk columns)."""
        _, _, slots, _ = self._pool._geometry["hash_slots"]
        return 8 * slots + (8 + value_bytes) * self._n


def _read_section(handle, layout: Tuple[int, np.dtype, Tuple[int, ...]]
                  ) -> np.ndarray:
    offset, dtype, shape = layout
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    handle.seek(offset)
    raw = handle.read(count * dtype.itemsize)
    return np.frombuffer(raw, dtype=dtype).reshape(shape)


class PagedOracle:
    """A v4 store served through a bounded page pool.

    Implements ``DistanceIndex`` (``query`` / ``query_batch`` /
    ``query_matrix``) with the resident footprint of the pair/hash
    columns capped at ``max_resident_bytes`` (or an explicit
    ``page_bytes`` × ``max_pages`` pool shape).  Bit-identical to the
    mmap'd :class:`~repro.core.compiled.CompiledOracle` at any bound.

    Thread-safe: the pool serialises gathers behind an ``RLock``, so
    concurrent service workers share one pool the same way they share
    one tiled-store LRU.
    """

    def __init__(self, path: PathLike, *,
                 max_resident_bytes: Optional[int] = None,
                 page_bytes: Optional[int] = None,
                 max_pages: Optional[int] = None):
        started = time.perf_counter()
        if page_bytes is None:
            if max_resident_bytes is not None:
                if max_resident_bytes < 8:
                    raise ValueError(
                        "max_resident_bytes must be at least 8 "
                        "(one 8-byte element)")
                # Split the budget into at least 8 pages: one probe
                # round gathers from all six paged sections, so a pool
                # with fewer pages than sections evicts *within* every
                # round and can never hit.
                page_bytes = max(8, min(DEFAULT_PAGE_BYTES,
                                        max_resident_bytes // 8 // 8 * 8))
            else:
                page_bytes = DEFAULT_PAGE_BYTES
        if max_pages is None:
            if max_resident_bytes is not None:
                max_pages = max(1, max_resident_bytes // page_bytes)
            else:
                max_pages = 1 << 30  # effectively unbounded
        self.path = os.fspath(path)
        self.stat_signature = file_signature(path)
        meta, layouts = section_layouts(path)
        if "tiles" in meta:
            raise ValueError(
                f"{path}: tiled stores page at tile granularity; "
                "open with max_resident_tiles instead")
        missing = [name for name in (*_RESIDENT_SECTIONS,
                                     *PAGED_SECTIONS)
                   if name not in layouts]
        if missing:
            raise ValueError(
                f"{path}: store is missing sections {missing}")
        self.epsilon = meta["epsilon"]
        self.strategy = meta["strategy"]
        self.method = meta["method"]
        self.seed = meta["seed"]
        self.fingerprint = meta["fingerprint"]
        self.build: Dict[str, Any] = meta.get("build", {})
        self.stats: Dict[str, Any] = dict(meta.get("stats", {}))
        self.tree_meta: Dict[str, Any] = meta["tree"]
        self._num_pairs = int(layouts["pair_keys"][2][0])

        self._pool = _PagePool(path, layouts, page_bytes, max_pages)
        with open(path, "rb") as handle:
            chains = _read_section(handle, layouts["chains"])
            level1 = _read_section(handle, layouts["hash_level1"])
            self._tree_table = _read_section(handle,
                                             layouts["tree_table"])
            self._tree_radii = _read_section(handle,
                                             layouts["tree_radii"])
        table = _PagedPairTable(self._pool, level1, self._num_pairs)
        self.compiled = CompiledOracle(chains, table, self.epsilon)
        # Fixed resident state: chains + the four derived key planes
        # (5 × n·(h+1) × 8 bytes) plus the tree tables.  Reported in
        # the ledger so "bounded" is an auditable claim, not a slogan.
        self.fixed_bytes = (5 * chains.nbytes + self._tree_table.nbytes
                            + self._tree_radii.nbytes + level1.nbytes)
        self.load_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # DistanceIndex protocol
    # ------------------------------------------------------------------
    @property
    def num_pois(self) -> int:
        return self.compiled.num_pois

    @property
    def num_pairs(self) -> int:
        return self._num_pairs

    @property
    def height(self) -> int:
        return self.compiled.height

    @property
    def supports_updates(self) -> bool:
        return False

    @property
    def is_compiled(self) -> bool:
        return True

    def query(self, source: int, target: int) -> float:
        return self.compiled.query(source, target)

    def query_batch(self, sources, targets) -> np.ndarray:
        return self.compiled.query_batch(sources, targets)

    def query_matrix(self, pois=None) -> np.ndarray:
        return self.compiled.query_matrix(pois)

    # ------------------------------------------------------------------
    # ledger (mirrors TiledOracle.tile_counters)
    # ------------------------------------------------------------------
    def page_counters(self) -> Dict[str, Any]:
        """The paging ledger: ``loads - evictions == resident_pages``,
        ``peak_resident_bytes <= page_bytes * max_pages`` always."""
        pool = self._pool
        return {
            "page_bytes": pool.page_bytes,
            "max_pages": pool.max_pages,
            "budget_bytes": pool.page_bytes * pool.max_pages,
            "loads": pool.loads,
            "evictions": pool.evictions,
            "hits": pool.hits,
            "resident_pages": pool.resident_pages,
            "resident_bytes": pool.resident_bytes,
            "peak_resident_bytes": pool.peak_resident_bytes,
            "fixed_bytes": self.fixed_bytes,
        }

    def resident_bytes(self) -> int:
        return self._pool.resident_bytes

    @property
    def peak_resident_bytes(self) -> int:
        return self._pool.peak_resident_bytes

    # ------------------------------------------------------------------
    # store plumbing (same surface the service uses on StoredOracle)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """The store's on-disk footprint."""
        return os.path.getsize(self.path)

    def is_stale(self) -> bool:
        """True when the file on disk is a newer generation than the
        one this pool pages from (see ``StoredOracle.is_stale``)."""
        if self.stat_signature is None:
            return False
        current = file_signature(self.path)
        return current is not None and current != self.stat_signature

    def check_fingerprint(self, engine) -> None:
        from .serialize import workload_fingerprint
        if self.fingerprint != workload_fingerprint(engine):
            raise ValueError(
                f"{self.path}: oracle was built for a different "
                "workload (terrain / POIs / Steiner density mismatch)")

    def close(self) -> None:
        self._pool.close()
