"""The ``DistanceIndex`` protocol: one query surface for every oracle.

Five query-answering families have grown in this repository — the SE
oracle and its compiled/stored forms, the dynamic overlay oracle, the
A2A oracle, and the three baselines — and with them five slightly
different call surfaces.  Consumers (proximity queries, the serving
layer, the CLI, the experiment harness) accreted ``isinstance`` /
``hasattr`` special-casing to pick scalar vs batched paths per family.

This module is the contract that deletes that special-casing:

* :class:`DistanceIndex` — the structural protocol every family now
  satisfies: ``query`` / ``query_batch`` / ``query_matrix`` over POI
  ids, a ``num_pois`` count, and two capability flags —
  ``supports_updates`` (the index accepts ``insert`` / ``delete``) and
  ``is_compiled`` (batches run on flat tables rather than per-query
  Python).  Flags describe *capabilities*, not types, so a consumer
  never needs to import a concrete oracle class.
* :class:`DistanceIndexMixin` — derives the scalar ``query`` and the
  all-pairs ``query_matrix`` from ``query_batch``, plus conservative
  default flags; families that only had a natural batched (or only a
  natural scalar) form inherit the rest.
* :class:`P2PIndexAdapter` — binds an xy-coordinate oracle
  (:class:`~repro.core.a2a.A2AOracle`,
  :class:`~repro.baselines.sp_oracle.SPOracle`) to a POI set so it
  serves the same id-based protocol as everything else.

The protocol is ``runtime_checkable``: ``isinstance(x, DistanceIndex)``
verifies the surface is present (tests pin every family), while
:func:`ensure_index` gives consumers a loud failure with the missing
attribute named.
"""

from __future__ import annotations

from typing import (
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

__all__ = [
    "DistanceIndex",
    "DistanceIndexMixin",
    "P2PIndexAdapter",
    "aligned_id_arrays",
    "ensure_index",
    "pair_arrays",
]


def aligned_id_arrays(
    sources: Sequence[int], targets: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce and validate a ``query_batch`` id pair (shared helper).

    Returns aligned 1-D intp arrays; raises ``ValueError`` otherwise —
    the one place the protocol's input contract is enforced, so every
    implementation rejects malformed batches identically.
    """
    source_ids = np.asarray(sources, dtype=np.intp)
    target_ids = np.asarray(targets, dtype=np.intp)
    if source_ids.shape != target_ids.shape or source_ids.ndim != 1:
        raise ValueError(
            "sources and targets must be aligned 1-D id arrays"
        )
    return source_ids, target_ids


@runtime_checkable
class DistanceIndex(Protocol):
    """Anything answering POI-to-POI distance queries, scalar or batched.

    ``query_batch`` is the serving primitive: aligned 1-D id arrays in,
    float64 distances out, ``result[i] == query(sources[i],
    targets[i])`` exactly.  ``query_matrix`` is the all-pairs form over
    an id list (default: every POI).  ``num_pois`` counts the POIs the
    index currently answers for; indexes with ``supports_updates`` may
    answer for *sparse* external ids, in which case ``query_matrix``'s
    default id set is the live ids, not ``range(num_pois)``.
    """

    @property
    def num_pois(self) -> int: ...

    @property
    def supports_updates(self) -> bool: ...

    @property
    def is_compiled(self) -> bool: ...

    def query(self, source: int, target: int) -> float: ...

    def query_batch(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray: ...

    def query_matrix(
        self, pois: Optional[Sequence[int]] = None
    ) -> np.ndarray: ...


def ensure_index(oracle) -> "DistanceIndex":
    """Validate that ``oracle`` satisfies :class:`DistanceIndex`.

    Returns the oracle unchanged; raises ``TypeError`` naming the first
    missing attribute otherwise.  Use at registration boundaries (the
    serving layer) so a non-conforming object fails loudly at setup
    time instead of deep inside a query path.
    """
    for attribute in (
        "num_pois",
        "supports_updates",
        "is_compiled",
        "query",
        "query_batch",
        "query_matrix",
    ):
        if not hasattr(oracle, attribute):
            raise TypeError(
                f"{type(oracle).__name__} does not satisfy DistanceIndex: "
                f"missing {attribute!r}"
            )
    return oracle


class DistanceIndexMixin:
    """Derive the rest of the protocol from ``query_batch``.

    Subclasses implement ``query_batch`` (and ``num_pois``); the mixin
    supplies the scalar ``query``, the all-pairs ``query_matrix`` and
    conservative capability flags.  Families with a faster native form
    of any of these simply override it.
    """

    @property
    def supports_updates(self) -> bool:
        return False

    @property
    def is_compiled(self) -> bool:
        return False

    def query(self, source: int, target: int) -> float:
        return float(
            self.query_batch(
                np.array([source], dtype=np.intp),
                np.array([target], dtype=np.intp),
            )[0]
        )

    def query_matrix(
        self, pois: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        if pois is None:
            ids = np.arange(self.num_pois, dtype=np.intp)
        else:
            ids = np.asarray(pois, dtype=np.intp)
        count = ids.shape[0]
        grid_s = np.repeat(ids, count)
        grid_t = np.tile(ids, count)
        return self.query_batch(grid_s, grid_t).reshape(count, count)


class P2PIndexAdapter(DistanceIndexMixin):
    """Bind an xy-coordinate oracle to a POI set as a ``DistanceIndex``.

    The A2A and SP oracles answer queries between arbitrary surface
    *points*; their P2P form takes the POI set per call
    (``query_p2p(pois, source, target)``).  The adapter closes over one
    POI set so the pair looks like every other id-based index — the
    harness and proximity queries then need no per-family dispatch.

    Batches loop the scalar P2P query (one neighbourhood minimisation
    per pair is the native cost model of these oracles); the adapter
    therefore reports ``is_compiled = False``.
    """

    def __init__(self, oracle, pois):
        ensure_p2p = getattr(oracle, "query_p2p", None)
        if ensure_p2p is None:
            raise TypeError(
                f"{type(oracle).__name__} has no query_p2p to adapt"
            )
        self._oracle = oracle
        self._pois = pois

    @property
    def oracle(self):
        return self._oracle

    @property
    def num_pois(self) -> int:
        return len(self._pois)

    def query(self, source: int, target: int) -> float:
        return float(self._oracle.query_p2p(self._pois, source, target))

    def query_batch(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        source_ids, target_ids = aligned_id_arrays(sources, targets)
        query_p2p = self._oracle.query_p2p
        pois = self._pois
        return np.array(
            [
                query_p2p(pois, int(source), int(target))
                for source, target in zip(source_ids, target_ids)
            ],
            dtype=np.float64,
        )


def pair_arrays(
    pairs: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``(source, target)`` pairs into aligned intp id arrays."""
    pair_list: List[Tuple[int, int]] = list(pairs)
    sources = np.array([source for source, _ in pair_list], dtype=np.intp)
    targets = np.array([target for _, target in pair_list], dtype=np.intp)
    return sources, targets
