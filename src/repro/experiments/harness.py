"""Experiment harness: build / size / query-time / error measurement.

Replicates the paper's measurement protocol (Section 5.1): for each
method report (1) oracle building time, (2) oracle size, (3) mean query
time over 100 random queries and (4) relative error against the exact
distance on the ground-truth metric.

Methods are registered by name; each entry knows how to construct the
competitor and how to issue a query, so P2P, V2V (POIs = vertices) and
A2A workloads all flow through one code path.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.error_stats import ErrorStats, measure_errors
from ..baselines.kalgo import KAlgo
from ..baselines.sp_oracle import SPOracle
from ..core.a2a import A2AOracle
from ..core.oracle import SEOracle
from ..geodesic.engine import GeodesicEngine
from ..terrain.mesh import TriangleMesh
from ..terrain.poi import POISet

__all__ = [
    "MethodResult",
    "generate_query_pairs",
    "generate_a2a_pairs",
    "run_p2p_experiment",
    "run_a2a_experiment",
    "P2P_METHODS",
]


@dataclass
class MethodResult:
    """One method's measurements on one workload configuration."""

    method: str
    build_seconds: float
    size_bytes: int
    query_seconds_mean: float
    errors: ErrorStats
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024.0 * 1024.0)

    @property
    def query_ms(self) -> float:
        return self.query_seconds_mean * 1000.0


def generate_query_pairs(num_pois: int, count: int = 100,
                         seed: int = 0) -> List[Tuple[int, int]]:
    """Random P2P/V2V query workload (paper's protocol)."""
    if num_pois < 2:
        raise ValueError("need at least 2 POIs to generate queries")
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        source = rng.randrange(num_pois)
        target = rng.randrange(num_pois)
        if source != target:
            pairs.append((source, target))
    return pairs


def generate_a2a_pairs(mesh: TriangleMesh, count: int = 50, seed: int = 0
                       ) -> List[Tuple[Tuple[float, float],
                                       Tuple[float, float]]]:
    """Random A2A workload: planar points inside the terrain region."""
    rng = random.Random(seed)
    low, high = mesh.bounding_box()
    pairs = []
    while len(pairs) < count:
        points = []
        while len(points) < 2:
            x = rng.uniform(float(low[0]), float(high[0]))
            y = rng.uniform(float(low[1]), float(high[1]))
            if mesh.locate_face(x, y) >= 0:
                points.append((x, y))
        pairs.append((points[0], points[1]))
    return pairs


# ----------------------------------------------------------------------
# P2P method registry
# ----------------------------------------------------------------------

# Cap on the ε-derived Steiner density used by SP-Oracle inside the
# harness.  Uncapped, ε = 0.05 quadruples the site count and the Θ(S²)
# index takes hours in pure Python.  The cap *shrinks* SP-Oracle's build
# time and size, i.e. it can only understate SE's advantage.
SP_DENSITY_CAP = 2


def _capped_density(epsilon: float) -> int:
    from ..baselines.sp_oracle import steiner_density_for_epsilon
    return min(steiner_density_for_epsilon(epsilon), SP_DENSITY_CAP)

def _time_queries(query: Callable[[int, int], float],
                  pairs: Sequence[Tuple[int, int]]) -> float:
    started = time.perf_counter()
    for source, target in pairs:
        query(source, target)
    return (time.perf_counter() - started) / len(pairs)


def _time_query_batch(query_batch: Callable,
                      pairs: Sequence[Tuple[int, int]]) -> float:
    """Mean seconds/query of one batched call over the workload."""
    sources = np.array([source for source, _ in pairs], dtype=np.intp)
    targets = np.array([target for _, target in pairs], dtype=np.intp)
    started = time.perf_counter()
    query_batch(sources, targets)
    return (time.perf_counter() - started) / len(pairs)


def _se_factory(strategy: str, method: str):
    def run(mesh: TriangleMesh, pois: POISet, epsilon: float,
            points_per_edge: int, seed: int, jobs: int = 1):
        engine = GeodesicEngine(mesh, pois, points_per_edge=points_per_edge)
        started = time.perf_counter()
        oracle = SEOracle(engine, epsilon, strategy=strategy,
                          method=method, seed=seed, jobs=jobs).build()
        build = time.perf_counter() - started
        extra = {
            "height": float(oracle.height),
            "pairs": float(oracle.num_pairs),
        }
        tick = time.perf_counter()
        oracle.compiled()
        extra["compile_seconds"] = time.perf_counter() - tick
        # Serving-load cost: pack the built oracle to a binary store
        # and time a zero-copy open — what a serving process pays
        # before its first query (see core/store.py).
        import os
        import tempfile

        from ..core.store import open_oracle, pack_oracle
        handle, store_path = tempfile.mkstemp(suffix=".store")
        os.close(handle)
        try:
            tick = time.perf_counter()
            pack_oracle(oracle, store_path)
            extra["pack_seconds"] = time.perf_counter() - tick
            tick = time.perf_counter()
            stored = open_oracle(store_path)
            extra["load_seconds"] = time.perf_counter() - tick
            extra["store_bytes"] = float(stored.size_bytes())
            # Drop the mmap views before unlinking the temp file:
            # unlink-while-mapped fails on Windows and pins the
            # deleted blocks elsewhere.
            del stored
        finally:
            os.unlink(store_path)
        # The naive variant keeps its O(h²) scalar scan for the scalar
        # timing; the compiled tables answer both variants identically.
        scalar = oracle.query_naive if method == "naive" else oracle.query
        return (build, oracle.size_bytes(), scalar, oracle.query_batch,
                extra)
    return run


def _sp_factory():
    def run(mesh: TriangleMesh, pois: POISet, epsilon: float,
            points_per_edge: int, seed: int, jobs: int = 1):
        # SP-Oracle's APSP is not executor-staged (yet); jobs is
        # accepted for registry uniformity and ignored.
        started = time.perf_counter()
        oracle = SPOracle(mesh, epsilon,
                          points_per_edge=_capped_density(epsilon)).build()
        build = time.perf_counter() - started
        # The P2P adapter serves the DistanceIndex protocol, so the
        # harness reports SP-Oracle through the same query/query_batch
        # surface as every other method (its batch is a per-pair loop
        # — is_compiled stays False — but the *reporting* path is
        # uniform).
        index = oracle.p2p_index(pois)
        return build, oracle.size_bytes(), index.query, \
            index.query_batch, {"sites": float(oracle.num_sites)}
    return run


def _kalgo_factory():
    def run(mesh: TriangleMesh, pois: POISet, epsilon: float,
            points_per_edge: int, seed: int, jobs: int = 1):
        started = time.perf_counter()
        algo = KAlgo(mesh, pois, epsilon).build()
        build = time.perf_counter() - started
        # query_batch groups per-source multi-target searches; the
        # answers stay bit-identical to the scalar path, so the
        # harness's batch_qps is an honest serving number for K-Algo.
        return build, algo.size_bytes(), algo.query, algo.query_batch, {}
    return run


P2P_METHODS: Dict[str, Callable] = {
    "SE(Random)": _se_factory("random", "efficient"),
    "SE(Greedy)": _se_factory("greedy", "efficient"),
    "SE-Naive": _se_factory("random", "naive"),
    "SP-Oracle": _sp_factory(),
    "K-Algo": _kalgo_factory(),
}


def run_p2p_experiment(mesh: TriangleMesh, pois: POISet, epsilon: float,
                       methods: Sequence[str],
                       num_queries: int = 100,
                       points_per_edge: int = 1,
                       seed: int = 0,
                       jobs: int = 1) -> List[MethodResult]:
    """Run the Section 5 measurement protocol for P2P/V2V queries.

    The exact reference distances are computed once on a shared
    ground-truth engine (same Steiner density as SE's metric graph).
    ``jobs`` parallelises the SE builds' fan-out stage; reported
    build times then measure the parallel pipeline, while results
    stay bit-identical to serial builds.

    Methods exposing a batched query path additionally report serving
    throughput in ``extra``: ``scalar_qps`` (1 / mean scalar query)
    and ``batch_qps`` (queries/second of one ``query_batch`` over the
    whole workload, post-compile).
    """
    pairs = generate_query_pairs(len(pois), num_queries, seed=seed)
    reference = GeodesicEngine(mesh, pois, points_per_edge=points_per_edge)
    exact_cache: Dict[Tuple[int, int], float] = {}

    def exact(source: int, target: int) -> float:
        key = (source, target)
        if key not in exact_cache:
            exact_cache[key] = reference.distance(source, target)
        return exact_cache[key]

    results = []
    for name in methods:
        if name not in P2P_METHODS:
            raise KeyError(f"unknown method {name!r}; choose from "
                           f"{sorted(P2P_METHODS)}")
        build, size, query, query_batch, extra = P2P_METHODS[name](
            mesh, pois, epsilon, points_per_edge, seed, jobs=jobs)
        mean_query = _time_queries(query, pairs)
        if query_batch is not None:
            mean_batched = _time_query_batch(query_batch, pairs)
            extra["scalar_qps"] = (1.0 / mean_query if mean_query > 0
                                   else float("inf"))
            extra["batch_qps"] = (1.0 / mean_batched if mean_batched > 0
                                  else float("inf"))
        errors = measure_errors(query, exact, pairs)
        results.append(MethodResult(
            method=name, build_seconds=build, size_bytes=size,
            query_seconds_mean=mean_query, errors=errors, extra=extra,
        ))
    return results


def run_a2a_experiment(mesh: TriangleMesh, epsilon: float,
                       num_queries: int = 30,
                       sites_per_edge: int = 1,
                       points_per_edge: int = 1,
                       seed: int = 0) -> List[MethodResult]:
    """The Appendix C workload: SE-A2A vs SP-Oracle vs K-Algo on
    arbitrary-point queries."""
    pairs = generate_a2a_pairs(mesh, num_queries, seed=seed)
    reference = GeodesicEngine(mesh, POISet([]),
                               points_per_edge=points_per_edge)

    def exact(pair_index: int, _unused: int) -> float:
        source_xy, target_xy = pairs[pair_index]
        node_s = reference.attach_point(*source_xy)
        node_t = reference.attach_point(*target_xy)
        try:
            return reference.node_distance(node_s, node_t)
        finally:
            reference.detach_points(2)

    index_pairs = [(i, 0) for i in range(len(pairs))]
    results = []

    def evaluate(name: str, build_seconds: float, size_bytes: int,
                 query_xy: Callable, engine=None) -> MethodResult:
        def query(pair_index: int, _unused: int) -> float:
            source_xy, target_xy = pairs[pair_index]
            return query_xy(source_xy, target_xy)

        # Settled-node delta across the timed loop: the structural
        # "does this method run graph searches at query time?" signal
        # (0 for the table-lookup oracles, > 0 for K-Algo), which is
        # what bench assertions should compare instead of wall-clock
        # means that sit within scheduler noise of each other.  A
        # method with no engine owns no search machinery at all, so
        # its query-time search work is structurally zero.
        before = engine.settled_nodes if engine is not None else 0
        mean_query = _time_queries(query, index_pairs)
        settled = (engine.settled_nodes - before if engine is not None
                   else 0)
        errors = measure_errors(query, exact, index_pairs)
        return MethodResult(method=name, build_seconds=build_seconds,
                            size_bytes=size_bytes,
                            query_seconds_mean=mean_query, errors=errors,
                            extra={"query_settled_nodes": settled})

    started = time.perf_counter()
    se_a2a = A2AOracle(mesh, epsilon, sites_per_edge=sites_per_edge,
                       points_per_edge=points_per_edge, seed=seed).build()
    results.append(evaluate("SE", time.perf_counter() - started,
                            se_a2a.size_bytes(), se_a2a.query,
                            engine=se_a2a.engine))

    started = time.perf_counter()
    sp = SPOracle(mesh, epsilon,
                  points_per_edge=_capped_density(epsilon)).build()
    results.append(evaluate("SP-Oracle", time.perf_counter() - started,
                            sp.size_bytes(), sp.query_xy))

    kalgo = KAlgo(mesh, POISet([]), epsilon)
    results.append(evaluate("K-Algo", 0.0, 0, kalgo.query_xy,
                            engine=kalgo.engine))
    return results
