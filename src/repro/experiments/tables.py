"""Runners for the paper's tables (1-3) and the Appendix A estimate.

* Table 1 compares asymptotic drivers; we verify the *measurable*
  claims behind it empirically: tree height h stays small (< 30), SE's
  pair count grows ~linearly in n, SP-Oracle's index grows
  quadratically in its Steiner site count, and β lands near [1.3, 1.5].
* Table 2 reports dataset statistics (vertices, resolution, region,
  POIs) for our analogues next to the paper's originals.
* Table 3 reports the query-distance statistics (max/min/avg/std) of
  the random P2P workload on each dataset.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..analysis.capacity_dimension import estimate_capacity_dimension
from ..core.oracle import SEOracle
from ..geodesic.engine import GeodesicEngine
from ..terrain.metrics import terrain_statistics
from ..terrain.poi import sample_clustered
from .datasets import DATASET_NAMES, load_dataset
from .harness import generate_query_pairs

__all__ = [
    "table1_complexity_probes",
    "table2_dataset_statistics",
    "table3_query_distances",
]


def table2_dataset_statistics(scale: str = "tiny",
                              names: Sequence[str] = DATASET_NAMES,
                              render: bool = False) -> List[Dict]:
    """Table 2: dataset statistics for the BH/EP/SF analogues."""
    rows = []
    for name in names:
        dataset = load_dataset(name, scale)
        stats = terrain_statistics(dataset.mesh)
        rows.append({
            "dataset": name,
            "vertices": dataset.num_vertices,
            "resolution_m": round(stats.resolution, 1),
            "region_km": (round(stats.extent_x / 1000, 1),
                          round(stats.extent_y / 1000, 1)),
            "pois": dataset.num_pois,
            "paper_vertices": dataset.paper_vertices,
            "paper_pois": dataset.paper_pois,
        })
    if render:
        print("== Table 2: dataset statistics (analogue | paper) ==")
        header = (f"{'dataset':<10} {'vertices':>9} {'resol(m)':>9} "
                  f"{'region(km)':>14} {'POIs':>6} {'paper N':>8} "
                  f"{'paper n':>8}")
        print(header)
        print("-" * len(header))
        for row in rows:
            region = f"{row['region_km'][0]}x{row['region_km'][1]}"
            print(f"{row['dataset']:<10} {row['vertices']:>9} "
                  f"{row['resolution_m']:>9} {region:>14} "
                  f"{row['pois']:>6} {row['paper_vertices']:>8} "
                  f"{row['paper_pois']:>8}")
        print()
    return rows


def table3_query_distances(scale: str = "tiny",
                           names: Sequence[str] = ("bearhead", "eaglepeak",
                                                   "sf"),
                           num_queries: int = 100,
                           render: bool = False) -> List[Dict]:
    """Table 3: max/min/avg/std of query distances (km) per dataset."""
    rows = []
    for name in names:
        dataset = load_dataset(name, scale)
        engine = GeodesicEngine(dataset.mesh, dataset.pois,
                                points_per_edge=1)
        pairs = generate_query_pairs(dataset.num_pois, num_queries, seed=3)
        distances = [engine.distance(s, t) / 1000.0 for s, t in pairs]
        rows.append({
            "dataset": name,
            "max_km": round(max(distances), 2),
            "min_km": round(min(distances), 2),
            "avg_km": round(statistics.mean(distances), 2),
            "std_km": round(statistics.pstdev(distances), 2),
        })
    if render:
        print("== Table 3: query distance statistics (km) ==")
        header = f"{'dataset':<10} {'max':>7} {'min':>7} {'avg':>7} {'std':>7}"
        print(header)
        print("-" * len(header))
        for row in rows:
            print(f"{row['dataset']:<10} {row['max_km']:>7} "
                  f"{row['min_km']:>7} {row['avg_km']:>7} "
                  f"{row['std_km']:>7}")
        print()
    return rows


@dataclass
class ComplexityProbe:
    """Empirical checks of Table 1's drivers.

    Theorem 2 bounds the node pair set by O(n h / ε^{2β}) — but the
    hidden constant contains ``(2/ε + 2)^{2β}``, which at ε = 0.25 is
    ~10^{2.8} ≈ 600.  At laptop-scale n (tens to hundreds of POIs) that
    constant exceeds n, so the effective bound is the trivial n²
    envelope; the linear-in-n regime only emerges at the paper's n
    (thousands+).  The probe therefore checks the honest envelope
    ``pairs <= min(n², C · n · h / ε^{2β})``.
    """

    dataset: str
    height: int
    beta: float
    epsilon: float
    pair_counts_by_n: Dict[int, int]
    pairs_growth_ratio: float  # pairs(n_max)/pairs(n_min), informational

    @property
    def height_below_30(self) -> bool:
        return self.height < 30

    @property
    def pairs_within_envelope(self) -> bool:
        """pairs <= min(n², C n h / ε^{2β}) with C absorbed into the
        separation constant (2/ε + 2)^{2β}."""
        separation = (2.0 / self.epsilon + 2.0) ** (2.0 * max(self.beta, 1.0))
        for n, pairs in self.pair_counts_by_n.items():
            quadratic = 1.05 * n * n
            theorem2 = 4.0 * n * (self.height + 1) * separation
            if pairs > min(quadratic, theorem2):
                return False
        return True


def table1_complexity_probes(scale: str = "tiny",
                             dataset_name: str = "sf",
                             epsilon: float = 0.25,
                             poi_counts: Sequence[int] = (),
                             render: bool = False) -> ComplexityProbe:
    """Verify Table 1's measurable claims on one dataset."""
    dataset = load_dataset(dataset_name, scale)
    if not poi_counts:
        base = dataset.num_pois
        poi_counts = (max(6, base // 2), base, base * 2)

    pair_counts: Dict[int, int] = {}
    height = 0
    for count in poi_counts:
        pois = sample_clustered(dataset.mesh, count, seed=77)
        engine = GeodesicEngine(dataset.mesh, pois, points_per_edge=1)
        oracle = SEOracle(engine, epsilon, seed=1).build()
        pair_counts[len(pois)] = oracle.num_pairs
        height = max(height, oracle.height)

    n_values = sorted(pair_counts)
    growth = pair_counts[n_values[-1]] / max(pair_counts[n_values[0]], 1)

    engine = GeodesicEngine(dataset.mesh, dataset.pois, points_per_edge=1)
    beta = estimate_capacity_dimension(engine, num_centers=6,
                                       radius_steps=3, seed=1).beta

    probe = ComplexityProbe(
        dataset=dataset_name, height=height, beta=beta, epsilon=epsilon,
        pair_counts_by_n=pair_counts, pairs_growth_ratio=growth,
    )
    if render:
        print("== Table 1 probes: empirical complexity drivers ==")
        print(f"dataset={probe.dataset}  h={probe.height} "
              f"(<30: {probe.height_below_30})  beta={probe.beta:.2f}")
        for n, pairs in sorted(probe.pair_counts_by_n.items()):
            print(f"  n={n:>6}  node pairs={pairs}")
        print(f"  pair growth ratio {probe.pairs_growth_ratio:.2f}; "
              f"within min(n^2, Thm2) envelope: "
              f"{probe.pairs_within_envelope}")
        print()
    return probe
